"""The ``reprolint`` command line (also ``addc-repro lint``).

Examples
--------
``reprolint src/``
    Lint a tree with config discovered from ``pyproject.toml``; warm runs
    re-analyze only changed files and their import-graph dependents.
``reprolint --changed origin/main src/``
    Report findings only for files changed vs a git ref (default HEAD)
    plus their dependents.
``reprolint --format sarif src/ > reprolint.sarif``
    SARIF 2.1.0 output for GitHub code-scanning upload.
``reprolint --strict src/``
    Additionally report suppression comments that silence nothing.
``reprolint --update-baseline src/``
    Rewrite the committed baseline to cover exactly the current findings.
``reprolint --list-rules``
    Print the rule pack with ids and default severities.

Exit codes: 0 clean (no finding at/above the ``fail_on`` threshold),
1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Severity
from repro.lint.registry import all_rules
from repro.lint.runner import LintReport, git_changed_files, lint_paths
from repro.lint.sarif import to_sarif

__all__ = ["configure_parser", "run", "build_parser", "main"]

DEFAULT_CACHE_PATH = ".reprolint_cache.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options; shared with the ``addc-repro lint`` subcommand."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="pyproject.toml to read [tool.reprolint] from (default: discover upward)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude",
        default=None,
        metavar="PATTERNS",
        help="comma-separated glob patterns replacing the config exclude "
        "list ('' lints everything; e.g. for the relaxed benchmarks profile)",
    )
    parser.add_argument(
        "--fail-on",
        choices=tuple(str(level) for level in Severity),
        default=None,
        help="exit non-zero at/above this severity (default: config, else warning)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel per-file analysis processes (0 = cpu count; default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (always analyze every file)",
    )
    parser.add_argument(
        "--cache-path",
        default=DEFAULT_CACHE_PATH,
        metavar="FILE",
        help=f"incremental cache location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report only files changed vs a git ref (default HEAD) "
        "plus their import-graph dependents",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also report unused suppression comments (SUP001)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of accepted findings "
        "(default: config `baseline`; '' disables)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover exactly the current findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule pack and exit"
    )
    parser.set_defaults(handler=run)


def _load_config(args: argparse.Namespace) -> Tuple[LintConfig, Path]:
    """The effective config plus the directory baselines resolve against."""
    if args.config is not None:
        config_path = Path(args.config)
        config = LintConfig.from_pyproject(config_path)
        base_dir = config_path.resolve().parent
    else:
        start = Path(args.paths[0]) if args.paths else Path.cwd()
        start_dir = start if start.is_dir() else start.parent
        config = LintConfig.discover(start_dir if start.exists() else Path.cwd())
        base_dir = Path.cwd()
    if args.select:
        config.select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    if args.ignore:
        config.ignore += [rule.strip() for rule in args.ignore.split(",") if rule.strip()]
    if args.exclude is not None:
        config.exclude = [
            pattern.strip() for pattern in args.exclude.split(",") if pattern.strip()
        ]
    if args.fail_on:
        config.fail_on = Severity.from_name(args.fail_on)
    if args.strict:
        config.strict = True
    return config, base_dir


def _print_report(report: LintReport, fmt: str, fail_on: Severity) -> None:
    if fmt == "sarif":
        print(json.dumps(to_sarif(report.diagnostics), indent=2))
        return
    if fmt == "json":
        payload = {
            "diagnostics": [d.as_dict() for d in report.diagnostics],
            "files_checked": report.files_checked,
            "files_analyzed": report.files_analyzed,
            "cache_hits": report.cache_hits,
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "stale_baseline": [
                {"rule": entry.rule, "path": entry.path, "message": entry.message}
                for entry in report.stale_baseline
            ],
            "fail_on": str(fail_on),
        }
        print(json.dumps(payload, indent=2))
        return
    for diagnostic in report.diagnostics:
        print(diagnostic.format_human())
    summary = (
        f"{len(report.diagnostics)} finding(s) in {report.files_checked} file(s)"
        f" ({report.suppressed} suppressed, {report.baselined} baselined;"
        f" analyzed {report.files_analyzed}, cache hits {report.cache_hits})"
    )
    print(("" if not report.diagnostics else "\n") + summary)
    if report.stale_baseline:
        print(
            f"note: {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
            "(fixed findings); run --update-baseline to ratchet them out"
        )


def run(args: argparse.Namespace) -> int:
    """Execute a lint run for parsed ``args``; returns the exit code."""
    if args.list_rules:
        for rule_class in all_rules():
            print(rule_class.summary_row())
        return 0
    try:
        known = {rule_class.id for rule_class in all_rules()}
        requested = [
            rule.strip()
            for flag in (args.select, args.ignore)
            if flag
            for rule in flag.split(",")
            if rule.strip()
        ]
        unknown = sorted(set(requested) - known)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        config, base_dir = _load_config(args)
        missing = [path for path in args.paths if not Path(path).exists()]
        if missing:
            print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2

        changed_files = None
        if args.changed is not None:
            try:
                changed_files = git_changed_files(args.changed)
            except RuntimeError as exc:
                hint = ""
                if Path(args.changed).exists():
                    # `--changed src` parses src as the REF; help out.
                    hint = (
                        f" (did you mean `--changed=HEAD {args.changed}`? "
                        "use --changed=REF when paths follow)"
                    )
                print(f"error: --changed: {exc}{hint}", file=sys.stderr)
                return 2

        baseline_path: Optional[Path] = None
        if args.baseline is not None:
            baseline_path = Path(args.baseline) if args.baseline else None
        elif config.baseline:
            baseline_path = base_dir / config.baseline
        if args.update_baseline and baseline_path is None:
            print(
                "error: --update-baseline needs a baseline path "
                "(--baseline or config `baseline`)",
                file=sys.stderr,
            )
            return 2
        if args.update_baseline and args.changed is not None:
            print(
                "error: --update-baseline needs the full view; "
                "it cannot be combined with --changed",
                file=sys.stderr,
            )
            return 2

        jobs = args.jobs
        if jobs <= 0:
            import os

            jobs = os.cpu_count() or 1

        report = lint_paths(
            [Path(path) for path in args.paths],
            config,
            jobs=jobs,
            cache_path=None if args.no_cache else Path(args.cache_path),
            changed_files=changed_files,
            strict=config.strict,
            baseline_path=baseline_path,
            update_baseline=args.update_baseline,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_report(report, args.format, config.fail_on)
    return 1 if report.failed(config.fail_on) else 0


def build_parser() -> argparse.ArgumentParser:
    """Stand-alone ``reprolint`` parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    args = build_parser().parse_args(argv)
    try:
        return run(args)
    except BrokenPipeError:  # e.g. `reprolint --format sarif | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
