"""The ``reprolint`` command line (also ``addc-repro lint``).

Examples
--------
``reprolint src/``
    Lint a tree with config discovered from ``pyproject.toml``.
``reprolint --format json src/ | jq .diagnostics``
    Machine-readable findings for CI annotation.
``reprolint --list-rules``
    Print the rule pack with ids and default severities.

Exit codes: 0 clean (no finding at/above the ``fail_on`` threshold),
1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Severity
from repro.lint.registry import all_rules
from repro.lint.runner import LintReport, lint_paths

__all__ = ["configure_parser", "run", "build_parser", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options; shared with the ``addc-repro lint`` subcommand."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="pyproject.toml to read [tool.reprolint] from (default: discover upward)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--fail-on",
        choices=tuple(str(level) for level in Severity),
        default=None,
        help="exit non-zero at/above this severity (default: config, else warning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule pack and exit"
    )
    parser.set_defaults(handler=run)


def _load_config(args: argparse.Namespace) -> LintConfig:
    if args.config is not None:
        config = LintConfig.from_pyproject(Path(args.config))
    else:
        start = Path(args.paths[0]) if args.paths else Path.cwd()
        start_dir = start if start.is_dir() else start.parent
        config = LintConfig.discover(start_dir if start.exists() else Path.cwd())
    if args.select:
        config.select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    if args.ignore:
        config.ignore += [rule.strip() for rule in args.ignore.split(",") if rule.strip()]
    if args.fail_on:
        config.fail_on = Severity.from_name(args.fail_on)
    return config


def _print_report(report: LintReport, fmt: str, fail_on: Severity) -> None:
    if fmt == "json":
        payload = {
            "diagnostics": [d.as_dict() for d in report.diagnostics],
            "files_checked": report.files_checked,
            "suppressed": report.suppressed,
            "fail_on": str(fail_on),
        }
        print(json.dumps(payload, indent=2))
        return
    for diagnostic in report.diagnostics:
        print(diagnostic.format_human())
    summary = (
        f"{len(report.diagnostics)} finding(s) in {report.files_checked} file(s)"
        f" ({report.suppressed} suppressed)"
    )
    print(("" if not report.diagnostics else "\n") + summary)


def run(args: argparse.Namespace) -> int:
    """Execute a lint run for parsed ``args``; returns the exit code."""
    if args.list_rules:
        for rule_class in all_rules():
            print(rule_class.summary_row())
        return 0
    try:
        known = {rule_class.id for rule_class in all_rules()}
        requested = [
            rule.strip()
            for flag in (args.select, args.ignore)
            if flag
            for rule in flag.split(",")
            if rule.strip()
        ]
        unknown = sorted(set(requested) - known)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        config = _load_config(args)
        missing = [path for path in args.paths if not Path(path).exists()]
        if missing:
            print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
            return 2
        report = lint_paths([Path(path) for path in args.paths], config)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_report(report, args.format, config.fail_on)
    return 1 if report.failed(config.fail_on) else 0


def build_parser() -> argparse.ArgumentParser:
    """Stand-alone ``reprolint`` parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    args = build_parser().parse_args(argv)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
