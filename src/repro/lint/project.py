"""Whole-program analysis context and the project-rule tier.

Per-file rules see one :class:`~repro.lint.registry.ModuleContext`;
project rules see a :class:`ProjectContext` — every module's extracted
:class:`~repro.lint.facts.ModuleFacts`, the import graph, and a resolver
that follows imports (including package ``__init__`` re-exports) to the
defining module.  Project rules subclass :class:`ProjectRule` and are
registered through the ordinary rule registry, so ``--select``,
``--ignore``, severity overrides, suppressions, and ``--list-rules`` all
work uniformly across both tiers; the runner simply dispatches on the
tier marker.

Resolution scope (deliberate, documented limits): plain-name and
module-attribute calls are followed (``helper()``, ``mod.helper()``,
``pkg.mod.helper()`` and re-exports); calls through ``self``/instance
attributes and dynamically computed callables are not.  Rules that walk
the call graph therefore under-approximate — they never flag code they
cannot see, and what they do flag is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig, path_matches
from repro.lint.diagnostics import Diagnostic
from repro.lint.facts import FunctionFacts, ModuleFacts
from repro.lint.graph import ImportGraph
from repro.lint.registry import Rule

__all__ = ["ProjectContext", "ProjectRule", "project_rules"]

_RESOLVE_DEPTH = 8


@dataclass
class ProjectContext:
    """Everything a project rule knows about the program under analysis."""

    modules: Dict[str, ModuleFacts]
    graph: ImportGraph
    config: LintConfig = field(default_factory=LintConfig)

    @classmethod
    def build(cls, all_facts: List[ModuleFacts], config: Optional[LintConfig] = None) -> "ProjectContext":
        modules = {facts.module: facts for facts in sorted(all_facts, key=lambda f: f.relpath)}
        return cls(
            modules=modules,
            graph=ImportGraph.build(modules),
            config=config or LintConfig(),
        )

    # ------------------------------------------------------------------ #
    # Name resolution                                                     #
    # ------------------------------------------------------------------ #

    def resolve_callable(
        self, module: str, dotted: str, _depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """Resolve a called name written in ``module`` to its defining
        ``(module, function qualname)``, following import re-exports.

        Returns None for externals, classes, and anything out of scope
        (``self.x()``, computed callables).
        """
        if _depth > _RESOLVE_DEPTH:
            return None
        facts = self.modules.get(module)
        if facts is None:
            return None
        if dotted in facts.functions:
            return (module, dotted)
        parts = dotted.split(".")
        binding = facts.import_bindings.get(parts[0])
        if binding is not None:
            full = binding.split(".") + parts[1:]
        elif parts[0] in self.modules or any(
            name.startswith(parts[0] + ".") for name in self.modules
        ):
            full = parts  # absolute dotted reference (import a.b; a.b.f())
        else:
            return None
        for end in range(len(full), 0, -1):
            prefix = ".".join(full[:end])
            if prefix not in self.modules:
                continue
            qualname = ".".join(full[end:])
            target = self.modules[prefix]
            if not qualname:
                return None  # the reference names a module, not a callable
            if qualname in target.functions:
                return (prefix, qualname)
            rebind = target.import_bindings.get(full[end])
            if rebind is not None:
                return self._resolve_absolute(
                    rebind.split(".") + full[end + 1 :], _depth + 1
                )
            return None
        return None

    def _resolve_absolute(self, full: List[str], depth: int) -> Optional[Tuple[str, str]]:
        """Resolve an absolute dotted path (after a re-export hop)."""
        if depth > _RESOLVE_DEPTH:
            return None
        for end in range(len(full), 0, -1):
            prefix = ".".join(full[:end])
            if prefix not in self.modules:
                continue
            qualname = ".".join(full[end:])
            target = self.modules[prefix]
            if not qualname:
                return None
            if qualname in target.functions:
                return (prefix, qualname)
            rebind = target.import_bindings.get(full[end])
            if rebind is not None:
                return self._resolve_absolute(rebind.split(".") + full[end + 1 :], depth + 1)
            return None
        return None

    def function(self, module: str, qualname: str) -> Optional[FunctionFacts]:
        facts = self.modules.get(module)
        if facts is None:
            return None
        return facts.functions.get(qualname)

    def call_closure(
        self, module: str, qualname: str, max_functions: int = 200
    ) -> List[Tuple[str, str]]:
        """Functions transitively reachable from ``(module, qualname)``.

        Breadth-first over resolvable call edges; the start function is
        included.  Bounded to keep pathological graphs cheap.
        """
        start = (module, qualname)
        seen: Set[Tuple[str, str]] = {start}
        order: List[Tuple[str, str]] = [start]
        frontier = [start]
        while frontier and len(order) < max_functions:
            current_module, current_qualname = frontier.pop(0)
            function = self.function(current_module, current_qualname)
            if function is None:
                continue
            for callee in function.calls:
                resolved = self.resolve_callable(current_module, callee)
                if resolved is not None and resolved not in seen:
                    seen.add(resolved)
                    order.append(resolved)
                    frontier.append(resolved)
        return order

    def is_constant(self, module: str, name: str) -> bool:
        """Whether ``name`` in ``module`` is (or re-exports) a constant."""
        facts = self.modules.get(module)
        if facts is None:
            return False
        if name in facts.constants:
            return True
        binding = facts.import_bindings.get(name)
        if binding is None:
            return False
        parts = binding.split(".")
        for end in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in self.modules:
                return ".".join(parts[end:]) in self.modules[prefix].constants
        return False

    # ------------------------------------------------------------------ #
    # Diagnostics                                                         #
    # ------------------------------------------------------------------ #

    def module_in_paths(self, module: str, patterns: List[str]) -> bool:
        facts = self.modules.get(module)
        return facts is not None and path_matches(facts.relpath, patterns)

    def option(self, rule: Rule, key: str):
        """Resolve a rule option exactly like the per-file tier does."""
        options = self.config.options_for(rule.id)
        if key in options:
            return options[key]
        return rule.default_options[key]

    def diagnostic(
        self, rule: Rule, relpath: str, lineno: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule_id=rule.id,
            path=relpath,
            line=lineno,
            col=col,
            severity=self.config.severity_for(rule.id, rule.default_severity),
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` over a
    :class:`ProjectContext`; the inherited per-file :meth:`check` is a
    no-op so a project rule accidentally run in the per-file tier stays
    silent rather than crashing.
    """

    tier = "project"

    def check(self, module) -> Iterator[Diagnostic]:  # pragma: no cover - guard
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


def project_rules() -> List[type]:
    """Every registered whole-program rule class, sorted by id."""
    from repro.lint.registry import all_rules

    return [rule for rule in all_rules() if getattr(rule, "tier", "") == "project"]
