"""Rule plugin registry and the per-module context rules run against.

A rule is a subclass of :class:`Rule` decorated with :func:`register_rule`.
Each rule declares an ``id`` (stable, used in suppressions and config), a
``name``, a ``description``, a ``default_severity``, and optional
``default_options`` that ``[tool.reprolint.rules.<id>]`` entries override
key-by-key.  ``check`` receives a :class:`ModuleContext` (parsed AST plus
path/config helpers) and yields ``(node_or_location, message)`` findings via
:meth:`ModuleContext.diagnostic`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Type

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, path_matches
from repro.lint.diagnostics import Diagnostic, Severity

__all__ = [
    "ModuleContext",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "dotted_name",
]

_REGISTRY: Dict[str, Type["Rule"]] = {}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten an attribute chain to ``"a.b.c"`` (None for non-name chains).

    >>> import ast
    >>> dotted_name(ast.parse("np.random.default_rng", mode="eval").body)
    'np.random.default_rng'
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module under analysis."""

    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig = field(default_factory=LintConfig)

    @property
    def is_dunder_init(self) -> bool:
        return self.relpath.endswith("__init__.py")

    @property
    def module_basename(self) -> str:
        return self.relpath.rsplit("/", 1)[-1]

    def in_paths(self, patterns: List[str]) -> bool:
        """Suffix-match this module's path against glob ``patterns``."""
        return path_matches(self.relpath, patterns)

    def option(self, rule: "Rule", key: str) -> Any:
        """Resolve a rule option: pyproject override, else rule default."""
        options = self.config.options_for(rule.id)
        if key in options:
            return options[key]
        if key in rule.default_options:
            return rule.default_options[key]
        raise ConfigurationError(f"rule {rule.id} has no option {key!r}")

    def diagnostic(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic for ``node`` with the rule's effective severity."""
        return Diagnostic(
            rule_id=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.config.severity_for(rule.id, rule.default_severity),
            message=message,
        )


class Rule:
    """Base class for reprolint rules; subclass and :func:`register_rule`."""

    id: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.WARNING
    default_options: Dict[str, Any] = {}

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for ``module``; implemented by subclasses."""
        raise NotImplementedError

    @classmethod
    def summary_row(cls) -> str:
        return f"{cls.id:<8} {str(cls.default_severity):<8} {cls.name}: {cls.description}"


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id or not rule_class.name:
        raise ConfigurationError(
            f"rule {rule_class.__name__} must define a non-empty id and name"
        )
    existing = _REGISTRY.get(rule_class.id)
    if existing is not None and existing is not rule_class:
        raise ConfigurationError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id (imports the rule pack)."""
    import repro.lint.rules  # noqa: F401  (populates the registry on import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up one rule class by id."""
    for rule_class in all_rules():
        if rule_class.id == rule_id:
            return rule_class
    raise ConfigurationError(f"unknown rule id {rule_id!r}")
