"""Lint driver: file discovery, rule execution, suppression filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import ModuleContext, all_rules
from repro.lint.suppress import parse_suppressions

__all__ = ["LintReport", "iter_python_files", "lint_source", "lint_paths"]

PARSE_RULE_ID = "PARSE"


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def worst_severity(self) -> Optional[Severity]:
        """Highest severity present, or None when the run is clean."""
        if not self.diagnostics:
            return None
        return max(diagnostic.severity for diagnostic in self.diagnostics)

    def failed(self, fail_on: Severity) -> bool:
        """Whether any finding is at or above the ``fail_on`` threshold."""
        worst = self.worst_severity()
        return worst is not None and worst >= fail_on


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> Iterable[Path]:
    """Expand files/directories into non-excluded ``.py`` files, sorted."""
    collected: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    for candidate in collected:
        if not config.is_excluded(candidate.as_posix()):
            yield candidate


def _relpath(path: Path) -> str:
    """Project-relative posix path when possible (stable diagnostics)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> List[Diagnostic]:
    """Lint one module given as a string; ``path`` drives path-scoped rules.

    Suppression comments are honoured; returns the surviving diagnostics
    sorted by location.
    """
    report = LintReport()
    _lint_into(report, source, path, config or LintConfig())
    return report.diagnostics


def _lint_into(
    report: LintReport, source: str, relpath: str, config: LintConfig
) -> None:
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.diagnostics.append(
            Diagnostic(
                rule_id=PARSE_RULE_ID,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        )
        report.files_checked += 1
        return

    suppressions = parse_suppressions(source)
    module = ModuleContext(relpath=relpath, source=source, tree=tree, config=config)
    found: List[Diagnostic] = []
    for rule_class in all_rules():
        if not config.rule_enabled(rule_class.id):
            continue
        for diagnostic in rule_class().check(module):
            if suppressions.is_suppressed(diagnostic.rule_id, diagnostic.line):
                report.suppressed += 1
            else:
                found.append(diagnostic)
    found.sort(key=lambda d: (d.line, d.col, d.rule_id))
    report.diagnostics.extend(found)
    report.files_checked += 1


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> LintReport:
    """Lint files and directories; the main entry point behind the CLI."""
    config = config or LintConfig()
    report = LintReport()
    for path in iter_python_files([Path(p) for p in paths], config):
        relpath = _relpath(path)
        if config.is_excluded(relpath):
            continue
        source = path.read_text(encoding="utf-8")
        _lint_into(report, source, relpath, config)
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))
    return report
