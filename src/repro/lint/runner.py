"""Two-phase lint driver: parallel per-file analysis, serial project tier.

Phase one treats every file independently: parse, run the per-file
rules, extract the :class:`~repro.lint.facts.ModuleFacts` summary, and
collect suppression comments.  Files are independent, so the phase can
fan out over a ``spawn`` process pool (``jobs > 1``) and — because each
file's products depend only on its own bytes and the effective config —
be cached by BLAKE2b fingerprint: a warm run re-analyzes only changed
files plus their import-graph dependents, and an unchanged tree
re-analyzes nothing at all.

Phase two is serial and cheap: it assembles the facts (fresh or cached)
into a :class:`~repro.lint.project.ProjectContext` and runs the
whole-program rules (RNG010/011/012, PERF002, DET003) over it.  Then
suppression-usage accounting emits SUP001 for dead suppression comments
(``--strict``), and finally findings are split against the committed
baseline (ratchet policy; see :mod:`repro.lint.baseline`).

Diagnostics stored in the cache are *pre-suppression*; suppressions are
replayed fresh every run so that usage accounting — and therefore
SUP001 — works identically on cold and warm runs.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cache import (
    FileRecord,
    LintCache,
    config_fingerprint,
    diagnostic_from_dict,
    file_fingerprint,
)
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.facts import ModuleFacts, extract_facts, module_name_for
from repro.lint.graph import ImportGraph
from repro.lint.project import ProjectContext, project_rules
from repro.lint.registry import ModuleContext, all_rules
from repro.lint.suppress import SuppressionIndex, parse_suppressions

__all__ = [
    "LintReport",
    "FileAnalysis",
    "iter_python_files",
    "analyze_source",
    "lint_source",
    "lint_paths",
    "git_changed_files",
]

PARSE_RULE_ID = "PARSE"
SUPPRESSION_RULE_ID = "SUP001"


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Files actually (re-)analyzed this run; the rest were cache hits.
    files_analyzed: int = 0
    cache_hits: int = 0
    #: Findings filtered out because the committed baseline covers them.
    baselined: int = 0
    #: Baseline entries that matched nothing — fixed findings awaiting
    #: a ratchet (``--update-baseline``).
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    def worst_severity(self) -> Optional[Severity]:
        """Highest severity present, or None when the run is clean."""
        if not self.diagnostics:
            return None
        return max(diagnostic.severity for diagnostic in self.diagnostics)

    def failed(self, fail_on: Severity) -> bool:
        """Whether any finding is at or above the ``fail_on`` threshold."""
        worst = self.worst_severity()
        return worst is not None and worst >= fail_on


@dataclass
class FileAnalysis:
    """Phase-one products for one file (cache- and pickle-portable)."""

    relpath: str
    fingerprint: str
    facts: ModuleFacts
    #: Per-file-tier diagnostics *before* suppression filtering.
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressions: SuppressionIndex = field(default_factory=SuppressionIndex)

    def to_record(self) -> FileRecord:
        return FileRecord(
            fingerprint=self.fingerprint,
            facts=self.facts.to_dict(),
            diagnostics=[diagnostic.as_dict() for diagnostic in self.diagnostics],
            suppressions=self.suppressions.to_dict(),
        )

    @classmethod
    def from_record(cls, relpath: str, record: FileRecord) -> "FileAnalysis":
        suppressions = SuppressionIndex.from_dict(record.suppressions)
        for entry in suppressions.entries:
            entry.used = 0  # usage is re-accounted every run
        return cls(
            relpath=relpath,
            fingerprint=record.fingerprint,
            facts=record.module_facts(),
            diagnostics=[diagnostic_from_dict(d) for d in record.diagnostics],
            suppressions=suppressions,
        )


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> Iterable[Path]:
    """Expand files/directories into non-excluded ``.py`` files, sorted."""
    collected: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    for candidate in collected:
        if not config.is_excluded(candidate.as_posix()):
            yield candidate


def _relpath(path: Path) -> str:
    """Project-relative posix path when possible (stable diagnostics)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _file_rules() -> List[type]:
    return [
        rule_class
        for rule_class in all_rules()
        if getattr(rule_class, "tier", "file") != "project"
    ]


def analyze_source(
    source: str, relpath: str, config: LintConfig, fingerprint: str = ""
) -> FileAnalysis:
    """Phase one for a single module: parse, per-file rules, facts."""
    if not fingerprint:
        fingerprint = file_fingerprint(source.encode("utf-8"))
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return FileAnalysis(
            relpath=relpath,
            fingerprint=fingerprint,
            facts=ModuleFacts(relpath=relpath, module=module_name_for(relpath)),
            diagnostics=[
                Diagnostic(
                    rule_id=PARSE_RULE_ID,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            ],
        )
    module = ModuleContext(relpath=relpath, source=source, tree=tree, config=config)
    found: List[Diagnostic] = []
    for rule_class in _file_rules():
        if not config.rule_enabled(rule_class.id):
            continue
        found.extend(rule_class().check(module))
    found.sort(key=lambda d: (d.line, d.col, d.rule_id))
    return FileAnalysis(
        relpath=relpath,
        fingerprint=fingerprint,
        facts=extract_facts(relpath, tree),
        diagnostics=found,
        suppressions=parse_suppressions(source),
    )


def _analyze_job(job: Tuple[str, str, str, LintConfig]) -> Dict[str, Any]:
    """Pool worker: analyze one file, return a picklable record payload.

    Top-level by necessity — spawn workers import this module and unpickle
    the function by qualified name.  Results are plain dicts so serial and
    parallel runs are byte-identical.
    """
    relpath, source, fingerprint, config = job
    return analyze_source(source, relpath, config, fingerprint).to_record().to_dict()


def _run_phase_one(
    jobs_list: List[Tuple[str, str, str, LintConfig]], jobs: int
) -> Dict[str, FileAnalysis]:
    """Run phase one serially or on a spawn pool; order-independent result."""
    analyses: Dict[str, FileAnalysis] = {}
    if jobs > 1 and len(jobs_list) > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            payloads = list(pool.map(_analyze_job, jobs_list))
    else:
        payloads = [_analyze_job(job) for job in jobs_list]
    for job, payload in zip(jobs_list, payloads):
        relpath = job[0]
        analyses[relpath] = FileAnalysis.from_record(
            relpath, FileRecord.from_dict(payload)
        )
    return analyses


def git_changed_files(ref: str, root: Optional[Path] = None) -> List[str]:
    """Python files changed vs ``ref`` (tracked diffs plus untracked).

    Paths are repo-root-relative.  Raises ``RuntimeError`` when git is
    unavailable or the ref does not resolve.
    """
    cwd = str(root) if root is not None else None
    changed: Set[str] = set()
    for command in (
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    ):
        try:
            completed = subprocess.run(
                command, cwd=cwd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = f": {exc.stderr.strip()}"
            raise RuntimeError(
                f"`{' '.join(command)}` failed{detail}"
            ) from exc
        changed.update(
            line.strip() for line in completed.stdout.splitlines() if line.strip()
        )
    return sorted(changed)


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    strict: Optional[bool] = None,
) -> List[Diagnostic]:
    """Lint one module given as a string, through the *full* pipeline.

    Both tiers run — the whole-program rules see a single-module project
    — so every registered rule is exercisable from a string fixture.
    Suppression comments are honoured; ``strict`` (default: the config's
    ``strict`` flag) additionally reports unused suppressions.  Returns
    the surviving diagnostics sorted by location.
    """
    config = config or LintConfig()
    analysis = analyze_source(source, path, config)
    diagnostics, _ = _filter_and_project(
        {path: analysis},
        config,
        strict=config.strict if strict is None else strict,
    )
    return diagnostics


def _filter_and_project(
    analyses: Dict[str, FileAnalysis], config: LintConfig, strict: bool
) -> Tuple[List[Diagnostic], int]:
    """Phase two: suppression filtering, project rules, SUP001.

    Returns ``(diagnostics, suppressed_count)`` with diagnostics sorted.
    """
    suppressed = 0
    kept: List[Diagnostic] = []
    for relpath in sorted(analyses):
        analysis = analyses[relpath]
        for diagnostic in analysis.diagnostics:
            if diagnostic.rule_id == PARSE_RULE_ID:
                kept.append(diagnostic)  # a file that cannot parse cannot opt out
            elif analysis.suppressions.is_suppressed(
                diagnostic.rule_id, diagnostic.line
            ):
                suppressed += 1
            else:
                kept.append(diagnostic)

    project = ProjectContext.build(
        [analysis.facts for analysis in analyses.values()], config
    )
    by_relpath = {analysis.relpath: analysis for analysis in analyses.values()}
    for rule_class in project_rules():
        if not config.rule_enabled(rule_class.id):
            continue
        for diagnostic in rule_class().check_project(project):
            analysis = by_relpath.get(diagnostic.path)
            if analysis is not None and analysis.suppressions.is_suppressed(
                diagnostic.rule_id, diagnostic.line
            ):
                suppressed += 1
            else:
                kept.append(diagnostic)

    if strict and config.rule_enabled(SUPPRESSION_RULE_ID):
        severity = config.severity_for(SUPPRESSION_RULE_ID, Severity.WARNING)
        for relpath in sorted(analyses):
            for entry in analyses[relpath].suppressions.unused():
                scope = (
                    "file-level suppression"
                    if entry.target_line is None
                    else "suppression"
                )
                kept.append(
                    Diagnostic(
                        rule_id=SUPPRESSION_RULE_ID,
                        path=relpath,
                        line=entry.comment_line,
                        col=0,
                        severity=severity,
                        message=(
                            f"{scope} for {', '.join(entry.rules)} matches no "
                            "finding; delete the comment or fix its placement"
                        ),
                    )
                )

    kept.sort(key=lambda d: (d.path, d.line, d.col, d.rule_id))
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
    changed_files: Optional[Sequence[str]] = None,
    strict: Optional[bool] = None,
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint files and directories; the main entry point behind the CLI.

    ``cache_path`` enables the incremental cache (None = always cold).
    ``changed_files`` restricts *reporting* to those files plus their
    import-graph dependents — analysis still covers the whole file set so
    project-tier findings stay sound.  ``baseline_path`` filters known
    findings; with ``update_baseline`` the file is rewritten to cover
    exactly the current findings (ratchet).
    """
    config = config or LintConfig()
    report = LintReport()

    files: Dict[str, Path] = {}
    for path in iter_python_files([Path(p) for p in paths], config):
        relpath = _relpath(path)
        if not config.is_excluded(relpath):
            files[relpath] = path

    sources: Dict[str, str] = {}
    fingerprints: Dict[str, str] = {}
    for relpath in sorted(files):
        data = files[relpath].read_bytes()
        fingerprints[relpath] = file_fingerprint(data)
        sources[relpath] = data.decode("utf-8")

    meta = config_fingerprint(
        config, [rule_class.id for rule_class in all_rules()]
    )
    cache = LintCache.load(cache_path, meta) if cache_path is not None else None

    hits: Set[str] = set()
    if cache is not None:
        hits = {
            relpath
            for relpath in files
            if relpath in cache.files
            and cache.files[relpath].fingerprint == fingerprints[relpath]
        }
    stale = set(files) - hits
    if cache is not None and stale and hits:
        # A changed module can shift whole-program findings in its
        # importers, and per-file products must stay reproducible from
        # scratch — so dependents (per the *previous* import graph) are
        # re-analyzed alongside the changed files themselves.
        old_facts = [
            cache.files[relpath].module_facts()
            for relpath in cache.files
            if relpath in files
        ]
        old_graph = ImportGraph.build(
            {facts.module: facts for facts in old_facts}
        )
        dependents = old_graph.transitive_dependents(
            [module_name_for(relpath) for relpath in stale]
        )
        dependent_relpaths = {
            old_graph.relpaths[module]
            for module in dependents
            if module in old_graph.relpaths
        }
        stale |= dependent_relpaths & set(files)
        hits -= dependent_relpaths

    jobs_list = [
        (relpath, sources[relpath], fingerprints[relpath], config)
        for relpath in sorted(stale)
    ]
    analyses = _run_phase_one(jobs_list, jobs)
    for relpath in hits:
        analyses[relpath] = FileAnalysis.from_record(
            relpath, cache.files[relpath]  # type: ignore[union-attr]
        )
    report.files_analyzed = len(jobs_list)
    report.cache_hits = len(hits)

    effective_strict = config.strict if strict is None else strict
    diagnostics, suppressed = _filter_and_project(
        analyses, config, strict=effective_strict
    )
    report.suppressed = suppressed
    report.files_checked = len(files)

    if changed_files is not None:
        graph = ImportGraph.build(
            {analysis.facts.module: analysis.facts for analysis in analyses.values()}
        )
        focus = {
            _relpath(Path(changed)) for changed in changed_files
        } & set(files)
        focus_modules = [module_name_for(relpath) for relpath in focus]
        for module in graph.transitive_dependents(focus_modules):
            relpath = graph.relpaths.get(module)
            if relpath in files:
                focus.add(relpath)
        diagnostics = [d for d in diagnostics if d.path in focus]
        report.files_checked = len(focus)

    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        if update_baseline:
            baseline = baseline.updated_from(diagnostics)
            baseline.save(baseline_path)
        diagnostics, report.baselined, report.stale_baseline = baseline.split(
            diagnostics
        )
        if changed_files is not None:
            # A partial view cannot tell "fixed" from "not in focus".
            report.stale_baseline = []

    report.diagnostics = diagnostics

    if cache_path is not None:
        fresh = LintCache(meta_fingerprint=meta)
        for relpath, analysis in analyses.items():
            fresh.files[relpath] = analysis.to_record()
        fresh.save(cache_path)

    return report
