"""Diagnostic records emitted by :mod:`repro.lint` rules.

A :class:`Diagnostic` pins one finding to a ``path:line:col`` location and
carries the rule id, a human-readable message, and a :class:`Severity`.
Severities are ordered (``INFO < WARNING < ERROR``) so callers can gate the
process exit code on a threshold (see ``fail_on`` in
:class:`repro.lint.config.LintConfig`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigurationError

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.IntEnum):
    """Ordered severity ladder for lint findings."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a case-insensitive severity name.

        >>> Severity.from_name("warning") is Severity.WARNING
        True
        """
        try:
            return cls[name.strip().upper()]
        except KeyError:
            valid = ", ".join(level.name.lower() for level in cls)
            raise ConfigurationError(
                f"unknown severity {name!r}; expected one of: {valid}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source location.

    ``line`` is 1-based (as reported by :mod:`ast`); ``col`` is 0-based.
    """

    rule_id: str
    path: str
    line: int
    col: int
    severity: Severity
    message: str

    def format_human(self) -> str:
        """``path:line:col: RULE severity: message`` — the CLI's text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form used by ``reprolint --format json``."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": str(self.severity),
            "message": self.message,
        }
