"""Committed finding baseline with a ratchet policy.

A baseline lets the full v2 rule set gate CI from day one without first
fixing (or suppressing) every pre-existing finding: known findings are
recorded in a committed JSON file and filtered from the report, while
anything *not* in the baseline fails the run as usual.  The policy is a
ratchet — the file may only shrink:

* a **new** finding is never auto-added; fix it, suppress it with a
  justification, or deliberately re-run ``--update-baseline`` in the
  same PR that introduces it (reviewers see the diff);
* a **fixed** finding leaves a stale entry behind; the runner reports
  stale entries so ``--update-baseline`` can drop them and lock in the
  improvement.

Entries are matched on ``(rule, path, message)`` — deliberately *not* on
line numbers, so unrelated edits above a known finding do not break the
build (the whole-program rules keep their messages line-free for the
same reason).  Each entry can carry a free-text ``justification``;
``--update-baseline`` preserves justifications of entries it keeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic

__all__ = ["BASELINE_VERSION", "BaselineEntry", "Baseline"]

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str
    message: str
    justification: str = ""

    @property
    def key(self) -> _Key:
        return (self.rule, self.path, self.message)


def _diagnostic_key(diagnostic: Diagnostic) -> _Key:
    return (diagnostic.rule_id, diagnostic.path, diagnostic.message)


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError:
            return cls()
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                message=str(entry["message"]),
                justification=str(entry.get("justification", "")),
            )
            for entry in payload.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    **(
                        {"justification": entry.justification}
                        if entry.justification
                        else {}
                    ),
                }
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, diagnostics: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], int, List[BaselineEntry]]:
        """Partition findings against the baseline.

        Returns ``(new, baselined_count, stale_entries)``: findings not
        covered by the baseline, how many were filtered as known, and
        baseline entries that matched nothing (fixed findings whose
        entries should be ratcheted out with ``--update-baseline``).
        """
        known: Dict[_Key, BaselineEntry] = {entry.key: entry for entry in self.entries}
        matched: set = set()
        new: List[Diagnostic] = []
        baselined = 0
        for diagnostic in diagnostics:
            key = _diagnostic_key(diagnostic)
            if key in known:
                matched.add(key)
                baselined += 1
            else:
                new.append(diagnostic)
        stale = [entry for entry in self.entries if entry.key not in matched]
        return new, baselined, stale

    def updated_from(self, diagnostics: Sequence[Diagnostic]) -> "Baseline":
        """A fresh baseline covering exactly ``diagnostics``.

        Justifications of entries that survive are carried over.
        """
        previous: Dict[_Key, BaselineEntry] = {entry.key: entry for entry in self.entries}
        seen: set = set()
        entries: List[BaselineEntry] = []
        for diagnostic in diagnostics:
            key = _diagnostic_key(diagnostic)
            if key in seen:
                continue
            seen.add(key)
            kept = previous.get(key)
            entries.append(
                BaselineEntry(
                    rule=key[0],
                    path=key[1],
                    message=key[2],
                    justification=kept.justification if kept else "",
                )
            )
        return Baseline(entries=entries)
