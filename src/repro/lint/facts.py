"""Per-module facts for the whole-program lint tier.

The project-wide rules (stream-lineage dataflow, interprocedural
spawn-safety, cross-module ordered-iteration) never touch raw ASTs: phase
one of the runner extracts a :class:`ModuleFacts` summary from each file
in the same pass that runs the per-file rules, and phase two works on
those summaries alone.  Facts are plain data — JSON-round-trippable for
the incremental cache and picklable for the parallel parse pool — so a
warm run can execute the whole-program tier without re-parsing a single
unchanged file.

The extraction classifies every ``StreamFactory.stream(...)`` /
``spawn(...)`` / ``substream(...)`` name argument by *lineage*:

``literal``
    a plain string constant (or an f-string of constants),
``param``
    derived from a parameter of the enclosing function,
``constant``
    derived from a module-level constant (possibly imported),
``loop``
    derived from a loop/comprehension target of an enclosing loop,
``dynamic``
    anything whose provenance cannot be established statically.

Locals are resolved through a flow-insensitive assignment map (``label =
f"sweep-{kind}"; streams.spawn(label)`` classifies like the f-string),
and the classification is the *weakest* lineage over the expression's
free names (any dynamic name makes the whole argument dynamic; a loop
name beats a parameter, which beats a constant).
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.registry import dotted_name

__all__ = [
    "StreamCall",
    "Handoff",
    "UnorderedIteration",
    "MergeFeed",
    "FunctionFacts",
    "ModuleFacts",
    "module_name_for",
    "extract_facts",
]

#: RNG-lineage methods recognised on stream factories.
STREAM_METHODS = ("stream", "spawn", "substream")
#: Pool/executor classes whose worker callables must be spawn-safe.
SPAWN_API_CLASSES = ("WorkerSupervisor", "ParallelSweepExecutor")
#: Methods that accept a worker callable as their first positional arg.
SPAWN_SUBMIT_METHODS = ("run", "submit", "map", "apply", "apply_async", "map_async", "starmap")
#: Module-level factory calls whose results never pickle under spawn.
UNPICKLABLE_FACTORIES = (
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "local",
    "open",
    "socket",
    "connect",
    "Thread",
    "Queue",
)

_MODULE_SCOPE = "<module>"


@dataclass(frozen=True)
class StreamCall:
    """One ``*.stream/spawn/substream(name)`` call site."""

    method: str
    function: str  # enclosing function qualname, or "<module>"
    lineno: int
    col: int
    name_kind: str  # literal | param | constant | loop | dynamic
    literal: Optional[str] = None  # the name, when name_kind == "literal"
    in_loop: bool = False
    #: Lineage of the factory the method is called *on*: a loop-derived
    #: receiver (``factory = root.spawn(f"rep-{i}")``) makes a fixed name
    #: per-iteration-fresh, so RNG012 leaves it alone.
    receiver_kind: str = "dynamic"


@dataclass(frozen=True)
class Handoff:
    """A callable handed to a spawn pool / supervisor API."""

    api: str  # e.g. "WorkerSupervisor.run" or ".submit"
    callee: str  # dotted name of the callable as written
    function: str
    lineno: int
    col: int


@dataclass(frozen=True)
class UnorderedIteration:
    """Iteration whose order is not pinned (set, or unsorted dict view)."""

    kind: str  # "set" | "dict-view"
    detail: str  # what is being iterated, for the message
    function: str
    lineno: int
    col: int


@dataclass(frozen=True)
class MergeFeed:
    """A ``merge_snapshot(...)`` argument resolved to its producing call."""

    callee: str  # dotted name of the producing callable
    function: str
    lineno: int
    col: int


@dataclass
class FunctionFacts:
    """Call-graph and capture summary of one function."""

    qualname: str
    lineno: int
    params: List[str] = field(default_factory=list)
    is_nested: bool = False
    calls: List[str] = field(default_factory=list)  # dotted callee names
    global_reads: List[str] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the whole-program tier knows about one module."""

    relpath: str
    module: str
    imports: List[Tuple[str, str]] = field(default_factory=list)  # (kind, target module)
    import_bindings: Dict[str, str] = field(default_factory=dict)  # local -> dotted origin
    constants: List[str] = field(default_factory=list)  # top-level constant names
    mutated_globals: List[str] = field(default_factory=list)
    unpicklable_globals: Dict[str, str] = field(default_factory=dict)  # name -> factory
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    stream_calls: List[StreamCall] = field(default_factory=list)
    handoffs: List[Handoff] = field(default_factory=list)
    unordered_iters: List[UnorderedIteration] = field(default_factory=list)
    merge_feeds: List[MergeFeed] = field(default_factory=list)

    def imported_modules(self) -> List[str]:
        """Dotted module targets this module imports (duplicates removed)."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for _, target in self.imports:
            if target not in seen:
                seen.add(target)
                ordered.append(target)
        return ordered

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form for the incremental cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleFacts":
        facts = cls(relpath=payload["relpath"], module=payload["module"])
        facts.imports = [tuple(entry) for entry in payload.get("imports", [])]
        facts.import_bindings = dict(payload.get("import_bindings", {}))
        facts.constants = list(payload.get("constants", []))
        facts.mutated_globals = list(payload.get("mutated_globals", []))
        facts.unpicklable_globals = dict(payload.get("unpicklable_globals", {}))
        facts.functions = {
            qualname: FunctionFacts(**entry)
            for qualname, entry in payload.get("functions", {}).items()
        }
        facts.stream_calls = [StreamCall(**entry) for entry in payload.get("stream_calls", [])]
        facts.handoffs = [Handoff(**entry) for entry in payload.get("handoffs", [])]
        facts.unordered_iters = [
            UnorderedIteration(**entry) for entry in payload.get("unordered_iters", [])
        ]
        facts.merge_feeds = [MergeFeed(**entry) for entry in payload.get("merge_feeds", [])]
        return facts


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative path.

    >>> module_name_for("src/repro/sim/engine.py")
    'repro.sim.engine'
    >>> module_name_for("pkg/__init__.py")
    'pkg'
    """
    parts = list(relpath.replace("\\", "/").split("/"))
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def _resolve_relative(module: str, is_init: bool, level: int, target: Optional[str]) -> str:
    """Absolute module name for a ``from ...x import y`` statement."""
    parts = module.split(".") if module else []
    # Level 1 is "the containing package": for a plain module that is the
    # parent; a package __init__ *is* its own package already.
    drop = level if not is_init else level - 1
    base = parts[: len(parts) - drop] if drop > 0 else parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ScopeFrame:
    """Mutable per-function state carried by the extraction visitor."""

    def __init__(self, qualname: str, params: Sequence[str], nested: bool) -> None:
        self.qualname = qualname
        self.params = set(params)
        self.nested = nested
        self.loop_targets: List[Set[str]] = []
        self.assignments: Dict[str, List[ast.expr]] = {}
        self.calls: Set[str] = set()
        self.loads: Set[str] = set()
        self.stores: Set[str] = set()

    @property
    def active_loop_names(self) -> Set[str]:
        names: Set[str] = set()
        for frame in self.loop_targets:
            names |= frame
        return names


def _target_names(target: ast.AST) -> Set[str]:
    return {leaf.id for leaf in ast.walk(target) if isinstance(leaf, ast.Name)}


def _free_names(expr: ast.AST) -> Set[str]:
    """Root names an expression reads (attribute chains count their root)."""
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
    return names


class _FactsExtractor(ast.NodeVisitor):
    """Single AST pass building a :class:`ModuleFacts`."""

    def __init__(self, relpath: str, tree: ast.Module) -> None:
        self.facts = ModuleFacts(relpath=relpath, module=module_name_for(relpath))
        self._is_init = relpath.endswith("__init__.py")
        self._tree = tree
        self._scopes: List[_ScopeFrame] = [_ScopeFrame(_MODULE_SCOPE, (), nested=False)]
        self._class_stack: List[str] = []
        self._prescan(tree)

    # ------------------------------------------------------------------ #
    # Pre-scan: top-level bindings, constants, global mutations           #
    # ------------------------------------------------------------------ #

    def _prescan(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                self._record_top_assign(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._record_top_assign([node.target], node.value)
        mutated: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Global):
                mutated.update(node.names)
        self.facts.mutated_globals = sorted(mutated)

    def _record_top_assign(self, targets: Sequence[ast.AST], value: ast.expr) -> None:
        names = sorted(set().union(*(_target_names(target) for target in targets)))
        if not names:
            return
        if isinstance(value, ast.Constant):
            self.facts.constants.extend(names)
        factory = self._unpicklable_factory(value)
        if factory is not None:
            for name in names:
                self.facts.unpicklable_globals[name] = factory

    @staticmethod
    def _unpicklable_factory(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.GeneratorExp):
            return "generator"
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] in UNPICKLABLE_FACTORIES:
                return name
        return None

    # ------------------------------------------------------------------ #
    # Imports                                                             #
    # ------------------------------------------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(("import", alias.name))
            local = alias.asname or alias.name.split(".")[0]
            self.facts.import_bindings[local] = alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = (
            _resolve_relative(self.facts.module, self._is_init, node.level, node.module)
            if node.level
            else (node.module or "")
        )
        if base:
            self.facts.imports.append(("from", base))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.facts.import_bindings[local] = f"{base}.{alias.name}" if base else alias.name
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # Scope bookkeeping                                                   #
    # ------------------------------------------------------------------ #

    def _enter_function(self, node) -> None:
        in_class = bool(self._class_stack)
        parent = self._scopes[-1].qualname
        if parent == _MODULE_SCOPE:
            prefix = ".".join(self._class_stack)
        else:
            prefix = parent
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        params = [arg.arg for arg in node.args.args + node.args.kwonlyargs + node.args.posonlyargs]
        if node.args.vararg:
            params.append(node.args.vararg.arg)
        if node.args.kwarg:
            params.append(node.args.kwarg.arg)
        if in_class and params and params[0] in ("self", "cls"):
            params = params[1:]
        nested = self._scopes[-1].qualname != _MODULE_SCOPE
        frame = _ScopeFrame(qualname, params, nested)
        self._prescan_function(frame, node)
        self._scopes.append(frame)

    @staticmethod
    def _prescan_function(frame: _ScopeFrame, node) -> None:
        """Collect the flow-insensitive local assignment map for ``node``."""
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    for name in _target_names(target):
                        frame.assignments.setdefault(name, []).append(child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                for name in _target_names(child.target):
                    frame.assignments.setdefault(name, []).append(child.value)

    def _leave_function(self) -> None:
        frame = self._scopes.pop()
        local = frame.params | set(frame.assignments) | frame.stores
        self.facts.functions[frame.qualname] = FunctionFacts(
            qualname=frame.qualname,
            lineno=getattr(frame, "lineno", 1),
            params=sorted(frame.params),
            is_nested=frame.nested,
            calls=sorted(frame.calls),
            global_reads=sorted((frame.loads - local)),
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self._scopes[-1].lineno = node.lineno
        for child in node.body:
            self.visit(child)
        self._leave_function()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambdas form no named scope the project tier can resolve into.
        return

    def _visit_loop(self, node, targets: Set[str]) -> None:
        frame = self._scopes[-1]
        frame.loop_targets.append(targets)
        self.generic_visit(node)
        frame.loop_targets.pop()

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._visit_loop(node, _target_names(node.target))

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node, set())

    def _visit_comprehension(self, node) -> None:
        frame = self._scopes[-1]
        targets: Set[str] = set()
        for generator in node.generators:
            self._check_iteration(generator.iter)
            targets |= _target_names(generator.target)
        frame.loop_targets.append(targets)
        self.generic_visit(node)
        frame.loop_targets.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Name(self, node: ast.Name) -> None:
        frame = self._scopes[-1]
        if isinstance(node.ctx, ast.Load):
            frame.loads.add(node.id)
        else:
            frame.stores.add(node.id)

    # ------------------------------------------------------------------ #
    # Fact-producing call sites                                           #
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        frame = self._scopes[-1]
        name = dotted_name(node.func)
        if name is not None:
            frame.calls.add(name)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in STREAM_METHODS and node.args:
                self._record_stream_call(node)
            if node.func.attr in SPAWN_SUBMIT_METHODS and node.args:
                self._record_handoff(node)
            if node.func.attr == "merge_snapshot" and node.args:
                self._record_merge_feed(node)
        elif isinstance(node.func, ast.Name) and node.func.id == "merge_snapshot" and node.args:
            self._record_merge_feed(node)
        self.generic_visit(node)

    def _record_stream_call(self, node: ast.Call) -> None:
        frame = self._scopes[-1]
        name_expr = node.args[0]
        kind, literal = self._classify(name_expr, frame, set())
        receiver_kind, _ = self._classify(node.func.value, frame, set())  # type: ignore[union-attr]
        self.facts.stream_calls.append(
            StreamCall(
                method=node.func.attr,  # type: ignore[union-attr]
                function=frame.qualname,
                lineno=node.lineno,
                col=node.col_offset,
                name_kind=kind,
                literal=literal,
                in_loop=bool(frame.loop_targets),
                receiver_kind=receiver_kind,
            )
        )

    def _record_handoff(self, node: ast.Call) -> None:
        frame = self._scopes[-1]
        attr = node.func.attr  # type: ignore[union-attr]
        receiver = node.func.value  # type: ignore[union-attr]
        api = self._spawn_api(receiver, frame)
        if api is None and attr == "run":
            # `.run` is only a handoff on a known spawn API receiver.
            return
        worker = node.args[0]
        callee = dotted_name(worker)
        if callee is None:
            return
        self.facts.handoffs.append(
            Handoff(
                api=f"{api}.{attr}" if api else f".{attr}",
                callee=callee,
                function=frame.qualname,
                lineno=node.lineno,
                col=node.col_offset,
            )
        )

    def _spawn_api(self, receiver: ast.expr, frame: _ScopeFrame) -> Optional[str]:
        """The spawn API class a method receiver resolves to, if any."""
        candidates: List[ast.expr] = [receiver]
        if isinstance(receiver, ast.Name):
            candidates.extend(frame.assignments.get(receiver.id, []))
        for expr in candidates:
            if isinstance(expr, ast.Call):
                name = dotted_name(expr.func)
                if name is not None and name.split(".")[-1] in SPAWN_API_CLASSES:
                    return name.split(".")[-1]
        return None

    def _record_merge_feed(self, node: ast.Call) -> None:
        frame = self._scopes[-1]
        argument = node.args[0]
        callee: Optional[str] = None
        if isinstance(argument, ast.Call):
            callee = dotted_name(argument.func)
        elif isinstance(argument, ast.Name):
            for value in frame.assignments.get(argument.id, []):
                if isinstance(value, ast.Call):
                    callee = dotted_name(value.func)
                    break
        if callee is None:
            return
        self.facts.merge_feeds.append(
            MergeFeed(
                callee=callee,
                function=frame.qualname,
                lineno=node.lineno,
                col=node.col_offset,
            )
        )

    # ------------------------------------------------------------------ #
    # Unordered iteration (for DET003)                                    #
    # ------------------------------------------------------------------ #

    def _check_iteration(self, iter_expr: ast.expr) -> None:
        frame = self._scopes[-1]
        verdict = self._iteration_kind(iter_expr, frame, set())
        if verdict is None:
            return
        kind, detail = verdict
        self.facts.unordered_iters.append(
            UnorderedIteration(
                kind=kind,
                detail=detail,
                function=frame.qualname,
                lineno=iter_expr.lineno,
                col=iter_expr.col_offset,
            )
        )

    def _iteration_kind(
        self, expr: ast.expr, frame: _ScopeFrame, seen: Set[str]
    ) -> Optional[Tuple[str, str]]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return ("set", "a set literal" if isinstance(expr, ast.Set) else "a set comprehension")
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name in ("set", "frozenset"):
                return ("set", f"`{name}(...)`")
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "keys",
                "values",
                "items",
            ):
                return ("dict-view", f"`.{expr.func.attr}()`")
        if isinstance(expr, ast.Name) and expr.id not in seen:
            seen.add(expr.id)
            for value in frame.assignments.get(expr.id, []):
                verdict = self._iteration_kind(value, frame, seen)
                if verdict is not None:
                    return (verdict[0], f"`{expr.id}` ({verdict[1]})")
        return None

    # ------------------------------------------------------------------ #
    # Stream-name lineage classification                                  #
    # ------------------------------------------------------------------ #

    def _classify(
        self, expr: ast.expr, frame: _ScopeFrame, seen: Set[str]
    ) -> Tuple[str, Optional[str]]:
        if isinstance(expr, ast.Constant):
            return ("literal", expr.value if isinstance(expr.value, str) else None)
        if isinstance(expr, ast.Call):
            # A stream/spawn call inherits its *name argument's* lineage —
            # `factory = root.spawn(f"rep-{i}")` is loop-fresh.  Any other
            # call result has no statically known provenance.
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in STREAM_METHODS
                and expr.args
            ):
                return (self._classify(expr.args[0], frame, seen)[0], None)
            return ("dynamic", None)
        if isinstance(expr, ast.JoinedStr):
            kinds = set()
            for value in expr.values:
                if isinstance(value, ast.Constant):
                    continue
                inner = value.value if isinstance(value, ast.FormattedValue) else value
                kinds.add(self._classify(inner, frame, seen)[0])
            if not kinds:
                literal = "".join(
                    value.value for value in expr.values if isinstance(value, ast.Constant)
                )
                return ("literal", literal)
            return (self._weakest(kinds), None)
        free = _free_names(expr)
        if not free:
            return ("literal", None)
        kinds = {self._classify_name(name, frame, seen) for name in free}
        return (self._weakest(kinds), None)

    def _classify_name(self, name: str, frame: _ScopeFrame, seen: Set[str]) -> str:
        if name in frame.active_loop_names:
            return "loop"
        if name in frame.params:
            return "param"
        if name in seen:
            return "dynamic"
        if name in frame.assignments:
            seen.add(name)
            kinds = {
                self._classify(value, frame, seen)[0]
                for value in frame.assignments[name]
            }
            return self._weakest(kinds) if kinds else "dynamic"
        if name in self.facts.constants:
            return "constant"
        binding = self.facts.import_bindings.get(name)
        if binding is not None:
            # Resolution against the exporting module happens project-side;
            # mark as constant-candidate so single-module runs stay quiet.
            return "constant"
        return "dynamic"

    @staticmethod
    def _weakest(kinds: Set[str]) -> str:
        for kind in ("dynamic", "loop", "param", "constant", "literal"):
            if kind in kinds:
                return kind
        return "dynamic"


def extract_facts(relpath: str, tree: ast.Module) -> ModuleFacts:
    """Build the :class:`ModuleFacts` summary for one parsed module."""
    extractor = _FactsExtractor(relpath, tree)
    extractor.visit(tree)
    # Module-level loads count as a "<module>" pseudo-function so the
    # project tier can resolve calls made at import time.
    frame = extractor._scopes[0]
    extractor.facts.functions[_MODULE_SCOPE] = FunctionFacts(
        qualname=_MODULE_SCOPE,
        lineno=1,
        params=[],
        is_nested=False,
        calls=sorted(frame.calls),
        global_reads=[],
    )
    facts = extractor.facts
    facts.stream_calls.sort(key=lambda c: (c.lineno, c.col))
    facts.handoffs.sort(key=lambda h: (h.lineno, h.col))
    facts.unordered_iters.sort(key=lambda i: (i.lineno, i.col))
    facts.merge_feeds.sort(key=lambda m: (m.lineno, m.col))
    return facts
