"""Routing baselines.

The paper compares ADDC against *Coolest* (Huang et al., ICDCS 2011 [17]),
a spectrum-mobility-aware routing metric for cognitive ad hoc networks,
adapted to data collection the way the paper describes: every SU produces
one packet and forwards it along the path with the most balanced / lowest
PU spectrum utilization ("temperature").
"""

from repro.routing.temperature import (
    node_temperatures,
    node_temperatures_at_range,
    path_accumulated_temperature,
    path_highest_temperature,
    path_mixed_temperature,
)
from repro.routing.coolest import CoolestOutcome, CoolestPolicy, run_coolest_collection
from repro.routing.unicast import UnicastPolicy, run_unicast

__all__ = [
    "node_temperatures",
    "node_temperatures_at_range",
    "path_accumulated_temperature",
    "path_highest_temperature",
    "path_mixed_temperature",
    "CoolestOutcome",
    "CoolestPolicy",
    "run_coolest_collection",
    "UnicastPolicy",
    "run_unicast",
]
