"""The Coolest data-collection baseline.

Adaptation of [17] exactly as the evaluated paper describes (Section V):
"the path with the most balanced and/or the lowest spectrum utilization by
PUs is preferred for a data transmission", and "each SU of the secondary
network produces a data packet that will be transmitted to the base
station".

Differences from ADDC — each one a thing [17] does not have because it
predates the PCR analysis:

* **Routing**: every SU forwards along its coolest path to the base
  station (node-weighted Dijkstra over spectrum temperatures measured at
  the node's own radio range ``r``).  All sources independently prefer the
  same cool corridors, so paths converge — the data-accumulation effect
  the paper credits for Coolest's higher delay.
* **SU carrier sensing at ``r``** (conventional CSMA, as in [22]'s
  baseline setting) instead of the PCR: concurrent SU transmitters can be
  hidden from each other, and the physical SIR adjudication produces
  collisions and retransmissions — the "data collisions, interference and
  retransmissions" of the paper's third challenge.
* **No fairness wait** (Algorithm 1, line 12 is ADDC's contribution).

What is *not* different: PU protection.  Deferring to active PUs inside
the protection range is the regulatory premise of the CRN model
(Section I), so Coolest SUs freeze under exactly the same PU-protection
range as ADDC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.analysis import opportunity_probability
from repro.core.pcr import PcrParameters, PcrResult, compute_pcr, db_to_linear
from repro.errors import ConfigurationError, GraphError
from repro.graphs.dijkstra import dijkstra_bottleneck, dijkstra_node_weighted
from repro.network.topology import CrnTopology
from repro.rng import StreamFactory
from repro.routing.temperature import mixed_node_weights, node_temperatures_at_range
from repro.sim.engine import SlottedEngine
from repro.sim.packet import Packet
from repro.sim.results import SimulationResult
from repro.sim.trace import TraceLog
from repro.spectrum.sensing import CarrierSenseMap

__all__ = ["CoolestPolicy", "CoolestOutcome", "run_coolest_collection"]

_METRICS = ("accumulated", "mixed", "highest")


class _MaskedGraph:
    """A read-only adjacency view of ``graph`` with some nodes removed.

    Masked nodes keep their ids (Dijkstra's arrays stay index-aligned)
    but have no edges, so they can be neither relays nor destinations.
    """

    def __init__(self, graph, masked: frozenset) -> None:
        self._graph = graph
        self._masked = masked

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    def neighbors(self, node: int):
        if node in self._masked:
            return []
        return [n for n in self._graph.neighbors(node) if n not in self._masked]


class CoolestPolicy:
    """Forward every packet one hop along its source-independent coolest path.

    The coolest paths from all nodes to the base station form a tree (they
    are node-weighted shortest paths with deterministic tie-breaking), so
    the policy stores one next-hop pointer per node.

    Parameters
    ----------
    topology:
        The deployed CRN.
    p_t:
        PU per-slot transmission probability (temperature estimation).
    metric:
        ``"accumulated"`` (sum of temperatures, [17]'s first metric) or
        ``"mixed"`` (superlinear blend, [17]'s combined metric).
    temperature_range:
        Sensing range for the temperature estimate; defaults to the SU
        transmission radius (the node's own radio).
    """

    fairness_wait = False

    def __init__(
        self,
        topology: CrnTopology,
        p_t: float,
        metric: str = "mixed",
        temperature_range: Optional[float] = None,
        route_discovery: bool = True,
    ) -> None:
        if metric not in _METRICS:
            raise ConfigurationError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.route_discovery = bool(route_discovery)
        self._pending_data: dict = {}
        if temperature_range is None:
            temperature_range = topology.secondary.radius
        temperatures = node_temperatures_at_range(topology, p_t, temperature_range)

        self._graph = topology.secondary.graph
        self._base = topology.secondary.base_station
        if metric == "highest":
            # [17]'s bottleneck metric: minimize the hottest node on the
            # path (hop count breaks ties, keeping routes finite-stretch).
            self._route_weights = [float(t) for t in temperatures]
        else:
            if metric == "mixed":
                weights: List[float] = mixed_node_weights(temperatures)
            else:
                weights = [float(t) for t in temperatures]
            # A tiny uniform weight keeps Dijkstra hop-aware when a region
            # is entirely PU-free (zero temperature everywhere would
            # otherwise make all paths cost zero and the parent choice
            # arbitrary).
            self._route_weights = [w + 1e-6 for w in weights]
        # Nodes currently excluded from routing (crashed or in a transient
        # outage); the parent tree is recomputed whenever this changes.
        self._offline: set = set()
        self._recompute_parents()
        if any(parent < 0 for parent in self._parents):
            raise GraphError("G_s must be connected for Coolest routing")
        self.temperatures = temperatures

    def _recompute_parents(self) -> None:
        """Rerun Dijkstra with offline nodes masked out of the adjacency.

        Masking (rather than infinite weights) keeps every metric safe: the
        bottleneck metric compares hop counts between equal-cost paths, so
        an infinitely hot node could still be chosen as a relay.
        """
        graph = self._graph
        if self._offline:
            graph = _MaskedGraph(self._graph, frozenset(self._offline))
        if self.metric == "highest":
            _, parents = dijkstra_bottleneck(graph, self._base, self._route_weights)
        else:
            _, parents = dijkstra_node_weighted(
                graph, self._base, self._route_weights
            )
        self._parents = parents

    def on_node_departure(self, node: int):
        """Route around a crashed node; returns nodes the crash cut off.

        Coolest is a global shortest-path scheme, so the "repair" is a
        recompute over the surviving subgraph — the centralized-recovery
        cost the paper's distributed argument (Section I) highlights.
        """
        reachable_before = {
            n for n, parent in enumerate(self._parents) if parent >= 0
        }
        self._offline.add(node)
        self._recompute_parents()
        return sorted(
            n
            for n, parent in enumerate(self._parents)
            if parent < 0 and n != node and n in reachable_before
        )

    # A transient outage needs the same global reroute as a crash.
    on_node_outage = on_node_departure

    def on_node_rejoin(self, node: int) -> bool:
        """Readmit a recovered node; ``False`` if it is still cut off."""
        self._offline.discard(node)
        self._recompute_parents()
        if self._parents[node] < 0:
            self._offline.add(node)
            self._recompute_parents()
            return False
        return True

    def next_hop(self, node: int, packet: Packet) -> int:
        """One hop along the coolest path, or along an explicit control route."""
        if packet.route is not None:
            if packet.route[packet.route_pos] != node:
                raise GraphError(
                    f"routed packet {packet.packet_id} expected at node "
                    f"{packet.route[packet.route_pos]}, found at {node}"
                )
            return packet.route[packet.route_pos + 1]
        if node == self._base:
            raise ConfigurationError(
                "the base station only transmits control packets"
            )
        parent = self._parents[node]
        if parent == node:
            raise GraphError(f"node {node} has a broken parent pointer")
        if parent < 0:
            raise GraphError(f"node {node} has no route to the base station")
        return parent

    def build_workload(self, num_sus: int) -> List[Packet]:
        """The initial packet set for one snapshot collection.

        With route discovery (the on-demand behaviour of [17]), every SU
        first sends a route request along its coolest path; the base
        station answers with a route reply, and only its arrival releases
        the SU's data packet.  Without discovery, data packets start
        immediately (the infrastructure-assumed variant used in the
        route-discovery ablation).
        """
        from repro.sim.packet import DATA, RREQ

        packets: List[Packet] = []
        for index in range(1, num_sus + 1):
            data = Packet(packet_id=index - 1, source=index, kind=DATA)
            if not self.route_discovery:
                packets.append(data)
                continue
            self._pending_data[index] = data
            packets.append(
                Packet(
                    packet_id=num_sus + (index - 1),
                    source=index,
                    kind=RREQ,
                    route=self.route(index),
                )
            )
        return packets

    def on_control_arrival(self, packet: Packet, node: int) -> List[Packet]:
        """React to a control packet completing its route.

        An RREQ at the base station is answered with an RREP along the
        reversed path; an RREP at its source releases the held data packet.
        """
        from repro.sim.packet import RREP, RREQ

        if packet.kind == RREQ:
            return [
                Packet(
                    packet_id=packet.packet_id + 10_000_000,
                    source=packet.source,
                    kind=RREP,
                    route=list(reversed(packet.route or [])),
                )
            ]
        if packet.kind == RREP:
            data = self._pending_data.pop(packet.source, None)
            return [data] if data is not None else []
        return []

    def route(self, node: int) -> List[int]:
        """The full coolest path from ``node`` to the base station."""
        path = [node]
        while path[-1] != self._base:
            path.append(self._parents[path[-1]])
            if len(path) > len(self._parents):
                raise GraphError("parent pointers contain a cycle")
        return path

    def describe(self) -> str:
        """Policy name for reports."""
        return f"Coolest({self.metric})"


@dataclass
class CoolestOutcome:
    """A finished Coolest run plus its routing context."""

    result: SimulationResult
    policy: CoolestPolicy
    pcr: PcrResult
    sense_map: CarrierSenseMap
    #: The engine that produced ``result``; exposes post-run RNG stream
    #: positions (``engine.rng_positions()``) for determinism checks.
    engine: Optional["SlottedEngine"] = None


def run_coolest_collection(
    topology: CrnTopology,
    streams: StreamFactory,
    eta_p_db: float = 8.0,
    eta_s_db: float = 8.0,
    alpha: float = 4.0,
    zeta_bound: str = "paper",
    metric: str = "mixed",
    blocking: str = "geometric",
    route_discovery: bool = True,
    p_t: Optional[float] = None,
    csma_range: Optional[float] = None,
    fault_plan=None,
    max_slots: int = 2_000_000,
    fast_forward: bool = True,
    contention_window_ms: float = 0.5,
    slot_duration_ms: float = 1.0,
    trace: Optional[TraceLog] = None,
) -> CoolestOutcome:
    """Collect one snapshot with the Coolest baseline.

    Coolest SUs obey the identical PU-protection range (the PCR distance)
    but carrier-sense other SUs only at ``csma_range`` (default: their
    transmission radius), so transmissions are adjudicated — and sometimes
    lost — under the physical SIR model.

    When a ``fault_plan`` is given, prefer ``route_discovery=False``:
    discovered routes are frozen into the control packets, so a fault
    arriving mid-discovery strands them on their stale paths (hop-by-hop
    forwarding reroutes fine).
    """
    pcr_params = PcrParameters(
        alpha=alpha,
        pu_power=topology.primary.power,
        su_power=topology.secondary.power,
        pu_radius=topology.primary.radius,
        su_radius=topology.secondary.radius,
        eta_p_db=eta_p_db,
        eta_s_db=eta_s_db,
        zeta_bound=zeta_bound,
    )
    pcr = compute_pcr(pcr_params)
    if csma_range is None:
        csma_range = topology.secondary.radius
    sense_map = CarrierSenseMap(
        topology, pu_protection_range=pcr.pcr, su_csma_range=csma_range
    )
    effective_p_t = (
        p_t if p_t is not None else topology.primary.activity.stationary_probability
    )
    policy = CoolestPolicy(
        topology, effective_p_t, metric=metric, route_discovery=route_discovery
    )
    homogeneous_p_o = None
    if blocking == "homogeneous":
        homogeneous_p_o = opportunity_probability(
            effective_p_t,
            pcr.kappa,
            topology.secondary.radius,
            topology.primary.num_pus,
            topology.region.area,
        )
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=policy,
        streams=streams,
        alpha=alpha,
        eta_s=db_to_linear(eta_s_db),
        sir_check=True,
        blocking=blocking,
        homogeneous_p_o=homogeneous_p_o,
        fault_plan=fault_plan,
        slot_duration_ms=slot_duration_ms,
        contention_window_ms=contention_window_ms,
        max_slots=max_slots,
        fast_forward=fast_forward,
        trace=trace,
    )
    workload = policy.build_workload(topology.secondary.num_sus)
    engine.load_packets(workload, expected_deliveries=topology.secondary.num_sus)
    result = engine.run()
    return CoolestOutcome(
        result=result, policy=policy, pcr=pcr, sense_map=sense_map, engine=engine
    )
