"""Unicast traffic between arbitrary SU pairs.

The paper's task is convergecast (everything to the base station); its
reference [7] — by the same group — treats *unicast* scheduling in CRNs as
the companion primitive.  :class:`UnicastPolicy` carries arbitrary
source/destination flows over the same ADDC MAC: each packet follows a
precomputed min-hop (or spectrum-temperature-weighted) route, delivery
happens at the flow's destination, and the PU-protection and carrier-
sensing rules are exactly those of Algorithm 1.

This is what turns the library from a single-task reproduction into a
general CRN network simulator: any traffic matrix expressible as
(source, destination) pairs runs through the same engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, GraphError
from repro.graphs.bfs import bfs_parents
from repro.graphs.dijkstra import dijkstra_node_weighted, extract_path
from repro.network.topology import CrnTopology
from repro.routing.temperature import node_temperatures_at_range
from repro.sim.packet import Packet

__all__ = ["UnicastPolicy", "run_unicast"]

_ROUTING = ("min-hop", "coolest")


class UnicastPolicy:
    """Route explicit (source, destination) flows over the ADDC MAC.

    Parameters
    ----------
    topology:
        The deployed CRN.
    flows:
        ``(source, destination)`` node-id pairs; one packet per flow.
    routing:
        ``"min-hop"`` (BFS shortest paths) or ``"coolest"``
        (temperature-weighted paths, as the Coolest baseline computes
        them).
    p_t:
        PU activity, needed only for ``"coolest"`` temperatures.
    fairness_wait:
        Algorithm 1's line-12 wait (on by default — this policy runs
        ADDC's MAC).
    """

    def __init__(
        self,
        topology: CrnTopology,
        flows: Sequence[Tuple[int, int]],
        routing: str = "min-hop",
        p_t: float = 0.3,
        fairness_wait: bool = True,
    ) -> None:
        if routing not in _ROUTING:
            raise ConfigurationError(
                f"routing must be one of {_ROUTING}, got {routing!r}"
            )
        if not flows:
            raise ConfigurationError("need at least one flow")
        self.fairness_wait = bool(fairness_wait)
        self.routing = routing
        graph = topology.secondary.graph
        num_nodes = topology.secondary.num_nodes
        for source, destination in flows:
            for endpoint in (source, destination):
                if not 0 <= endpoint < num_nodes:
                    raise ConfigurationError(
                        f"flow endpoint {endpoint} outside the network"
                    )
            if source == destination:
                raise ConfigurationError(
                    f"flow {source}->{destination} has equal endpoints"
                )
            if source == topology.secondary.base_station:
                raise ConfigurationError(
                    "the base station does not originate data flows"
                )
        self.flows = [tuple(flow) for flow in flows]

        self._routes: List[List[int]] = []
        if routing == "min-hop":
            # One BFS per distinct source covers all its flows.
            parents_by_source = {}
            for source, destination in self.flows:
                if source not in parents_by_source:
                    parents_by_source[source] = bfs_parents(graph, source)
                route = extract_path(parents_by_source[source], destination)
                if route is None:
                    raise GraphError(
                        f"no route from {source} to {destination}; G_s must "
                        "be connected"
                    )
                self._routes.append(route)
        else:
            temperatures = node_temperatures_at_range(
                topology, p_t, topology.secondary.radius
            )
            weights = [float(t) + 1e-6 for t in temperatures]
            parents_by_source = {}
            for source, destination in self.flows:
                if source not in parents_by_source:
                    _, parents_by_source[source] = dijkstra_node_weighted(
                        graph, source, weights
                    )
                route = extract_path(parents_by_source[source], destination)
                if route is None:
                    raise GraphError(
                        f"no route from {source} to {destination}; G_s must "
                        "be connected"
                    )
                self._routes.append(route)

    def build_workload(self) -> List[Packet]:
        """One routed data packet per flow (packet id = flow index)."""
        return [
            Packet(
                packet_id=index,
                source=route[0],
                route=list(route),
            )
            for index, route in enumerate(self._routes)
        ]

    def route_of(self, flow_index: int) -> List[int]:
        """The computed route of one flow."""
        return list(self._routes[flow_index])

    def next_hop(self, node: int, packet: Packet) -> int:
        """Follow the packet's own route."""
        if packet.route is None:
            raise ConfigurationError("unicast packets must carry routes")
        if packet.route[packet.route_pos] != node:
            raise GraphError(
                f"packet {packet.packet_id} expected at "
                f"{packet.route[packet.route_pos]}, found at {node}"
            )
        return packet.route[packet.route_pos + 1]

    def describe(self) -> str:
        """Policy name for reports."""
        return f"Unicast({self.routing}, {len(self.flows)} flows)"


def run_unicast(
    topology: CrnTopology,
    streams,
    flows: Sequence[Tuple[int, int]],
    routing: str = "min-hop",
    eta_p_db: float = 8.0,
    eta_s_db: float = 8.0,
    alpha: float = 4.0,
    zeta_bound: str = "paper",
    blocking: str = "geometric",
    fairness_wait: bool = True,
    max_slots: int = 2_000_000,
):
    """Deliver one packet per (source, destination) flow over the ADDC MAC.

    Returns ``(policy, result)`` — the policy exposes each flow's route,
    the result carries the usual delivery records (delivery record ``i``
    belongs to flow ``i``).
    """
    from repro.core.analysis import opportunity_probability
    from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
    from repro.sim.engine import SlottedEngine
    from repro.spectrum.sensing import CarrierSenseMap

    pcr = compute_pcr(
        PcrParameters(
            alpha=alpha,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=eta_p_db,
            eta_s_db=eta_s_db,
            zeta_bound=zeta_bound,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    policy = UnicastPolicy(
        topology,
        flows,
        routing=routing,
        p_t=topology.primary.activity.stationary_probability,
        fairness_wait=fairness_wait,
    )
    homogeneous_p_o = None
    if blocking == "homogeneous":
        homogeneous_p_o = opportunity_probability(
            topology.primary.activity.stationary_probability,
            pcr.kappa,
            topology.secondary.radius,
            topology.primary.num_pus,
            topology.region.area,
        )
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=policy,
        streams=streams,
        alpha=alpha,
        eta_s=db_to_linear(eta_s_db),
        blocking=blocking,
        homogeneous_p_o=homogeneous_p_o,
        max_slots=max_slots,
    )
    engine.load_packets(policy.build_workload())
    return policy, engine.run()
