"""Spectrum-temperature metrics (the Coolest routing metric family [17]).

The *spectrum temperature* of a node measures how intensively PUs occupy
the spectrum around it.  With the paper's slotted Bernoulli PU model, the
natural temperature of node ``i`` is the probability that some PU inside
its sensing range transmits during a slot:

.. math::  T_i = 1 - (1 - p_t)^{m_i},

where ``m_i`` counts PUs within the node's sensing range — exactly the
complement of the node's spectrum-opportunity probability.  On top of the
node temperatures, [17] defines three path metrics:

* **accumulated** — the sum of node temperatures along the path,
* **highest** — the hottest node on the path (a bottleneck metric),
* **mixed** — accumulated with a superlinear penalty on hot nodes,
  concretized here as ``sum T_i (1 + T_i)`` (this paper does not restate
  [17]'s exact mixing formula; any superlinear blend preserves the
  behaviour the comparison relies on — paths detour around hot regions).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.spectrum.opportunity import per_node_opportunity_probability
from repro.spectrum.sensing import CarrierSenseMap

__all__ = [
    "node_temperatures",
    "node_temperatures_at_range",
    "path_accumulated_temperature",
    "path_highest_temperature",
    "path_mixed_temperature",
    "mixed_node_weights",
]


def node_temperatures(sense_map: CarrierSenseMap, p_t: float) -> np.ndarray:
    """Per-node spectrum temperature ``1 - (1 - p_t)^{m_i}``.

    Values lie in ``[0, 1)``; hotter nodes see PU activity more often.
    """
    return 1.0 - per_node_opportunity_probability(sense_map, p_t)


def node_temperatures_at_range(topology, p_t: float, sensing_range: float) -> np.ndarray:
    """Temperatures with ``m_i`` counted at an explicit sensing range.

    Coolest [17] predates the PCR analysis: its nodes estimate spectrum
    utilization from their own radios, i.e. at their transmission radius
    ``r``, not at the PCR.  This is the range the baseline uses.
    """
    if not 0.0 <= p_t <= 1.0:
        raise ConfigurationError(f"p_t must be in [0, 1], got {p_t}")
    if sensing_range <= 0:
        raise ConfigurationError(
            f"sensing_range must be positive, got {sensing_range}"
        )
    counts_lists = topology.su_index.cross_neighbor_lists(
        topology.primary.positions, sensing_range
    )
    counts = np.zeros(topology.secondary.num_nodes)
    for pu_index, nodes in enumerate(counts_lists):
        for node in nodes:
            counts[node] += 1.0
    return 1.0 - (1.0 - p_t) ** counts


def _check_path(path: Sequence[int], temperatures: Sequence[float]) -> None:
    if len(path) == 0:
        raise ConfigurationError("path must contain at least one node")
    for node in path:
        if not 0 <= node < len(temperatures):
            raise ConfigurationError(f"path node {node} has no temperature")


def path_accumulated_temperature(
    path: Sequence[int], temperatures: Sequence[float]
) -> float:
    """Accumulated spectrum temperature: the sum over path nodes."""
    _check_path(path, temperatures)
    return float(sum(temperatures[node] for node in path))


def path_highest_temperature(
    path: Sequence[int], temperatures: Sequence[float]
) -> float:
    """Highest spectrum temperature: the max over path nodes."""
    _check_path(path, temperatures)
    return float(max(temperatures[node] for node in path))


def path_mixed_temperature(
    path: Sequence[int], temperatures: Sequence[float]
) -> float:
    """Mixed metric: ``sum T_i (1 + T_i)`` — accumulated with a
    superlinear penalty that avoids individually hot nodes."""
    _check_path(path, temperatures)
    return float(
        sum(temperatures[node] * (1.0 + temperatures[node]) for node in path)
    )


def mixed_node_weights(temperatures: Sequence[float]) -> List[float]:
    """Additive per-node weights whose path sum is the mixed metric."""
    return [float(t) * (1.0 + float(t)) for t in temperatures]
