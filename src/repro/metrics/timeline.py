"""Delivery timelines: the base station's receiving rate over time.

The paper defines capacity as the *average* receiving rate at the base
station; the timeline shows how that rate evolves — a warm-up while the
leaves drain into the backbone, a steady plateau, and a tail as the last
subtrees empty.  :func:`steady_state_rate` extracts the plateau, the number
to compare against Theorem 2's capacity lower bound.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.sim.results import PacketRecord

__all__ = ["delivery_timeline", "steady_state_rate"]


def delivery_timeline(
    deliveries: Sequence[PacketRecord], window_slots: int
) -> List[float]:
    """Packets delivered per slot, in consecutive windows.

    The last (possibly partial) window is normalized by its true width.
    """
    if window_slots < 1:
        raise ConfigurationError(f"window_slots must be >= 1, got {window_slots}")
    if not deliveries:
        raise ConfigurationError("need at least one delivery")
    horizon = max(record.delivered_slot for record in deliveries) + 1
    windows = (horizon + window_slots - 1) // window_slots
    counts = [0] * windows
    for record in deliveries:
        counts[record.delivered_slot // window_slots] += 1
    rates = []
    for index, count in enumerate(counts):
        width = min(window_slots, horizon - index * window_slots)
        rates.append(count / width)
    return rates


def steady_state_rate(
    deliveries: Sequence[PacketRecord], window_slots: int = 200
) -> float:
    """Median windowed rate over the middle half of the run.

    Skips the first and last quarters (warm-up and tail), leaving the
    sustained plateau the capacity analysis talks about.
    """
    rates = delivery_timeline(deliveries, window_slots)
    if len(rates) < 4:
        # Too short for a warm-up/tail split; use everything.
        middle = rates
    else:
        quarter = len(rates) // 4
        middle = rates[quarter : len(rates) - quarter]
    ordered = sorted(middle)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
