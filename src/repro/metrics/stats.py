"""Statistical inference helpers for repeated-simulation results.

Simulation papers report means over a handful of repetitions; these
helpers attach the uncertainty those means carry:

* :func:`t_confidence_interval` — the classic Student-t interval for the
  mean of i.i.d. repetitions,
* :func:`bootstrap_confidence_interval` — percentile bootstrap for small,
  skewed samples (delay distributions usually are),
* :func:`comparison_significant` — whether an observed ADDC-vs-baseline
  gap survives its uncertainty (Welch's t-test).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.errors import ConfigurationError

__all__ = [
    "ConfidenceInterval",
    "t_confidence_interval",
    "bootstrap_confidence_interval",
    "comparison_significant",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval for a mean."""

    mean: float
    lower: float
    upper: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the interval width (the +/- the paper would print)."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def _check_sample(values: Sequence[float], minimum: int) -> np.ndarray:
    sample = np.asarray(values, dtype=float)
    if sample.ndim != 1 or sample.size < minimum:
        raise ConfigurationError(
            f"need at least {minimum} repetitions, got {sample.size}"
        )
    if not np.isfinite(sample).all():
        raise ConfigurationError("sample must be finite")
    return sample


def t_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean.

    >>> ci = t_confidence_interval([10.0, 12.0, 11.0, 13.0])
    >>> ci.contains(11.5)
    True
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    sample = _check_sample(values, minimum=2)
    mean = float(sample.mean())
    stderr = float(sample.std(ddof=1)) / math.sqrt(sample.size)
    quantile = float(_scipy_stats.t.ppf((1.0 + confidence) / 2.0, sample.size - 1))
    margin = quantile * stderr
    return ConfidenceInterval(
        mean=mean, lower=mean - margin, upper=mean + margin, confidence=confidence
    )


# Seed of the legacy `seed=`-less call path, kept so historical results
# (and the golden regression fixtures) replay bit-for-bit.
_LEGACY_BOOTSTRAP_SEED = 0


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = None,
    *,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean.

    Resampling randomness should be injected by the caller so it is tracked
    by the experiment's :class:`repro.rng.StreamFactory`::

        ci = bootstrap_confidence_interval(
            delays, rng=streams.stream("bootstrap")
        )

    ``seed=`` is a deprecated fallback (it creates a generator the stream
    factory cannot see); omitting both draws from a fixed legacy seed so
    existing call sites keep returning identical intervals.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ConfigurationError(f"resamples must be >= 100, got {resamples}")
    sample = _check_sample(values, minimum=2)
    if rng is not None:
        if seed is not None:
            raise ConfigurationError("pass either rng= or seed=, not both")
    else:
        if seed is not None:
            warnings.warn(
                "bootstrap_confidence_interval(seed=...) is deprecated; pass "
                "rng=StreamFactory(seed).stream('bootstrap') so the draw is "
                "tracked by the reproducibility contract",
                DeprecationWarning,
                stacklevel=2,
            )
        # Deprecated fallback: an untracked, seed-addressed generator.
        # reprolint: disable=RNG002 -- legacy seeded path, kept for bit-compat
        rng = np.random.default_rng(
            _LEGACY_BOOTSTRAP_SEED if seed is None else seed
        )
    indices = rng.integers(0, sample.size, size=(resamples, sample.size))
    means = sample[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        mean=float(sample.mean()),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


def comparison_significant(
    baseline: Sequence[float],
    treatment: Sequence[float],
    alpha: float = 0.05,
) -> Tuple[bool, float]:
    """Welch's t-test: is the two-sample mean difference significant?

    Returns ``(significant, p_value)``.  Used to decide whether a measured
    ADDC-vs-Coolest gap at few repetitions is more than noise.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    a = _check_sample(baseline, minimum=2)
    b = _check_sample(treatment, minimum=2)
    _, p_value = _scipy_stats.ttest_ind(a, b, equal_var=False)
    return bool(p_value < alpha), float(p_value)
