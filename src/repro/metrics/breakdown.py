"""Trace-based breakdowns: where did the time go?

Operates on a :class:`~repro.sim.trace.TraceLog` captured during a run:

* :func:`packet_journey` — the slot-stamped event sequence of one packet
  (every transmission start, loss and hop until delivery);
* :func:`node_activity` — per-node counts of draws, freezes, attempts,
  losses and successes;
* :func:`hop_latencies` — per-hop waiting times of one packet, the
  quantity Theorem 1 bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.sim.trace import TraceEvent, TraceKind, TraceLog

__all__ = ["NodeActivity", "packet_journey", "node_activity", "hop_latencies"]


@dataclass
class NodeActivity:
    """Event counts for one node over a traced run."""

    node: int
    backoff_draws: int = 0
    freezes: int = 0
    tx_attempts: int = 0
    tx_successes: int = 0
    collisions: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of attempts lost to collisions (0 if it never sent)."""
        if self.tx_attempts == 0:
            return 0.0
        return self.collisions / self.tx_attempts


def packet_journey(trace: TraceLog, packet_id: int) -> List[TraceEvent]:
    """Every traced event that carries the given packet id, in order."""
    journey = [
        event for event in trace if event.packet_id == packet_id
    ]
    if not journey:
        raise ConfigurationError(f"packet {packet_id} never appears in the trace")
    return journey


def node_activity(trace: TraceLog) -> Dict[int, NodeActivity]:
    """Aggregate per-node event counts."""
    activity: Dict[int, NodeActivity] = {}

    def entry(node: int) -> NodeActivity:
        if node not in activity:
            activity[node] = NodeActivity(node=node)
        return activity[node]

    for event in trace:
        record = entry(event.node)
        if event.kind is TraceKind.BACKOFF_DRAW:
            record.backoff_draws += 1
        elif event.kind is TraceKind.FREEZE:
            record.freezes += 1
        elif event.kind is TraceKind.TX_START:
            record.tx_attempts += 1
        elif event.kind is TraceKind.TX_SUCCESS:
            record.tx_successes += 1
        elif event.kind is TraceKind.TX_COLLISION:
            record.collisions += 1
    return activity


def hop_latencies(trace: TraceLog, packet_id: int) -> List[int]:
    """Slots spent at each hop of one packet's journey.

    Hop latency counts from the packet's previous successful transmission
    (or slot 0 at the source) to the next one — queueing, spectrum waiting
    and contention combined.  The sum equals the packet's total delay.
    """
    journey = packet_journey(trace, packet_id)
    successes = [
        event for event in journey if event.kind is TraceKind.TX_SUCCESS
    ]
    if not successes:
        raise ConfigurationError(
            f"packet {packet_id} was never successfully transmitted"
        )
    latencies: List[int] = []
    previous_slot = 0
    for event in successes:
        latencies.append(event.slot - previous_slot + 1)
        previous_slot = event.slot + 1
    return latencies
