"""Energy accounting for battery-powered secondary networks.

The sensor-field deployments the paper's introduction motivates live on
batteries; their budget splits across three radio states:

* **listening** — carrier sensing while contending for the spectrum (the
  engine's per-node active spans),
* **transmitting** — every attempt, successful or not, and
* **receiving** — every successfully decoded packet.

:func:`energy_consumption` turns a finished run's counters into per-node
joule figures under a simple per-slot cost model; collisions and control
overhead (Coolest's RREQ/RREP) surface directly as extra transmit/receive
energy, which is how protocol overheads actually hurt in the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

__all__ = ["EnergyModel", "EnergyReport", "energy_consumption"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-slot radio costs, in joules (defaults: typical low-power radio,
    ~60 mW transmit, ~50 mW receive, ~3 mW idle-listen, 1 ms slots)."""

    tx_per_slot: float = 60e-6
    rx_per_slot: float = 50e-6
    listen_per_slot: float = 3e-6

    def __post_init__(self) -> None:
        for name in ("tx_per_slot", "rx_per_slot", "listen_per_slot"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass
class EnergyReport:
    """Energy totals of one run."""

    per_node_joules: Dict[int, float]
    tx_joules: float
    rx_joules: float
    listen_joules: float

    @property
    def total_joules(self) -> float:
        """All energy spent by the secondary network."""
        return self.tx_joules + self.rx_joules + self.listen_joules

    @property
    def max_node_joules(self) -> float:
        """The hottest node's spend — the battery that dies first."""
        if not self.per_node_joules:
            return 0.0
        return max(self.per_node_joules.values())

    def per_delivered_packet(self, delivered: int) -> float:
        """Network energy per delivered data packet."""
        if delivered < 1:
            raise ConfigurationError("delivered must be >= 1")
        return self.total_joules / delivered


def energy_consumption(
    result: SimulationResult,
    model: "EnergyModel | None" = None,
    packet_slots: int = 1,
) -> EnergyReport:
    """Energy spent in a finished run under the given cost model.

    Listening is charged for every slot of a node's contention spans (the
    engine accumulates them); transmission is charged per attempt times
    the packet length; reception per successfully decoded packet.
    """
    if model is None:
        model = EnergyModel()
    if packet_slots < 1:
        raise ConfigurationError(f"packet_slots must be >= 1, got {packet_slots}")

    per_node: Dict[int, float] = {}
    tx_total = rx_total = listen_total = 0.0

    for node, attempts in result.tx_attempts.items():
        cost = attempts * packet_slots * model.tx_per_slot
        per_node[node] = per_node.get(node, 0.0) + cost
        tx_total += cost
    for node, received in result.rx_successes.items():
        cost = received * packet_slots * model.rx_per_slot
        per_node[node] = per_node.get(node, 0.0) + cost
        rx_total += cost
    for node, span in result.active_slot_spans.items():
        cost = span * model.listen_per_slot
        per_node[node] = per_node.get(node, 0.0) + cost
        listen_total += cost

    return EnergyReport(
        per_node_joules=per_node,
        tx_joules=tx_total,
        rx_joules=rx_total,
        listen_joules=listen_total,
    )
