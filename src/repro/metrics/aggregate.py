"""Aggregation across simulation repetitions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "RunStatistics",
    "summarize_delays",
    "relative_delay_reduction_percent",
]


@dataclass(frozen=True)
class RunStatistics:
    """Mean/std/min/max summary of one measured quantity over repetitions."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)


def summarize_delays(delays: Sequence[float]) -> RunStatistics:
    """Summary statistics of per-repetition delays (any positive metric).

    Uses the sample standard deviation (``n - 1`` denominator) to match how
    repeated-simulation error bars are normally reported.
    """
    if len(delays) == 0:
        raise ConfigurationError("need at least one repetition")
    values = [float(v) for v in delays]
    if any(not math.isfinite(v) for v in values):
        raise ConfigurationError("delays must be finite (incomplete run?)")
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    else:
        variance = 0.0
    return RunStatistics(
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        count=len(values),
    )


def relative_delay_reduction_percent(addc_delay: float, coolest_delay: float) -> float:
    """The paper's headline comparison: how much less delay ADDC induces.

    Defined as ``(coolest - addc) / addc * 100`` so that "ADDC induces 266%
    less delay" corresponds to Coolest taking 3.66x ADDC's time.
    """
    if addc_delay <= 0 or coolest_delay <= 0:
        raise ConfigurationError("delays must be positive")
    return (coolest_delay - addc_delay) / addc_delay * 100.0
