"""Resilience metrics for runs under fault injection (:mod:`repro.faults`).

A fault-free collection is judged by its delay; a faulted one is judged by
how much of the snapshot still arrives and how quickly the network heals.
:func:`resilience_report` condenses a finished run's fault bookkeeping into
the four quantities the chaos benchmarks sweep:

* **delivery ratio** — delivered fraction of the expected data packets;
* **repair latency** — slots from an outage's onset to the node's actual
  tree re-attachment (later than the scheduled recovery when the
  neighbourhood was still down);
* **downtime-weighted throughput** — delivery rate normalized by the
  node-slots that were actually available, separating protocol loss from
  capacity that simply was not there;
* **orphaned packets per fault event** — how much data the average fault
  destroys (queues lost with nodes, in-flight transmissions into them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import repro.obs as obs
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

__all__ = ["ResilienceReport", "resilience_report"]

#: Fault kinds that take the node off the air (and so consume node-slots).
_DOWNTIME_KINDS = ("crash", "outage")


@dataclass(frozen=True)
class ResilienceReport:
    """Resilience summary of one (possibly faulted) run."""

    delivery_ratio: Optional[float]
    packets_lost: int
    packets_orphaned: int
    fault_events: int
    outages_recovered: int
    outages_open: int
    mean_repair_slots: Optional[float]
    max_repair_slots: Optional[int]
    availability: float
    downtime_weighted_throughput: Optional[float]
    blackout_failures: int
    arrivals_deferred: int

    @property
    def orphans_per_fault(self) -> float:
        """Mean data packets destroyed per applied fault event."""
        if self.fault_events == 0:
            return 0.0
        return self.packets_orphaned / self.fault_events

    def summary(self) -> str:
        """One-line human-readable summary."""
        ratio = (
            "n/a" if self.delivery_ratio is None else f"{self.delivery_ratio:.3f}"
        )
        repair = (
            "n/a"
            if self.mean_repair_slots is None
            else f"{self.mean_repair_slots:.1f}"
        )
        return (
            f"delivery {ratio}, {self.fault_events} fault(s), "
            f"{self.outages_recovered} recovered "
            f"(mean repair {repair} slots), "
            f"availability {self.availability:.3f}, "
            f"{self.packets_orphaned} orphaned"
        )


def resilience_report(
    result: SimulationResult, num_sus: int
) -> ResilienceReport:
    """Condense a finished run into a :class:`ResilienceReport`.

    ``num_sus`` sizes the availability denominator (node-slots the network
    would have offered fault-free).  Works on fault-free runs too: every
    fault figure is zero and availability is 1, so resilience sweeps can
    include the intensity-0 point without special cases.
    """
    if num_sus < 1:
        raise ConfigurationError(f"num_sus must be >= 1, got {num_sus}")
    slots = result.slots_simulated

    repairs: List[int] = []
    outages_open = 0
    down_node_slots = 0
    for record in result.fault_records:
        if record.kind == "outage":
            if record.recovered_slot is None:
                outages_open += 1
            else:
                repairs.append(record.recovered_slot - record.slot)
        if record.kind in _DOWNTIME_KINDS:
            end = record.recovered_slot if record.recovered_slot is not None else slots
            down_node_slots += max(end - record.slot, 0)

    availability = 1.0
    if slots > 0:
        availability = max(1.0 - down_node_slots / (num_sus * slots), 0.0)

    throughput = None
    if slots > 0 and availability > 0.0:
        throughput = result.delivered / (slots * availability)

    report = ResilienceReport(
        delivery_ratio=result.delivery_ratio,
        packets_lost=result.packets_lost,
        packets_orphaned=result.packets_orphaned,
        fault_events=result.fault_event_count,
        outages_recovered=len(repairs),
        outages_open=outages_open,
        mean_repair_slots=(sum(repairs) / len(repairs)) if repairs else None,
        max_repair_slots=max(repairs) if repairs else None,
        availability=availability,
        downtime_weighted_throughput=throughput,
        blackout_failures=result.blackout_failures,
        arrivals_deferred=result.arrivals_deferred,
    )
    if obs.enabled():
        obs.gauge_set("resilience.availability", report.availability)
        obs.gauge_set("resilience.fault_events", report.fault_events)
        obs.gauge_set("resilience.packets_orphaned", report.packets_orphaned)
        if report.mean_repair_slots is not None:
            obs.gauge_set("resilience.mean_repair_slots", report.mean_repair_slots)
        if report.delivery_ratio is not None:
            obs.gauge_set("resilience.delivery_ratio", report.delivery_ratio)
    return report
