"""Run-level and cross-run metrics.

:class:`~repro.sim.results.SimulationResult` carries single-run metrics;
this package aggregates across repetitions and compares algorithms the way
the paper reports them ("on average, ADDC induces 266% less delay compared
with Coolest" — i.e. ``(coolest - addc) / addc`` as a percentage).
"""

from repro.metrics.aggregate import (
    RunStatistics,
    summarize_delays,
    relative_delay_reduction_percent,
)
from repro.metrics.energy import EnergyModel, EnergyReport, energy_consumption
from repro.metrics.breakdown import (
    NodeActivity,
    hop_latencies,
    node_activity,
    packet_journey,
)
from repro.metrics.resilience import ResilienceReport, resilience_report
from repro.metrics.rounds import per_round_delays, sustainable_period_estimate
from repro.metrics.timeline import delivery_timeline, steady_state_rate
from repro.metrics.stats import (
    ConfidenceInterval,
    bootstrap_confidence_interval,
    comparison_significant,
    t_confidence_interval,
)

__all__ = [
    "RunStatistics",
    "summarize_delays",
    "relative_delay_reduction_percent",
    "per_round_delays",
    "delivery_timeline",
    "steady_state_rate",
    "sustainable_period_estimate",
    "ConfidenceInterval",
    "bootstrap_confidence_interval",
    "comparison_significant",
    "t_confidence_interval",
    "EnergyModel",
    "EnergyReport",
    "energy_consumption",
    "ResilienceReport",
    "resilience_report",
    "NodeActivity",
    "hop_latencies",
    "node_activity",
    "packet_journey",
]
