"""Per-round metrics for continuous (periodic) collection runs."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.sim.results import PacketRecord

__all__ = ["per_round_delays", "sustainable_period_estimate"]


def per_round_delays(deliveries: Sequence[PacketRecord]) -> Dict[int, int]:
    """Completion delay of each snapshot round, keyed by its birth slot.

    A round's delay is the number of slots from its birth until its last
    packet reaches the base station (inclusive) — the same definition the
    paper uses for the single-snapshot task.
    """
    if not deliveries:
        raise ConfigurationError("need at least one delivery")
    last_delivery: Dict[int, int] = {}
    for record in deliveries:
        current = last_delivery.get(record.birth_slot)
        if current is None or record.delivered_slot > current:
            last_delivery[record.birth_slot] = record.delivered_slot
    return {
        birth: delivered - birth + 1 for birth, delivered in last_delivery.items()
    }


def sustainable_period_estimate(deliveries: Sequence[PacketRecord]) -> float:
    """Estimate of the smallest sustainable snapshot period, in slots.

    In steady state the network can absorb one snapshot per *service time*
    of a full round; the max per-round delay over the later half of the run
    (ignoring warm-up) estimates it.  A period below this makes queues grow
    without bound.
    """
    delays = per_round_delays(deliveries)
    births = sorted(delays)
    steady = births[len(births) // 2 :]
    return float(max(delays[birth] for birth in steady))
