"""One-call ADDC data collection.

Glues the pieces together in the order the paper presents them: build the
CDS-based collection tree over ``G_s``, derive the PCR, configure carrier
sensing, run Algorithm 1 until the snapshot is collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.addc import AddcPolicy
from repro.core.analysis import TheoreticalBounds, opportunity_probability
from repro.errors import ConfigurationError
from repro.core.pcr import PcrParameters, PcrResult, compute_pcr, db_to_linear
from repro.graphs.tree import CollectionTree, build_bfs_tree, build_collection_tree
from repro.network.topology import CrnTopology
from repro.rng import StreamFactory
from repro.sim.engine import SlottedEngine
from repro.sim.results import SimulationResult
from repro.sim.trace import TraceLog
from repro.spectrum.sensing import CarrierSenseMap

__all__ = ["CollectionOutcome", "run_addc_collection"]


@dataclass
class CollectionOutcome:
    """A finished run plus everything needed to interpret it."""

    result: SimulationResult
    tree: CollectionTree
    pcr: PcrResult
    sense_map: CarrierSenseMap
    bounds: Optional[TheoreticalBounds] = None
    #: The engine that produced ``result``; exposes post-run RNG stream
    #: positions (``engine.rng_positions()``) for determinism checks.
    engine: Optional[SlottedEngine] = None


def run_addc_collection(
    topology: CrnTopology,
    streams: StreamFactory,
    eta_p_db: float = 8.0,
    eta_s_db: float = 8.0,
    alpha: float = 4.0,
    zeta_bound: str = "paper",
    fairness_wait: bool = True,
    use_cds_tree: bool = True,
    blocking: str = "geometric",
    p_t: Optional[float] = None,
    p_false_alarm: float = 0.0,
    p_missed_detection: float = 0.0,
    rounds: int = 1,
    period_slots: Optional[int] = None,
    num_channels: int = 1,
    channel_strategy: str = "random-idle",
    packet_slots: int = 1,
    departure_schedule=None,
    fault_plan=None,
    max_slots: int = 2_000_000,
    fast_forward: bool = True,
    contention_window_ms: float = 0.5,
    slot_duration_ms: float = 1.0,
    trace: Optional[TraceLog] = None,
    with_bounds: bool = True,
) -> CollectionOutcome:
    """Collect one snapshot (or a periodic stream of them) with ADDC.

    Parameters mirror the paper's simulation settings; ``use_cds_tree=False``
    swaps in the BFS-tree routing structure (Ablation C), and
    ``fairness_wait=False`` disables line 12 of Algorithm 1 (Ablation A).
    ``p_false_alarm`` / ``p_missed_detection`` enable imperfect spectrum
    sensing.  ``rounds > 1`` with ``period_slots`` runs the continuous
    (periodic-snapshot) workload instead of the paper's single snapshot.
    ``fault_plan`` injects scripted adversity (:mod:`repro.faults`).
    ``num_channels > 1`` spreads the PUs uniformly over that many licensed
    channels (the paper's model is the single-channel case).
    """
    pcr_params = PcrParameters(
        alpha=alpha,
        pu_power=topology.primary.power,
        su_power=topology.secondary.power,
        pu_radius=topology.primary.radius,
        su_radius=topology.secondary.radius,
        eta_p_db=eta_p_db,
        eta_s_db=eta_s_db,
        zeta_bound=zeta_bound,
    )
    pcr = compute_pcr(pcr_params)

    builder = build_collection_tree if use_cds_tree else build_bfs_tree
    tree = builder(topology.secondary.graph, topology.secondary.base_station)

    sense_map = CarrierSenseMap(topology, pcr.pcr)
    policy = AddcPolicy(
        tree, fairness_wait=fairness_wait, graph=topology.secondary.graph
    )
    effective_p_t = (
        p_t if p_t is not None else topology.primary.activity.stationary_probability
    )
    channel_plan = None
    if num_channels > 1:
        from repro.network.channels import ChannelPlan

        channel_plan = ChannelPlan.uniform(
            topology.primary.num_pus, num_channels, streams.stream("channel-plan")
        )
    homogeneous_p_o = None
    if blocking == "homogeneous":
        # Per-channel mean field: with C channels, each carries N/C PUs on
        # average, so the per-channel opportunity probability uses N/C.
        homogeneous_p_o = opportunity_probability(
            effective_p_t,
            pcr.kappa,
            topology.secondary.radius,
            topology.primary.num_pus / num_channels,
            topology.region.area,
        )
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=policy,
        streams=streams,
        alpha=alpha,
        eta_s=db_to_linear(eta_s_db),
        sir_check=True,
        blocking=blocking,
        homogeneous_p_o=homogeneous_p_o,
        p_false_alarm=p_false_alarm,
        p_missed_detection=p_missed_detection,
        channel_plan=channel_plan,
        channel_strategy=channel_strategy,
        packet_slots=packet_slots,
        departure_schedule=departure_schedule,
        fault_plan=fault_plan,
        slot_duration_ms=slot_duration_ms,
        contention_window_ms=contention_window_ms,
        max_slots=max_slots,
        fast_forward=fast_forward,
        trace=trace,
    )
    if rounds > 1:
        if period_slots is None:
            raise ConfigurationError("periodic collection needs period_slots")
        from repro.workloads.periodic import periodic_snapshot_workload

        engine.load_packets(
            periodic_snapshot_workload(topology.secondary, rounds, period_slots)
        )
    else:
        engine.load_snapshot()
    result = engine.run()

    bounds = None
    if with_bounds:
        bounds = TheoreticalBounds.for_scenario(
            num_sus=topology.secondary.num_sus,
            num_pus=topology.primary.num_pus,
            area=topology.region.area,
            p_t=effective_p_t,
            kappa=pcr.kappa,
            su_radius=topology.secondary.radius,
            delta=tree.max_degree(),
            root_degree=max(tree.root_degree(), 1),
        )
    return CollectionOutcome(
        result=result,
        tree=tree,
        pcr=pcr,
        sense_map=sense_map,
        bounds=bounds,
        engine=engine,
    )
