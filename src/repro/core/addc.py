"""ADDC (Algorithm 1) as a MAC policy.

The engine owns the carrier-sensing/backoff machinery (lines 1-11); this
policy contributes the two ADDC-specific decisions:

* **routing** — every packet goes to the node's parent in the CDS-based
  data-collection tree (Section IV-A), and
* **fairness** — the post-transmission wait ``tau_c - t_i`` is enabled
  (line 12); ``fairness_wait=False`` gives the Ablation-A variant.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, GraphError
from repro.graphs.tree import CollectionTree
from repro.sim.packet import Packet

__all__ = ["AddcPolicy"]


class AddcPolicy:
    """Tree-parent forwarding with the Algorithm 1 fairness wait.

    ``graph`` (the secondary network's ``G_s``) is only needed when the
    engine injects runtime node departures: the policy then repairs the
    tree locally (:mod:`repro.graphs.repair`) and reports any partitioned
    nodes.
    """

    def __init__(
        self, tree: CollectionTree, fairness_wait: bool = True, graph=None
    ) -> None:
        self.tree = tree
        self.fairness_wait = bool(fairness_wait)
        self.graph = graph
        # Roles of transiently-down nodes, restored on rejoin so a
        # recovered backbone member comes back *as backbone* and its
        # stranded former descendants can re-adopt it.
        self._saved_roles = {}

    def next_hop(self, node: int, packet: Packet) -> int:
        """Forward to the collection-tree parent, whatever the packet."""
        parent = self.tree.parent[node]
        if parent == node:
            raise ConfigurationError(
                "the base station never transmits; a packet was queued at the root"
            )
        if parent == -1:
            raise ConfigurationError(
                f"node {node} is detached from the collection tree"
            )
        return parent

    def on_node_departure(self, node: int):
        """Repair the tree after ``node`` leaves; return partitioned nodes.

        Direct children re-parent locally; a child with no surviving
        backbone neighbour is stranded and takes its whole subtree with it.
        """
        if self.graph is None:
            raise ConfigurationError(
                "AddcPolicy needs the secondary graph to repair departures; "
                "construct it with graph=G_s"
            )
        from repro.graphs.repair import detach_node, orphaned_subtree

        partitioned = []
        for child in detach_node(self.tree, self.graph, node):
            subtree = orphaned_subtree(self.tree, child)
            partitioned.append(child)
            partitioned.extend(subtree)
            for orphan in [child, *subtree]:
                self.tree.parent[orphan] = -1
        return partitioned

    def on_node_outage(self, node: int):
        """Repair around a transiently-down node, remembering roles.

        Same tree surgery as a departure, but the roles of the node and of
        every node the repair strands are saved for :meth:`on_node_rejoin`.
        """
        self._saved_roles.setdefault(node, self.tree.roles[node])
        partitioned = self.on_node_departure(node)
        for orphan in partitioned:
            self._saved_roles.setdefault(orphan, self.tree.roles[orphan])
        return partitioned

    def on_node_rejoin(self, node: int) -> bool:
        """Try to re-attach a recovered node; ``False`` means retry later.

        Attachment needs an adjacent attached backbone member
        (:func:`repro.graphs.repair.attach_node`); a recovered node whose
        neighbourhood is still down waits.  On success the node's
        pre-outage role is restored and depths are refreshed so
        depth-ordered repairs stay consistent.
        """
        if self.graph is None:
            raise ConfigurationError(
                "AddcPolicy needs the secondary graph to repair outages; "
                "construct it with graph=G_s"
            )
        from repro.graphs.repair import attach_node, refresh_depths

        try:
            attach_node(self.tree, self.graph, node)
        except GraphError:
            return False
        saved = self._saved_roles.pop(node, None)
        if saved is not None:
            self.tree.roles[node] = saved
        refresh_depths(self.tree)
        return True

    def describe(self) -> str:
        """Policy name for reports."""
        suffix = "" if self.fairness_wait else " (no fairness wait)"
        return f"ADDC{suffix}"
