"""Explicit float-comparison helpers.

The geometry/spectrum/core layers accumulate rounding error through
path-loss powers and packing bounds, so exact ``==`` against floats is
banned there (reprolint rule INV002).  These helpers make the intent of
every comparison explicit:

* :func:`close` — tolerance equality (a thin :func:`math.isclose` wrapper
  with the library's default tolerances),
* :func:`is_zero` — a *named* zero guard.  The default ``abs_tol=0.0``
  keeps exact-zero semantics (the only dangerous value for a divisor is
  0.0 itself); pass ``abs_tol`` to also treat underflowed dust as zero.
"""

from __future__ import annotations

import math

__all__ = ["close", "is_zero"]


def close(
    a: float, b: float, rel_tol: float = 1e-9, abs_tol: float = 1e-12
) -> bool:
    """Tolerance equality for accumulated floats.

    >>> close(0.1 + 0.2, 0.3)
    True
    >>> close(1.0, 1.1)
    False
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, abs_tol: float = 0.0) -> bool:
    """Whether ``value`` is (effectively) zero.

    With the default ``abs_tol=0.0`` this is an exact-zero guard — useful
    before divisions, where any non-zero float is safe.

    >>> is_zero(0.0)
    True
    >>> is_zero(1e-300)
    False
    >>> is_zero(1e-300, abs_tol=1e-12)
    True
    """
    return abs(value) <= abs_tol
