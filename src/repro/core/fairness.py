"""Fairness accounting.

The paper motivates the post-transmission wait (Algorithm 1, line 12) by
fairness: without it, an SU that keeps drawing small timers could occupy the
spectrum while PCR neighbours starve.  Two quantitative views:

* :func:`jain_index` — Jain's fairness index over per-node service counts,
  ``(sum x)^2 / (k * sum x^2)``; 1.0 means perfectly even service.
* :func:`transmission_share` — the largest fraction of all transmissions
  taken by any single node, a starvation indicator.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.numeric import is_zero
from repro.errors import ConfigurationError

__all__ = ["jain_index", "transmission_share", "per_source_delay_spread"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector.

    >>> jain_index([1.0, 1.0, 1.0])
    1.0
    >>> round(jain_index([1.0, 0.0, 0.0]), 4)
    0.3333
    """
    if len(values) == 0:
        raise ConfigurationError("jain_index needs at least one value")
    if any(v < 0 for v in values):
        raise ConfigurationError("jain_index needs non-negative values")
    total = float(sum(values))
    square_sum = float(sum(v * v for v in values))
    # Exact-zero guard: all-zero (or subnormal-underflow) allocations are
    # vacuously even; any non-zero square_sum keeps the ratio well-defined.
    if is_zero(total) or is_zero(square_sum):
        return 1.0
    return total * total / (len(values) * square_sum)


def transmission_share(tx_counts: Dict[int, int]) -> float:
    """Largest per-node share of total transmissions (0 if none happened)."""
    total = sum(tx_counts.values())
    if total == 0:
        return 0.0
    return max(tx_counts.values()) / total


def per_source_delay_spread(delays: Sequence[float]) -> float:
    """Max/mean ratio of per-source delays — flow-level fairness.

    1.0 means all sources finished together; large values mean some flows
    were served much later than the average.
    """
    if len(delays) == 0:
        raise ConfigurationError("need at least one delay")
    mean = sum(delays) / len(delays)
    if is_zero(mean):
        return 1.0
    return max(delays) / mean
