"""The paper's primary contribution.

* :mod:`repro.core.packing` — disk-packing bounds (Lemma 4) and the
  neighborhood bounds of Lemmas 5-6.
* :mod:`repro.core.pcr` — the Proper Carrier-sensing Range (Lemmas 2-3,
  Eq. 16).
* :mod:`repro.core.analysis` — spectrum-opportunity probability (Lemma 7)
  and the delay/capacity results (Theorem 1, Corollary 1, Lemma 8,
  Theorem 2).
* :mod:`repro.core.addc` — Algorithm 1 as a MAC policy for the simulator.
* :mod:`repro.core.collector` — one-call data-collection runs.
* :mod:`repro.core.fairness` — fairness accounting (Jain index and the
  Theorem-1 two-packet property).
"""

from repro.core.packing import (
    beta,
    lemma4_max_points,
    lemma5_backbone_bound,
    lemma6_neighborhood_bound,
    lemma6_delta_bound,
)
from repro.core.pcr import PcrParameters, PcrResult, compute_pcr, db_to_linear
from repro.core.analysis import (
    opportunity_probability,
    expected_waiting_slots,
    theorem1_service_bound_slots,
    lemma8_service_bound_slots,
    theorem2_delay_bound_slots,
    theorem2_capacity_lower_bound,
    TheoreticalBounds,
)
from repro.core.addc import AddcPolicy
from repro.core.aggregation import AggregationPolicy, run_aggregation
from repro.core.collector import CollectionOutcome, run_addc_collection
from repro.core.fairness import jain_index, transmission_share
from repro.core.numeric import close, is_zero

__all__ = [
    "beta",
    "lemma4_max_points",
    "lemma5_backbone_bound",
    "lemma6_neighborhood_bound",
    "lemma6_delta_bound",
    "PcrParameters",
    "PcrResult",
    "compute_pcr",
    "db_to_linear",
    "opportunity_probability",
    "expected_waiting_slots",
    "theorem1_service_bound_slots",
    "lemma8_service_bound_slots",
    "theorem2_delay_bound_slots",
    "theorem2_capacity_lower_bound",
    "TheoreticalBounds",
    "AddcPolicy",
    "AggregationPolicy",
    "run_aggregation",
    "CollectionOutcome",
    "run_addc_collection",
    "jain_index",
    "transmission_share",
    "close",
    "is_zero",
]
