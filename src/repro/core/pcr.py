"""The Proper Carrier-sensing Range (Section IV-B).

An SU that senses the spectrum idle over the PCR ``kappa * r`` can transmit
without disturbing any PU and without colliding with any other sensing SU:
Definition 4.3 asks that every :math:`\\mathcal R`-set (pairwise distance at
least :math:`\\mathcal R`) be a concurrent set, and Lemmas 2-3 give the
sufficient radii

.. math::

   \\mathcal R \\ge (1 + \\sqrt[\\alpha]{c_2 \\eta_p / c_1}) R
   \\quad\\text{and}\\quad
   \\mathcal R \\ge (1 + \\sqrt[\\alpha]{c_2 \\eta_s / c_3}) r

with :math:`c_1 = P_p / \\max\\{P_p, P_s\\}`,
:math:`c_3 = P_s / \\max\\{P_p, P_s\\}` and the hexagon-packing constant

.. math::  c_2 = 6 + 6 (\\sqrt 3 / 2)^{-\\alpha} \\cdot Z(\\alpha),

where :math:`Z(\\alpha)` bounds :math:`\\sum_{l \\ge 2} l^{1-\\alpha}`.

Zeta-bound variants
-------------------
The paper takes ``Z(alpha) = 1/(alpha-2) - 1`` via the step
``zeta(x) <= 1/(x-1)``.  That inequality is actually reversed
(``zeta(x) > 1/(x-1)`` for all ``x > 1``), and the resulting ``c2`` turns
non-positive for ``alpha`` above roughly 4.25, outside the Riemann-sum
domain.  We therefore expose three variants:

``"paper"``
    The paper's constant, bit-for-bit; raises
    :class:`~repro.errors.PcrDomainError` where it breaks down.  All of the
    paper's figures stay inside its valid range, so every reproduction uses
    this.
``"safe"``
    ``Z(alpha) = 1/(alpha-2)`` from the valid bound
    ``zeta(x) <= 1 + 1/(x-1)``.  Always positive; a conservative PCR.
``"exact"``
    ``Z(alpha) = zeta(alpha-1) - 1`` evaluated with SciPy: the exact value
    of the interference series, hence the smallest certified PCR of the
    three (Ablation B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import zeta as _riemann_zeta

from repro.errors import ConfigurationError, PcrDomainError

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "zeta_series_bound",
    "c2_constant",
    "PcrParameters",
    "PcrResult",
    "compute_pcr",
]

_VALID_BOUNDS = ("paper", "safe", "exact")


def db_to_linear(value_db: float) -> float:
    """Convert a dB quantity (e.g. an SIR threshold) to linear scale.

    >>> db_to_linear(10.0)
    10.0
    >>> round(db_to_linear(3.0), 3)
    1.995
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a positive linear quantity to dB."""
    if value <= 0:
        raise ConfigurationError(f"dB conversion needs a positive value, got {value}")
    return 10.0 * math.log10(value)


def zeta_series_bound(alpha: float, variant: str = "paper") -> float:
    """Bound ``Z(alpha)`` on the layer series ``sum_{l >= 2} l^{1 - alpha}``.

    See the module docstring for the three variants.
    """
    if alpha <= 2.0:
        raise ConfigurationError(f"alpha must be > 2, got {alpha}")
    if variant == "paper":
        return 1.0 / (alpha - 2.0) - 1.0
    if variant == "safe":
        return 1.0 / (alpha - 2.0)
    if variant == "exact":
        return float(_riemann_zeta(alpha - 1.0)) - 1.0
    raise ConfigurationError(
        f"unknown zeta bound variant {variant!r}; choose from {_VALID_BOUNDS}"
    )


def c2_constant(alpha: float, variant: str = "paper") -> float:
    """The hexagon-packing constant ``c2`` of Lemma 2.

    Raises
    ------
    PcrDomainError
        If the requested variant yields ``c2 <= 0`` (only possible for
        ``"paper"`` with ``alpha`` above ~4.25).
    """
    c2 = 6.0 + 6.0 * (math.sqrt(3.0) / 2.0) ** (-alpha) * zeta_series_bound(
        alpha, variant
    )
    if c2 <= 0:
        raise PcrDomainError(
            f"c2 = {c2:.4f} <= 0 for alpha = {alpha} with the {variant!r} zeta "
            "bound; the paper's derivation is outside its valid domain here — "
            "use zeta_bound='safe' or 'exact'"
        )
    return c2


@dataclass(frozen=True)
class PcrParameters:
    """Inputs to the PCR computation (Fig. 4 defaults).

    SIR thresholds are given in **dB**, matching how the paper reports them
    (``eta_p = 10 dB`` etc.).
    """

    alpha: float = 4.0
    pu_power: float = 10.0
    su_power: float = 10.0
    pu_radius: float = 12.0
    su_radius: float = 10.0
    eta_p_db: float = 10.0
    eta_s_db: float = 10.0
    zeta_bound: str = "paper"

    def __post_init__(self) -> None:
        if self.alpha <= 2.0:
            raise ConfigurationError(f"alpha must be > 2, got {self.alpha}")
        for name in ("pu_power", "su_power", "pu_radius", "su_radius"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.zeta_bound not in _VALID_BOUNDS:
            raise ConfigurationError(
                f"zeta_bound must be one of {_VALID_BOUNDS}, got {self.zeta_bound!r}"
            )

    @property
    def eta_p(self) -> float:
        """Primary SIR threshold, linear scale."""
        return db_to_linear(self.eta_p_db)

    @property
    def eta_s(self) -> float:
        """Secondary SIR threshold, linear scale."""
        return db_to_linear(self.eta_s_db)


@dataclass(frozen=True)
class PcrResult:
    """Output of :func:`compute_pcr`: every intermediate of Eq. 16."""

    c1: float
    c2: float
    c3: float
    primary_term: float
    secondary_term: float
    kappa: float
    pcr: float

    @property
    def binding_constraint(self) -> str:
        """Which of the two lemmas determined kappa."""
        return "primary" if self.primary_term >= self.secondary_term else "secondary"


def compute_pcr(params: PcrParameters) -> PcrResult:
    """Evaluate Eq. 16: ``kappa`` and the PCR ``kappa * r``.

    ``kappa = max( (1 + (c2 eta_p / c1)^{1/alpha}) R / r,
    1 + (c2 eta_s / c3)^{1/alpha} )``, and the PCR is ``kappa * r``.

    >>> result = compute_pcr(PcrParameters())
    >>> result.pcr >= PcrParameters().su_radius
    True
    """
    max_power = max(params.pu_power, params.su_power)
    c1 = params.pu_power / max_power
    c3 = params.su_power / max_power
    c2 = c2_constant(params.alpha, params.zeta_bound)

    primary_term = (
        1.0 + (c2 * params.eta_p / c1) ** (1.0 / params.alpha)
    ) * params.pu_radius / params.su_radius
    secondary_term = 1.0 + (c2 * params.eta_s / c3) ** (1.0 / params.alpha)
    kappa = max(primary_term, secondary_term)
    return PcrResult(
        c1=c1,
        c2=c2,
        c3=c3,
        primary_term=primary_term,
        secondary_term=secondary_term,
        kappa=kappa,
        pcr=kappa * params.su_radius,
    )
