"""Disk-packing bounds (Lemma 4) and the neighborhood bounds of Lemmas 5-6.

Lemma 4 (from Wan et al. [25]): a disk of radius ``r_d`` contains at most

.. math::  \\beta_{r_d} = \\frac{2 \\pi r_d^2}{\\sqrt 3} + \\pi r_d + 1

points of any point set with mutual distance at least 1.  Rescaling by the
minimum separation gives the counting bounds the delay analysis is built
on:

* Lemma 5 — at most ``beta(kappa) + 12 * beta(kappa + 1)`` dominators and
  connectors lie within an SU's PCR (dominators are an MIS, so mutually
  ``> r`` apart; each dominator owns at most 12 connectors by Lemma 1).
* Lemma 6 — at most ``Delta * beta(kappa) + 12 * beta(kappa + 1)`` SUs lie
  within an SU's PCR, where ``Delta`` is the maximum collection-tree degree,
  bounded by ``log n + pi r^2 (e^2 - 1) / (2 c0)`` with high probability.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "beta",
    "lemma4_max_points",
    "lemma5_backbone_bound",
    "lemma6_neighborhood_bound",
    "lemma6_delta_bound",
]


def beta(x: float) -> float:
    """The packing function ``beta_x = 2*pi*x^2/sqrt(3) + pi*x + 1`` (Lemma 5).

    >>> round(beta(0.0), 6)
    1.0
    """
    if x < 0:
        raise ConfigurationError(f"beta is defined for x >= 0, got {x}")
    return 2.0 * math.pi * x * x / math.sqrt(3.0) + math.pi * x + 1.0


def lemma4_max_points(disk_radius: float, min_separation: float = 1.0) -> float:
    """Lemma 4 rescaled: max points with mutual distance >= ``min_separation``
    inside a disk of radius ``disk_radius``.

    The unit-separation statement is recovered with ``min_separation == 1``.
    """
    if disk_radius < 0:
        raise ConfigurationError(f"disk_radius must be >= 0, got {disk_radius}")
    if min_separation <= 0:
        raise ConfigurationError(
            f"min_separation must be positive, got {min_separation}"
        )
    return beta(disk_radius / min_separation)


def lemma5_backbone_bound(kappa: float) -> float:
    """Lemma 5: dominators + connectors within an SU's PCR.

    ``beta(kappa) + 12 * beta(kappa + 1)`` — dominators (an MIS at pairwise
    distance > r) within ``kappa * r`` contribute ``beta(kappa)``; every
    dominator within ``(kappa + 1) r`` contributes at most 12 connectors
    (Lemma 1).
    """
    if kappa < 1:
        raise ConfigurationError(f"kappa must be >= 1 (PCR >= r), got {kappa}")
    return beta(kappa) + 12.0 * beta(kappa + 1.0)


def lemma6_neighborhood_bound(kappa: float, delta: float) -> float:
    """Lemma 6: SUs within an SU's PCR, ``Delta*beta(kappa) + 12*beta(kappa+1)``."""
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    if kappa < 1:
        raise ConfigurationError(f"kappa must be >= 1 (PCR >= r), got {kappa}")
    return delta * beta(kappa) + 12.0 * beta(kappa + 1.0)


def lemma6_delta_bound(num_sus: int, su_radius: float, c0: float) -> float:
    """Lemma 6's high-probability bound on the maximum tree degree Delta.

    ``Delta <= log n + pi r^2 (e^2 - 1) / (2 c0)`` where ``c0 = A / n``.
    """
    if num_sus < 1:
        raise ConfigurationError(f"num_sus must be >= 1, got {num_sus}")
    if su_radius <= 0:
        raise ConfigurationError(f"su_radius must be positive, got {su_radius}")
    if c0 <= 0:
        raise ConfigurationError(f"c0 must be positive, got {c0}")
    return math.log(num_sus) + math.pi * su_radius**2 * (math.e**2 - 1.0) / (
        2.0 * c0
    )
