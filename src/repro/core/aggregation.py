"""In-network aggregation convergecast over the collection tree.

The paper's task moves every raw packet to the base station (snapshot
*collection*, no aggregation).  The construction it borrows the tree from —
Wan et al.'s minimum-latency aggregation scheduling [25] — solves the
*aggregation* variant: a relay combines everything it heard with its own
reading and transmits **once**.  Aggregation turns the base station's
1-packet-per-slot bottleneck (which forces Omega(n) collection delay) into
a latency governed by tree depth and degree, so the two tasks bracket what
a CRN data-gathering system can do over the same MAC.

:class:`AggregationPolicy` runs Algorithm 1's MAC unchanged; only the
traffic pattern differs:

* leaves contend as soon as the task starts;
* an interior node absorbs its children's aggregates and releases its own
  single aggregate once the last child has reported;
* the task completes when every base-station child has delivered its
  aggregate (the root then knows the whole snapshot's aggregate).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError, SimulationError
from repro.graphs.tree import CollectionTree
from repro.sim.packet import Packet

__all__ = ["AggregationPolicy", "run_aggregation"]


class AggregationPolicy:
    """Aggregate-and-forward over the collection tree (ADDC's MAC)."""

    fairness_wait = True

    def __init__(self, tree: CollectionTree, fairness_wait: bool = True) -> None:
        self.tree = tree
        self.fairness_wait = bool(fairness_wait)
        children = tree.children()
        #: Children still unreported, per interior node.
        self._awaiting: Dict[int, int] = {
            node: len(kids)
            for node, kids in enumerate(children)
            if kids and node != tree.root
        }
        self._released: set = set()
        self._base = tree.root
        self._num_nodes = tree.num_nodes

    def next_hop(self, node: int, packet: Packet) -> int:
        """Aggregates always climb to the tree parent."""
        parent = self.tree.parent[node]
        if parent == node:
            raise ConfigurationError(
                "the base station never transmits during aggregation"
            )
        return parent

    def build_workload(self) -> List[Packet]:
        """Initial packets: one aggregate per *leaf* (interiors wait).

        Packet ids are the originating node ids, which makes the delivered
        set easy to audit.
        """
        packets = []
        children = self.tree.children()
        for node in range(self._num_nodes):
            if node == self._base:
                continue
            if not children[node]:
                packets.append(Packet(packet_id=node, source=node))
                self._released.add(node)
        if not packets:
            raise SimulationError("tree has no leaves; nothing to aggregate")
        return packets

    def expected_deliveries(self) -> int:
        """The run ends when every base-station child has reported."""
        return self.tree.root_degree()

    def on_data_arrival(self, packet: Packet, node: int) -> List[Packet]:
        """Absorb a child's aggregate; release ours when all have reported."""
        if node not in self._awaiting:
            raise SimulationError(
                f"leaf {node} received an aggregate from {packet.source}"
            )
        self._awaiting[node] -= 1
        if self._awaiting[node] < 0:
            raise SimulationError(f"node {node} over-reported children")
        if self._awaiting[node] == 0 and node not in self._released:
            self._released.add(node)
            return [Packet(packet_id=node, source=node)]
        return []

    def describe(self) -> str:
        """Policy name for reports."""
        return "Aggregation (ADDC MAC)"


def run_aggregation(
    topology,
    streams,
    eta_p_db: float = 8.0,
    eta_s_db: float = 8.0,
    alpha: float = 4.0,
    zeta_bound: str = "paper",
    blocking: str = "geometric",
    use_cds_tree: bool = True,
    max_slots: int = 2_000_000,
    contention_window_ms: float = 0.5,
    slot_duration_ms: float = 1.0,
):
    """Aggregate one snapshot to the base station; returns the result.

    Same PCR, same carrier sensing, same backoff MAC as
    :func:`repro.core.collector.run_addc_collection` — only the traffic
    pattern changes, so (collection delay / aggregation latency) isolates
    the cost of collecting *raw* data.
    """
    from repro.core.analysis import opportunity_probability
    from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
    from repro.graphs.tree import build_bfs_tree, build_collection_tree
    from repro.sim.engine import SlottedEngine
    from repro.spectrum.sensing import CarrierSenseMap

    pcr = compute_pcr(
        PcrParameters(
            alpha=alpha,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=eta_p_db,
            eta_s_db=eta_s_db,
            zeta_bound=zeta_bound,
        )
    )
    builder = build_collection_tree if use_cds_tree else build_bfs_tree
    tree = builder(topology.secondary.graph, topology.secondary.base_station)
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    policy = AggregationPolicy(tree)
    homogeneous_p_o = None
    if blocking == "homogeneous":
        homogeneous_p_o = opportunity_probability(
            topology.primary.activity.stationary_probability,
            pcr.kappa,
            topology.secondary.radius,
            topology.primary.num_pus,
            topology.region.area,
        )
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=policy,
        streams=streams,
        alpha=alpha,
        eta_s=db_to_linear(eta_s_db),
        blocking=blocking,
        homogeneous_p_o=homogeneous_p_o,
        slot_duration_ms=slot_duration_ms,
        contention_window_ms=contention_window_ms,
        max_slots=max_slots,
    )
    engine.load_packets(
        policy.build_workload(),
        expected_deliveries=policy.expected_deliveries(),
    )
    return engine.run()
