"""The paper's delay/capacity analysis (Section IV-D).

All service-time bounds are expressed in **slots**; multiply by the slot
duration ``tau`` for wall-clock time.  The results:

* Lemma 7 — an SU has a spectrum opportunity in a slot with probability
  ``p_o = (1 - p_t)^{pi (kappa r)^2 N / (c0 n)}`` (the exponent is the
  expected PU count inside a PCR disk; ``c0 n = A``), so the expected wait
  is ``tau / p_o``.
* Theorem 1 — any SU with data transmits at least one packet to its parent
  within ``(2 Delta beta_kappa + 24 beta_{kappa+1} - 1) tau / p_o``.
* Corollary 1 — the same expression bounds draining all dominatee packets
  into the backbone ``D ∪ C``.
* Lemma 8 — once traffic is on the backbone, a backbone SU serves a packet
  within ``(2 beta_kappa + 24 beta_{kappa+1} - 1) tau / p_o``.
* Theorem 2 — total delay is at most
  ``(2 Delta beta_kappa + 24 beta_{kappa+1} - 1) tau / p_o
  + (n - Delta_b)(2 beta_kappa + 24 beta_{kappa+1} - 1) tau / p_o``,
  hence capacity is ``Omega(p_o W / (2 beta_kappa + 24 beta_{kappa+1} - 1))``
  — order-optimal whenever ``p_o`` is a positive constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.packing import beta
from repro.errors import ConfigurationError

__all__ = [
    "opportunity_probability",
    "expected_waiting_slots",
    "theorem1_service_bound_slots",
    "lemma8_service_bound_slots",
    "theorem2_delay_bound_slots",
    "theorem2_capacity_lower_bound",
    "TheoreticalBounds",
]


def opportunity_probability(
    p_t: float, kappa: float, su_radius: float, num_pus: int, area: float
) -> float:
    """Lemma 7's ``p_o = (1 - p_t)^{pi (kappa r)^2 N / A}``.

    ``A = c0 n`` in the paper's notation; passing the region area directly
    avoids carrying ``c0`` and ``n`` separately.
    """
    if not 0.0 <= p_t < 1.0:
        raise ConfigurationError(f"p_t must be in [0, 1), got {p_t}")
    if area <= 0:
        raise ConfigurationError(f"area must be positive, got {area}")
    if num_pus < 0:
        raise ConfigurationError(f"num_pus must be >= 0, got {num_pus}")
    if kappa < 1 or su_radius <= 0:
        raise ConfigurationError("need kappa >= 1 and su_radius > 0")
    expected_pus_in_pcr = math.pi * (kappa * su_radius) ** 2 * num_pus / area
    return (1.0 - p_t) ** expected_pus_in_pcr


def expected_waiting_slots(p_o: float) -> float:
    """Lemma 7: expected slots until a spectrum opportunity, ``1 / p_o``."""
    if not 0.0 < p_o <= 1.0:
        raise ConfigurationError(f"p_o must be in (0, 1], got {p_o}")
    return 1.0 / p_o


def theorem1_service_bound_slots(kappa: float, delta: float, p_o: float) -> float:
    """Theorem 1: slots for any backlogged SU to serve one packet.

    ``(2 Delta beta_kappa + 24 beta_{kappa+1} - 1) / p_o``.
    """
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    raw = 2.0 * delta * beta(kappa) + 24.0 * beta(kappa + 1.0) - 1.0
    return raw * expected_waiting_slots(p_o)


def lemma8_service_bound_slots(kappa: float, p_o: float) -> float:
    """Lemma 8: backbone per-packet service bound,
    ``(2 beta_kappa + 24 beta_{kappa+1} - 1) / p_o``."""
    raw = 2.0 * beta(kappa) + 24.0 * beta(kappa + 1.0) - 1.0
    return raw * expected_waiting_slots(p_o)


def theorem2_delay_bound_slots(
    num_sus: int, kappa: float, delta: float, root_degree: int, p_o: float
) -> float:
    """Theorem 2's explicit delay bound (in slots).

    ``theorem1 + (n - Delta_b) * lemma8`` where ``Delta_b`` is the base
    station's tree degree.
    """
    if num_sus < 1:
        raise ConfigurationError(f"num_sus must be >= 1, got {num_sus}")
    if root_degree < 1:
        raise ConfigurationError(f"root_degree must be >= 1, got {root_degree}")
    backbone_packets = max(num_sus - root_degree, 0)
    return theorem1_service_bound_slots(
        kappa, delta, p_o
    ) + backbone_packets * lemma8_service_bound_slots(kappa, p_o)


def theorem2_capacity_lower_bound(
    kappa: float, p_o: float, bandwidth: float = 1.0
) -> float:
    """Theorem 2's capacity lower bound.

    ``p_o W / (2 beta_kappa + 24 beta_{kappa+1} - 1)``; with the default
    ``bandwidth = 1`` the result is the guaranteed fraction of the upper
    bound ``W`` — the constant behind the order-optimality claim.
    """
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    raw = 2.0 * beta(kappa) + 24.0 * beta(kappa + 1.0) - 1.0
    if not 0.0 < p_o <= 1.0:
        raise ConfigurationError(f"p_o must be in (0, 1], got {p_o}")
    return p_o * bandwidth / raw


@dataclass(frozen=True)
class TheoreticalBounds:
    """Bundle of every analytic quantity for one scenario.

    Produced by :meth:`for_scenario`; consumed by EXPERIMENTS.md generation
    and by the integration tests that check the simulator never exceeds the
    delay bound.
    """

    kappa: float
    p_o: float
    delta: float
    root_degree: int
    expected_wait_slots: float
    theorem1_slots: float
    lemma8_slots: float
    theorem2_delay_slots: float
    capacity_fraction: float

    @classmethod
    def for_scenario(
        cls,
        num_sus: int,
        num_pus: int,
        area: float,
        p_t: float,
        kappa: float,
        su_radius: float,
        delta: float,
        root_degree: int,
    ) -> "TheoreticalBounds":
        """Evaluate every bound for a concrete scenario."""
        p_o = opportunity_probability(p_t, kappa, su_radius, num_pus, area)
        return cls(
            kappa=kappa,
            p_o=p_o,
            delta=delta,
            root_degree=root_degree,
            expected_wait_slots=expected_waiting_slots(p_o),
            theorem1_slots=theorem1_service_bound_slots(kappa, delta, p_o),
            lemma8_slots=lemma8_service_bound_slots(kappa, p_o),
            theorem2_delay_slots=theorem2_delay_bound_slots(
                num_sus, kappa, delta, root_degree, p_o
            ),
            capacity_fraction=theorem2_capacity_lower_bound(kappa, p_o),
        )
