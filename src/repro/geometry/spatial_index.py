"""Uniform-grid spatial index for fixed point sets, CSR-style storage.

The simulator repeatedly asks "which SUs lie within the PCR of this
transmitter".  Positions never move after deployment, so the index sorts
the points once by packed cell key and answers every query with two
binary searches per covered cell column — O(points-in-range) with numpy
constants and no per-point Python loop.

Storage layout (built once in ``__init__``):

* each point's cell ``(cx, cy)`` is packed into one ``uint64`` key that
  is monotone in ``(cx, cy)`` lexicographic order;
* a stable argsort of the keys gives ``_order`` (point indices grouped by
  cell, ascending index within a cell) and ``_sorted_keys`` alongside it.

Because the key order is ``(cx, cy)``-lexicographic, all cells of one
``cx`` column with ``cy`` in ``[lo, hi]`` form a *contiguous* key range:
a query over a ``(2r+1)^2`` cell window needs only ``2r+1`` searchsorted
pairs, and results come out in exactly the historical scan order (cells
by ascending ``(cx, cy)``, insertion order within a cell) — pinned by the
golden-regression tests.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

import repro.obs as obs
from repro.errors import GeometryError

__all__ = ["GridIndex"]

#: Cell coordinates must fit the packed key: |cell| < 2**31.
_COORD_LIMIT = 2 ** 31

_EMPTY = np.zeros(0, dtype=np.int64)


class GridIndex:
    """Spatial hash over a static ``(n, 2)`` position array.

    Parameters
    ----------
    positions:
        Array of shape ``(n, 2)``; kept by reference and assumed immutable.
        Must be finite (NaN/inf positions would bucket silently wrong).
    cell_size:
        Edge length of the square grid cells.  Choose it close to the most
        common query radius; correctness does not depend on the choice.

    Examples
    --------
    >>> import numpy as np
    >>> index = GridIndex(np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]]), 2.0)
    >>> sorted(index.query_radius((0.0, 0.0), 1.5))
    [0, 1]
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise GeometryError(
                f"positions must have shape (n, 2), got {positions.shape}"
            )
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self._positions = positions
        self._cell_size = float(cell_size)
        if positions.shape[0] == 0:
            self._order = _EMPTY
            self._sorted_keys = np.zeros(0, dtype=np.uint64)
            self._min_cx = self._max_cx = 0
            self._min_cy = self._max_cy = -1  # empty y-range: no candidates
            return
        if not np.isfinite(positions).all():
            raise GeometryError("positions must be finite")
        cells = np.floor(positions / self._cell_size)
        if np.abs(cells).max() >= _COORD_LIMIT:
            raise GeometryError(
                f"cell coordinates exceed the packed-key range (|cell| < "
                f"{_COORD_LIMIT}); use a larger cell_size"
            )
        cells = cells.astype(np.int64)
        keys = self._pack(cells[:, 0], cells[:, 1])
        # Stable sort: within one cell, points keep ascending index order
        # (the historical per-bucket insertion order).
        self._order = np.argsort(keys, kind="stable").astype(np.int64)
        self._sorted_keys = keys[self._order]
        self._min_cx = int(cells[:, 0].min())
        self._max_cx = int(cells[:, 0].max())
        self._min_cy = int(cells[:, 1].min())
        self._max_cy = int(cells[:, 1].max())

    @staticmethod
    def _pack(cx, cy) -> np.ndarray:
        """Pack cell coordinates into ``(cx, cy)``-lexicographic uint64 keys."""
        cx = np.asarray(cx, dtype=np.int64) + _COORD_LIMIT
        cy = np.asarray(cy, dtype=np.int64) + _COORD_LIMIT
        return (cx.astype(np.uint64) << np.uint64(32)) | cy.astype(np.uint64)

    @property
    def positions(self) -> np.ndarray:
        """The indexed position array (do not mutate)."""
        return self._positions

    @property
    def cell_size(self) -> float:
        """The configured grid cell edge length."""
        return self._cell_size

    def __len__(self) -> int:
        return self._positions.shape[0]

    def _cell_of(self, point):
        px, py = float(point[0]), float(point[1])
        if not (math.isfinite(px) and math.isfinite(py)):
            raise GeometryError(f"query point must be finite, got ({px}, {py})")
        return (
            int(math.floor(px / self._cell_size)),
            int(math.floor(py / self._cell_size)),
        )

    def _check_radius(self, radius: float) -> None:
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        if not math.isfinite(radius):
            raise GeometryError(f"radius must be finite, got {radius}")

    def _query_one(
        self, point, radius: float, exclude: Optional[int]
    ) -> np.ndarray:
        """One radius query; candidates filtered (and excluded) inline."""
        px, py = float(point[0]), float(point[1])
        ccx, ccy = self._cell_of((px, py))
        reach = int(math.ceil(radius / self._cell_size))
        x_lo = max(ccx - reach, self._min_cx)
        x_hi = min(ccx + reach, self._max_cx)
        y_lo = max(ccy - reach, self._min_cy)
        y_hi = min(ccy + reach, self._max_cy)
        if self._order.size == 0 or x_lo > x_hi or y_lo > y_hi:
            return _EMPTY
        keys = self._sorted_keys
        pieces: List[np.ndarray] = []
        for cx in range(x_lo, x_hi + 1):
            base = (cx + _COORD_LIMIT) << 32
            lo = int(np.searchsorted(keys, base + (y_lo + _COORD_LIMIT)))
            hi = int(
                np.searchsorted(keys, base + (y_hi + _COORD_LIMIT), side="right")
            )
            if hi > lo:
                pieces.append(self._order[lo:hi])
        if not pieces:
            return _EMPTY
        cand = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        dx = self._positions[cand, 0] - px
        dy = self._positions[cand, 1] - py
        keep = dx * dx + dy * dy <= radius * radius
        if exclude is not None:
            keep &= cand != exclude
        return cand[keep]

    def query_radius(self, point, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``point`` (inclusive).

        Complexity is proportional to the number of candidate points in the
        covered cells, not to the total point count.  Raises
        :class:`~repro.errors.GeometryError` on a non-finite query point or
        radius (NaN would otherwise bucket silently wrong).
        """
        self._check_radius(radius)
        obs.counter_add("spatial.queries")
        return self._query_one(point, radius, None).tolist()

    def query_radius_excluding(self, point, radius: float, exclude: int) -> List[int]:
        """Like :meth:`query_radius` but omitting one index (typically self).

        The exclusion is applied inline during the candidate scan — no
        second pass over the result.
        """
        self._check_radius(radius)
        obs.counter_add("spatial.queries")
        return self._query_one(point, radius, int(exclude)).tolist()

    def query_radius_many(
        self, points, radius: float, exclude=None
    ) -> List[List[int]]:
        """Batched :meth:`query_radius` over an ``(m, 2)`` query array.

        One vectorized pass answers all ``m`` queries: per-query candidate
        slices are located with two ``searchsorted`` calls per covered cell
        column, flattened, distance-filtered elementwise, and split back
        into per-query lists.  Each list is exactly what ``query_radius``
        returns for that row (same indices, same order).

        ``exclude`` (optional) is one index per query row to omit from that
        row's result — :meth:`neighbor_lists` passes ``arange(n)`` to drop
        each point from its own neighbourhood.
        """
        self._check_radius(radius)
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(
                f"query points must have shape (m, 2), got {pts.shape}"
            )
        m = pts.shape[0]
        if m == 0:
            return []
        obs.counter_add("spatial.queries", m)
        if not np.isfinite(pts).all():
            raise GeometryError("query points must be finite")
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.int64)
            if exclude.shape != (m,):
                raise GeometryError(
                    f"exclude must have shape ({m},), got {exclude.shape}"
                )
        if self._order.size == 0:
            return [[] for _ in range(m)]

        cell = self._cell_size
        reach = int(math.ceil(radius / cell))
        # Clip the float cell coordinates into a window just past the
        # indexed extent before the int64 cast: distant (but finite)
        # queries stay representable and resolve to empty ranges below.
        fx = np.clip(
            np.floor(pts[:, 0] / cell),
            self._min_cx - reach - 1.0,
            self._max_cx + reach + 1.0,
        )
        fy = np.clip(
            np.floor(pts[:, 1] / cell),
            self._min_cy - reach - 1.0,
            self._max_cy + reach + 1.0,
        )
        ccx = fx.astype(np.int64)
        ccy = fy.astype(np.int64)
        x_lo = np.maximum(ccx - reach, self._min_cx)
        x_hi = np.minimum(ccx + reach, self._max_cx)
        y_lo = np.maximum(ccy - reach, self._min_cy)
        y_hi = np.minimum(ccy + reach, self._max_cy)
        row_valid = (x_lo <= x_hi) & (y_lo <= y_hi)

        # (m, 2*reach+1) grid of candidate cell columns, row-major so the
        # flattened order is query-major with cx ascending — the same scan
        # order the scalar query uses.
        noff = 2 * reach + 1
        cx = ccx[:, None] + np.arange(-reach, reach + 1)[None, :]
        valid = row_valid[:, None] & (cx >= x_lo[:, None]) & (cx <= x_hi[:, None])
        safe_cx = np.where(valid, cx, 0)
        base = (safe_cx + _COORD_LIMIT).astype(np.uint64) << np.uint64(32)
        ylo_k = np.where(valid, (y_lo + _COORD_LIMIT)[:, None], 0).astype(np.uint64)
        yhi_k = np.where(valid, (y_hi + _COORD_LIMIT)[:, None], 0).astype(np.uint64)
        keys = self._sorted_keys
        los = np.searchsorted(keys, (base | ylo_k).ravel(), side="left")
        his = np.searchsorted(keys, (base | yhi_k).ravel(), side="right")
        his = np.where(valid.ravel(), his, los)

        lens = his - los
        total = int(lens.sum())
        if total == 0:
            return [[] for _ in range(m)]
        # Expand every [lo, hi) slice of the CSR order array in one shot.
        starts = np.repeat(los, lens)
        offsets = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        cand = self._order[starts + offsets]
        rows = np.repeat(np.arange(m).repeat(noff), lens)

        dx = self._positions[cand, 0] - pts[rows, 0]
        dy = self._positions[cand, 1] - pts[rows, 1]
        keep = dx * dx + dy * dy <= radius * radius
        if exclude is not None:
            keep &= cand != exclude[rows]
        found = cand[keep]
        found_rows = rows[keep]
        counts = np.bincount(found_rows, minlength=m)
        return [
            segment.tolist()
            for segment in np.split(found, np.cumsum(counts[:-1]))
        ]

    def neighbor_lists(self, radius: float) -> List[List[int]]:
        """For every indexed point, the indices within ``radius`` of it.

        The point itself is excluded from its own list.  This is how the
        simulator precomputes PU-to-SU incidence and SU adjacency.
        """
        with obs.span("spatial.neighbor_lists"):
            return self.query_radius_many(
                self._positions, radius, exclude=np.arange(len(self))
            )

    def cross_neighbor_lists(
        self, other_positions: np.ndarray, radius: float
    ) -> List[List[int]]:
        """For every row of ``other_positions``, indexed points within ``radius``.

        Used to map each PU to the set of SUs inside its interference reach
        (and vice versa) without an ``(n, N)`` distance matrix.
        """
        other_positions = np.asarray(other_positions, dtype=float)
        with obs.span("spatial.cross_neighbor_lists"):
            return self.query_radius_many(other_positions, radius)
