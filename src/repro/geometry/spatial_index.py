"""Uniform-grid spatial index for fixed point sets.

The simulator repeatedly asks "which SUs lie within the PCR of this
transmitter".  Positions never move after deployment, so a simple uniform
grid bucketing with cell size equal to the dominant query radius gives
O(points-in-range) queries with tiny constants and no dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

import repro.obs as obs
from repro.errors import GeometryError

__all__ = ["GridIndex"]


class GridIndex:
    """Spatial hash over a static ``(n, 2)`` position array.

    Parameters
    ----------
    positions:
        Array of shape ``(n, 2)``; kept by reference and assumed immutable.
    cell_size:
        Edge length of the square grid cells.  Choose it close to the most
        common query radius; correctness does not depend on the choice.

    Examples
    --------
    >>> import numpy as np
    >>> index = GridIndex(np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]]), 2.0)
    >>> sorted(index.query_radius((0.0, 0.0), 1.5))
    [0, 1]
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise GeometryError(
                f"positions must have shape (n, 2), got {positions.shape}"
            )
        if cell_size <= 0:
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self._positions = positions
        self._cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for idx in range(positions.shape[0]):
            self._cells.setdefault(self._cell_of(positions[idx]), []).append(idx)

    @property
    def positions(self) -> np.ndarray:
        """The indexed position array (do not mutate)."""
        return self._positions

    @property
    def cell_size(self) -> float:
        """The configured grid cell edge length."""
        return self._cell_size

    def __len__(self) -> int:
        return self._positions.shape[0]

    def _cell_of(self, point: np.ndarray) -> Tuple[int, int]:
        return (
            int(math.floor(float(point[0]) / self._cell_size)),
            int(math.floor(float(point[1]) / self._cell_size)),
        )

    def query_radius(self, point, radius: float) -> List[int]:
        """Indices of all points within ``radius`` of ``point`` (inclusive).

        Complexity is proportional to the number of candidate points in the
        covered cells, not to the total point count.
        """
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        obs.counter_add("spatial.queries")
        px, py = float(point[0]), float(point[1])
        reach = int(math.ceil(radius / self._cell_size))
        center_cx = int(math.floor(px / self._cell_size))
        center_cy = int(math.floor(py / self._cell_size))
        radius_sq = radius * radius
        positions = self._positions
        found: List[int] = []
        for cx in range(center_cx - reach, center_cx + reach + 1):
            for cy in range(center_cy - reach, center_cy + reach + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                for idx in bucket:
                    dx = positions[idx, 0] - px
                    dy = positions[idx, 1] - py
                    if dx * dx + dy * dy <= radius_sq:
                        found.append(idx)
        return found

    def query_radius_excluding(self, point, radius: float, exclude: int) -> List[int]:
        """Like :meth:`query_radius` but omitting one index (typically self)."""
        return [idx for idx in self.query_radius(point, radius) if idx != exclude]

    def neighbor_lists(self, radius: float) -> List[List[int]]:
        """For every indexed point, the indices within ``radius`` of it.

        The point itself is excluded from its own list.  This is how the
        simulator precomputes PU-to-SU incidence and SU adjacency.
        """
        with obs.span("spatial.neighbor_lists"):
            return [
                self.query_radius_excluding(self._positions[idx], radius, idx)
                for idx in range(len(self))
            ]

    def cross_neighbor_lists(
        self, other_positions: np.ndarray, radius: float
    ) -> List[List[int]]:
        """For every row of ``other_positions``, indexed points within ``radius``.

        Used to map each PU to the set of SUs inside its interference reach
        (and vice versa) without an ``(n, N)`` distance matrix.
        """
        other_positions = np.asarray(other_positions, dtype=float)
        with obs.span("spatial.cross_neighbor_lists"):
            return [
                self.query_radius(other_positions[idx], radius)
                for idx in range(other_positions.shape[0])
            ]
