"""Euclidean distance helpers over ``(n, 2)`` position arrays.

All functions accept plain sequences as well as numpy arrays and never
mutate their inputs.  ``D(.,.)`` in the paper is the plain Euclidean metric
(Section III), so no wrap-around/toroidal variants are provided.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "euclidean",
    "pairwise_distances",
    "distances_from",
    "within_radius_mask",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def euclidean(a: ArrayLike, b: ArrayLike) -> float:
    """Distance ``D(a, b)`` between two 2-D points.

    >>> euclidean((0.0, 0.0), (3.0, 4.0))
    5.0
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    return float(np.hypot(ax - bx, ay - by))


def distances_from(point: ArrayLike, positions: np.ndarray) -> np.ndarray:
    """Distances from one point to every row of ``positions``.

    Parameters
    ----------
    point:
        A 2-vector.
    positions:
        Array of shape ``(n, 2)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` array of distances.
    """
    positions = np.asarray(positions, dtype=float)
    point = np.asarray(point, dtype=float)
    delta = positions - point[None, :]
    return np.hypot(delta[:, 0], delta[:, 1])


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` distance matrix of a position array.

    Intended for tests and small analytic computations; the simulator itself
    uses :class:`repro.geometry.spatial_index.GridIndex` to avoid the
    quadratic cost.
    """
    positions = np.asarray(positions, dtype=float)
    delta = positions[:, None, :] - positions[None, :, :]
    return np.hypot(delta[..., 0], delta[..., 1])


def within_radius_mask(
    point: ArrayLike, positions: np.ndarray, radius: float
) -> np.ndarray:
    """Boolean mask of rows of ``positions`` within ``radius`` of ``point``.

    The comparison is inclusive (``<= radius``), matching the paper's
    closed-ball transmission and sensing ranges.
    """
    return distances_from(point, positions) <= radius
