"""Geometric substrate: points, distances, regions, and a spatial index.

The simulator stores node positions as an ``(n, 2)`` ``float64`` array and
answers "who is within radius R of node i" queries through
:class:`repro.geometry.spatial_index.GridIndex`, a uniform-grid spatial hash
with brute-force-verified semantics.
"""

from repro.geometry.distance import (
    euclidean,
    pairwise_distances,
    distances_from,
    within_radius_mask,
)
from repro.geometry.region import SquareRegion, DiskRegion
from repro.geometry.spatial_index import GridIndex

__all__ = [
    "euclidean",
    "pairwise_distances",
    "distances_from",
    "within_radius_mask",
    "SquareRegion",
    "DiskRegion",
    "GridIndex",
]
