"""Deployment regions.

The paper deploys both networks i.i.d. uniformly in a square of area
``A = c0 * n`` (Section III).  :class:`SquareRegion` is the region used by
every experiment; :class:`DiskRegion` is provided for sensitivity studies on
the deployment shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

__all__ = ["SquareRegion", "DiskRegion"]


@dataclass(frozen=True)
class SquareRegion:
    """An axis-aligned square ``[0, side] x [0, side]``.

    >>> region = SquareRegion(side=250.0)
    >>> region.area
    62500.0
    """

    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise GeometryError(f"square side must be positive, got {self.side}")

    @property
    def area(self) -> float:
        """Region area ``A``."""
        return self.side * self.side

    @classmethod
    def from_area(cls, area: float) -> "SquareRegion":
        """Build the square with the given area (``A = 250 x 250`` etc.)."""
        if area <= 0:
            raise GeometryError(f"area must be positive, got {area}")
        return cls(side=math.sqrt(area))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` i.i.d. uniform points; shape ``(count, 2)``."""
        if count < 0:
            raise GeometryError(f"count must be non-negative, got {count}")
        return rng.uniform(0.0, self.side, size=(count, 2))

    def contains(self, point: np.ndarray) -> bool:
        """Whether a 2-D point lies in the region (boundary inclusive)."""
        x, y = float(point[0]), float(point[1])
        return 0.0 <= x <= self.side and 0.0 <= y <= self.side

    @property
    def center(self) -> np.ndarray:
        """Region center; the conventional base-station placement."""
        return np.array([self.side / 2.0, self.side / 2.0])


@dataclass(frozen=True)
class DiskRegion:
    """A disk of given radius centered at ``center``."""

    radius: float
    center_x: float = 0.0
    center_y: float = 0.0

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise GeometryError(f"disk radius must be positive, got {self.radius}")

    @property
    def area(self) -> float:
        """Region area."""
        return math.pi * self.radius * self.radius

    @property
    def center(self) -> np.ndarray:
        """Disk center."""
        return np.array([self.center_x, self.center_y])

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` i.i.d. uniform points in the disk.

        Uses the inverse-CDF radius transform (``r = R * sqrt(u)``), which is
        exactly uniform over the disk area.
        """
        if count < 0:
            raise GeometryError(f"count must be non-negative, got {count}")
        radii = self.radius * np.sqrt(rng.random(count))
        angles = rng.uniform(0.0, 2.0 * math.pi, size=count)
        points = np.empty((count, 2))
        points[:, 0] = self.center_x + radii * np.cos(angles)
        points[:, 1] = self.center_y + radii * np.sin(angles)
        return points

    def contains(self, point: np.ndarray) -> bool:
        """Whether a 2-D point lies in the disk (boundary inclusive)."""
        dx = float(point[0]) - self.center_x
        dy = float(point[1]) - self.center_y
        return math.hypot(dx, dy) <= self.radius
