"""Legacy setup shim.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (offline editable installs fall back to
``setup.py develop``, which needs this file).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
