"""Tests for the primary network and its activity models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.primary import BernoulliActivity, MarkovActivity, PrimaryNetwork


class TestBernoulliActivity:
    def test_stationary_probability(self):
        assert BernoulliActivity(0.3).stationary_probability == 0.3

    def test_empirical_rate(self):
        model = BernoulliActivity(0.3)
        rng = np.random.default_rng(1)
        states = model.initial_states(200, rng)
        total = states.sum()
        for _ in range(200):
            states = model.next_states(states, rng)
            total += states.sum()
        rate = total / (200 * 201)
        assert abs(rate - 0.3) < 0.01

    def test_extremes(self):
        rng = np.random.default_rng(2)
        assert not BernoulliActivity(0.0).initial_states(50, rng).any()
        assert BernoulliActivity(1.0).initial_states(50, rng).all()

    @pytest.mark.parametrize("p_t", [-0.1, 1.1])
    def test_invalid_probability(self, p_t):
        with pytest.raises(ConfigurationError):
            BernoulliActivity(p_t)


class TestMarkovActivity:
    def test_stationary_rate_matches(self):
        model = MarkovActivity(0.3, burstiness=4.0)
        rng = np.random.default_rng(3)
        states = model.initial_states(500, rng)
        total = 0
        for _ in range(2000):
            states = model.next_states(states, rng)
            total += states.sum()
        rate = total / (500 * 2000)
        assert abs(rate - 0.3) < 0.02

    def test_burstiness_creates_correlation(self):
        model = MarkovActivity(0.3, burstiness=8.0)
        rng = np.random.default_rng(4)
        states = model.initial_states(1000, rng)
        next_states = model.next_states(states, rng)
        # P(on -> on) should far exceed the stationary 0.3.
        stay_rate = (states & next_states).sum() / max(states.sum(), 1)
        assert stay_rate > 0.6

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MarkovActivity(0.0)
        with pytest.raises(ConfigurationError):
            MarkovActivity(0.3, burstiness=0.5)
        with pytest.raises(ConfigurationError):
            # Stationarity would need a turn-on probability above 1.
            MarkovActivity(0.95, burstiness=1.01)


class TestPrimaryNetwork:
    def make(self, count=10):
        rng = np.random.default_rng(5)
        return PrimaryNetwork(
            positions=rng.random((count, 2)) * 100,
            power=10.0,
            radius=12.0,
            activity=BernoulliActivity(0.3),
        )

    def test_num_pus(self):
        assert self.make(7).num_pus == 7

    def test_receivers_within_radius(self):
        network = self.make(20)
        rng = np.random.default_rng(6)
        indices = np.arange(20)
        receivers = network.sample_receivers(indices, rng)
        distances = np.hypot(
            *(receivers - network.positions[indices]).T
        )
        assert (distances <= network.radius + 1e-9).all()

    def test_invalid_construction(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ConfigurationError):
            PrimaryNetwork(rng.random((3, 3)), 10.0, 12.0, BernoulliActivity(0.3))
        with pytest.raises(ConfigurationError):
            PrimaryNetwork(rng.random((3, 2)), 0.0, 12.0, BernoulliActivity(0.3))
        with pytest.raises(ConfigurationError):
            PrimaryNetwork(rng.random((3, 2)), 10.0, -1.0, BernoulliActivity(0.3))
