"""Tier-1 gate and unit tests for reprolint (``repro.lint``).

Three layers:

* per-rule fixtures — every rule in the pack has one snippet it must flag
  and one it must leave alone,
* framework behaviour — suppression comments, pyproject config (excludes,
  severity overrides, select/ignore, rule options), CLI formats/exit codes,
* the repo gate — linting ``src/`` at HEAD must come back clean, so any
  new determinism or paper-invariant violation fails tier-1.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
import repro.cli
from repro.errors import ConfigurationError
from repro.lint import (
    Diagnostic,
    LintConfig,
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    path_matches,
)
from repro.lint.cli import main as reprolint_main
from repro.lint.config import _parse_minimal_toml, load_pyproject_table
from repro.lint.suppress import parse_suppressions

SRC_DIR = Path(repro.__file__).resolve().parents[1]
REPO_ROOT = SRC_DIR.parent
PYPROJECT = REPO_ROOT / "pyproject.toml"


def rule_ids(diagnostics) -> set:
    return {diagnostic.rule_id for diagnostic in diagnostics}


# One (flagging_path, bad_source, clean_source) triple per rule.  The clean
# snippet is linted at the same path, so it exercises the rule itself rather
# than the path scoping.
RULE_FIXTURES = {
    "RNG001": (
        "repro/sim/backoff.py",
        "import random\n",
        "from repro.rng import StreamFactory\n\n__all__ = []\n",
    ),
    "RNG002": (
        "repro/sim/backoff.py",
        "import numpy as np\n\nrng = np.random.default_rng(7)\n",
        (
            "import numpy as np\n\n\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n\n\n"
            "__all__ = ['draw']\n"
        ),
    ),
    "DET001": (
        "repro/sim/engine.py",
        "import time\n\nstart = time.time()\n",
        "def advance(slot: int) -> int:\n    return slot + 1\n\n\n__all__ = ['advance']\n",
    ),
    "DET002": (
        "repro/metrics/rollup.py",
        "result = [n * 2 for n in {3, 1, 2}]\n",
        "result = [n * 2 for n in sorted({3, 1, 2})]\n",
    ),
    "INV001": (
        "repro/spectrum/sensing.py",
        "BETA_COEFF = 3.6275987284684357\n",
        "import math\n\nSQRT3 = math.sqrt(3.0)\n",
    ),
    "INV002": (
        "repro/spectrum/sir.py",
        "def check(x: float) -> bool:\n    return x == 0.0\n\n\n__all__ = ['check']\n",
        (
            "def check(count: int) -> bool:\n"
            "    return count == 0\n\n\n__all__ = ['check']\n"
        ),
    ),
    "API001": (
        "repro/sim/policies.py",
        "def act(history=[]):\n    return history\n\n\n__all__ = ['act']\n",
        "def act(history=None):\n    return history or []\n\n\n__all__ = ['act']\n",
    ),
    "API002": (
        "repro/sim/policies.py",
        (
            "def guard():\n    try:\n        return 1\n"
            "    except:\n        return 0\n\n\n__all__ = ['guard']\n"
        ),
        (
            "def guard():\n    try:\n        return 1\n"
            "    except ValueError:\n        return 0\n\n\n__all__ = ['guard']\n"
        ),
    ),
    "API003": (
        "repro/metrics/summary.py",
        "__all__ = ['gone']\n\n\ndef present() -> int:\n    return 1\n",
        "__all__ = ['present']\n\n\ndef present() -> int:\n    return 1\n",
    ),
    "OBS001": (
        "repro/experiments/progress_report.py",
        "import time\n\nstart = time.perf_counter()\n",
        (
            "from repro.obs.clock import monotonic_s\n\n"
            "start = monotonic_s()\n\n__all__ = []\n"
        ),
    ),
    "OBS002": (
        "repro/service/metrics_shim.py",
        (
            "import repro.obs as obs\n\n\n"
            "def count(name: str) -> None:\n"
            "    obs.counter_add(f'service.{name}')\n\n\n"
            "__all__ = ['count']\n"
        ),
        (
            "import repro.obs as obs\n\n"
            "_METRICS = {'admitted': 'service.jobs_admitted'}\n\n\n"
            "def count(name: str) -> None:\n"
            "    obs.counter_add(_METRICS[name])\n"
            "    obs.counter_add('service.requests')\n\n\n"
            "__all__ = ['count']\n"
        ),
    ),
    "PERF001": (
        "repro/perf/fanout.py",
        (
            "from concurrent.futures import ProcessPoolExecutor\n\n\n"
            "def fan_out(items):\n"
            "    def work(item):\n"
            "        return item * 2\n\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [f.result() for f in "
            "[pool.submit(work, i) for i in items]]\n\n\n"
            "__all__ = ['fan_out']\n"
        ),
        (
            "from concurrent.futures import ProcessPoolExecutor\n\n\n"
            "def work(item):\n"
            "    return item * 2\n\n\n"
            "def fan_out(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [f.result() for f in "
            "[pool.submit(work, i) for i in items]]\n\n\n"
            "__all__ = ['work', 'fan_out']\n"
        ),
    ),
    "ROB001": (
        "repro/harness/cleanup.py",
        (
            "def release(handles):\n"
            "    for handle in handles:\n"
            "        try:\n"
            "            handle.close()\n"
            "        except Exception:\n"
            "            pass\n\n\n"
            "__all__ = ['release']\n"
        ),
        (
            "def release(handles):\n"
            "    for handle in handles:\n"
            "        try:\n"
            "            handle.close()\n"
            "        except OSError:\n"
            "            pass\n\n\n"
            "__all__ = ['release']\n"
        ),
    ),
    "ROB002": (
        "repro/harness/waiting.py",
        (
            "import time\n\n\n"
            "def wait_until(check):\n"
            "    while not check():\n"
            "        time.sleep(0.1)\n\n\n"
            "__all__ = ['wait_until']\n"
        ),
        (
            "from repro.obs.clock import sleep_s\n\n\n"
            "def wait_until(check, sleep=sleep_s):\n"
            "    while not check():\n"
            "        sleep(0.1)\n\n\n"
            "__all__ = ['wait_until']\n"
        ),
    ),
    "ROB003": (
        "repro/experiments/export.py",
        (
            "import json\n"
            "import os\n\n\n"
            "def save(path, payload):\n"
            "    tmp = str(path) + '.tmp'\n"
            "    with open(tmp, 'w') as handle:\n"
            "        handle.write(json.dumps(payload))\n"
            "    os.replace(tmp, path)\n\n\n"
            "__all__ = ['save']\n"
        ),
        (
            "import json\n\n"
            "from repro.storage import atomic_write_text\n\n\n"
            "def save(path, payload):\n"
            "    atomic_write_text(path, json.dumps(payload))\n\n\n"
            "__all__ = ['save']\n"
        ),
    ),
    "RNG010": (
        "repro/sim/nodes.py",
        (
            "def sense(streams):\n"
            "    return streams.stream('shared')\n\n\n"
            "def transmit(streams):\n"
            "    return streams.stream('shared')\n\n\n"
            "__all__ = ['sense', 'transmit']\n"
        ),
        (
            "def sense(streams):\n"
            "    return streams.stream('sense')\n\n\n"
            "def transmit(streams):\n"
            "    return streams.stream('transmit')\n\n\n"
            "__all__ = ['sense', 'transmit']\n"
        ),
    ),
    "RNG011": (
        "repro/sim/naming.py",
        (
            "import os\n\n\n"
            "def pick(streams):\n"
            "    label = os.environ.get('LABEL', 'x')\n"
            "    return streams.stream(label)\n\n\n"
            "__all__ = ['pick']\n"
        ),
        (
            "def pick(streams, label):\n"
            "    return streams.stream(label)\n\n\n"
            "__all__ = ['pick']\n"
        ),
    ),
    "RNG012": (
        "repro/sim/reps.py",
        (
            "def run(streams, reps):\n"
            "    draws = []\n"
            "    for rep in range(reps):\n"
            "        draws.append(streams.stream('noise'))\n"
            "    return draws\n\n\n"
            "__all__ = ['run']\n"
        ),
        (
            "def run(streams, reps):\n"
            "    draws = []\n"
            "    for rep in range(reps):\n"
            "        draws.append(streams.stream(f'noise-{rep}'))\n"
            "    return draws\n\n\n"
            "__all__ = ['run']\n"
        ),
    ),
    "PERF002": (
        "repro/perf/workers.py",
        (
            "from repro.harness import WorkerSupervisor\n\n"
            "_CURRENT = None\n\n\n"
            "def set_current(value):\n"
            "    global _CURRENT\n"
            "    _CURRENT = value\n\n\n"
            "def work(item):\n"
            "    return (_CURRENT, item)\n\n\n"
            "def launch(items):\n"
            "    supervisor = WorkerSupervisor(2)\n"
            "    return supervisor.run(work, items)\n\n\n"
            "__all__ = ['set_current', 'work', 'launch']\n"
        ),
        (
            "from repro.harness import WorkerSupervisor\n\n"
            "SCALE = 2.0\n\n\n"
            "def work(item):\n"
            "    return SCALE * item\n\n\n"
            "def launch(items):\n"
            "    supervisor = WorkerSupervisor(2)\n"
            "    return supervisor.run(work, items)\n\n\n"
            "__all__ = ['work', 'launch']\n"
        ),
    ),
    "PERF003": (
        "repro/perf/segments.py",
        (
            "from multiprocessing import shared_memory\n\n\n"
            "def publish(payload):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=len(payload))\n"
            "    shm.buf[: len(payload)] = payload\n"
            "    return shm.name\n\n\n"
            "__all__ = ['publish']\n"
        ),
        (
            "from multiprocessing import shared_memory\n\n\n"
            "def publish(payload):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=len(payload))\n"
            "    try:\n"
            "        shm.buf[: len(payload)] = payload\n"
            "    except BaseException:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
            "        raise\n"
            "    return shm.name\n\n\n"
            "__all__ = ['publish']\n"
        ),
    ),
    "DET003": (
        "repro/obs/publish.py",
        (
            "from repro.obs import merge_snapshot\n\n\n"
            "def collect(metrics):\n"
            "    payload = {}\n"
            "    for name in metrics.keys():\n"
            "        payload[name] = metrics[name]\n"
            "    return payload\n\n\n"
            "def publish(metrics):\n"
            "    return merge_snapshot(collect(metrics))\n\n\n"
            "__all__ = ['collect', 'publish']\n"
        ),
        (
            "from repro.obs import merge_snapshot\n\n\n"
            "def collect(metrics):\n"
            "    payload = {}\n"
            "    for name in sorted(metrics):\n"
            "        payload[name] = metrics[name]\n"
            "    return payload\n\n\n"
            "def publish(metrics):\n"
            "    return merge_snapshot(collect(metrics))\n\n\n"
            "__all__ = ['collect', 'publish']\n"
        ),
    ),
    "SUP001": (
        "repro/sim/tidy.py",
        "x = 1  # reprolint: disable=DET002 -- nothing here needs it\n",
        "vals = [n for n in {1, 2}]  # reprolint: disable=DET002 -- tiny fixed set\n",
    ),
}

# Rules whose fixtures need a non-default config (SUP001 only reports in
# strict runs).
RULE_FIXTURE_CONFIGS = {
    "SUP001": lambda: LintConfig(strict=True),
}


def fixture_config(rule_id):
    factory = RULE_FIXTURE_CONFIGS.get(rule_id)
    return factory() if factory else None


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_positive_fixture_fires(self, rule_id):
        path, bad, _ = RULE_FIXTURES[rule_id]
        diagnostics = lint_source(bad, path=path, config=fixture_config(rule_id))
        assert rule_id in rule_ids(diagnostics), (
            f"{rule_id} should flag:\n{bad}"
        )
        finding = next(d for d in diagnostics if d.rule_id == rule_id)
        assert finding.line >= 1
        assert finding.path == path

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_negative_fixture_clean(self, rule_id):
        path, _, good = RULE_FIXTURES[rule_id]
        diagnostics = lint_source(good, path=path, config=fixture_config(rule_id))
        assert rule_id not in rule_ids(diagnostics), (
            f"{rule_id} should not flag:\n{good}"
        )

    def test_every_registered_rule_has_fixtures(self):
        assert {rule.id for rule in all_rules()} == set(RULE_FIXTURES)

    def test_rng002_flags_numpy_random_import(self):
        diagnostics = lint_source(
            "from numpy.random import default_rng\n", path="repro/sim/x.py"
        )
        assert "RNG002" in rule_ids(diagnostics)

    def test_rng_rules_allow_repro_rng_package(self):
        source = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
        assert "RNG002" in rule_ids(lint_source(source, path="repro/sim/x.py"))
        assert "RNG002" not in rule_ids(
            lint_source(source, path="repro/rng/streams.py")
        )

    def test_det001_only_fires_in_hot_paths(self):
        source = "import time\n\nstamp = time.time()\n"
        assert "DET001" in rule_ids(lint_source(source, path="repro/sim/x.py"))
        assert "DET001" not in rule_ids(
            lint_source(source, path="repro/experiments/report.py")
        )

    def test_obs001_allows_the_clock_facade(self):
        source = "import time\n\n\ndef monotonic_s() -> float:\n    return time.perf_counter()\n\n\n__all__ = ['monotonic_s']\n"
        assert "OBS001" in rule_ids(
            lint_source(source, path="repro/experiments/x.py")
        )
        assert "OBS001" not in rule_ids(
            lint_source(source, path="repro/obs/clock.py")
        )

    def test_obs001_flags_from_time_imports(self):
        assert "OBS001" in rule_ids(
            lint_source(
                "from time import perf_counter\n", path="repro/viz/timing.py"
            )
        )

    def test_api003_tolerates_pep562_lazy_exports(self):
        source = (
            "__all__ = ['lazy']\n\n\n"
            "def __getattr__(name):\n"
            "    raise AttributeError(name)\n"
        )
        assert "API003" not in rule_ids(
            lint_source(source, path="repro/metrics/summary.py")
        )

    def test_det002_flags_order_sensitive_wrappers(self):
        assert "DET002" in rule_ids(
            lint_source("order = list(set([3, 1, 2]))\n", path="repro/a.py")
        )
        assert "DET002" in rule_ids(
            lint_source("for x in {1, 2}:\n    pass\n", path="repro/a.py")
        )
        assert "DET002" not in rule_ids(
            lint_source("order = sorted(set([3, 1, 2]))\n", path="repro/a.py")
        )

    def test_inv001_catches_truncated_constant_copies(self):
        diagnostics = lint_source("S = 1.7320508\n", path="repro/core/x.py")
        assert "INV001" in rule_ids(diagnostics)

    def test_inv001_allows_canonical_modules(self):
        source = "C = 0.8660254037844386\n"
        assert "INV001" not in rule_ids(
            lint_source(source, path="repro/core/pcr.py")
        )

    def test_inv002_scoped_to_numeric_layers(self):
        source = "flag = 1.0 == 2.0\n"
        assert "INV002" in rule_ids(
            lint_source(source, path="repro/geometry/distance.py")
        )
        assert "INV002" not in rule_ids(
            lint_source(source, path="repro/experiments/runner.py")
        )

    def test_api003_missing_all_and_init_exemption(self):
        source = "def helper() -> int:\n    return 1\n"
        assert "API003" in rule_ids(lint_source(source, path="repro/util.py"))
        # __init__.py re-export lists are deliberate; only dangling names count.
        assert "API003" not in rule_ids(
            lint_source("from repro.errors import ReproError\n", path="repro/__init__.py")
        )
        assert "API003" in rule_ids(
            lint_source("__all__ = ['missing']\n", path="repro/__init__.py")
        )

    def test_syntax_error_reported_as_parse_diagnostic(self):
        diagnostics = lint_source("def broken(:\n", path="repro/x.py")
        assert [d.rule_id for d in diagnostics] == ["PARSE"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_rob001_flags_bare_except_with_pass(self):
        source = "try:\n    x = 1\nexcept:\n    pass\n\n__all__ = []\n"
        assert "ROB001" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob001_flags_base_exception_in_tuple(self):
        source = (
            "try:\n    x = 1\n"
            "except (ValueError, BaseException):\n    ...\n\n__all__ = []\n"
        )
        assert "ROB001" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob001_allows_broad_handler_that_acts(self):
        source = (
            "try:\n    x = 1\n"
            "except Exception as exc:\n    raise RuntimeError(str(exc))\n\n"
            "__all__ = []\n"
        )
        assert "ROB001" not in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob001_suppressible_on_the_pass_line(self):
        source = (
            "try:\n    x = 1\n"
            "except Exception:\n"
            "    pass  # reprolint: disable=ROB001 -- last-ditch cleanup\n\n"
            "__all__ = []\n"
        )
        assert "ROB001" not in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob002_flags_from_import_sleep_alias(self):
        source = (
            "from time import sleep as snooze\n\n\n"
            "def retry(fn):\n"
            "    for _ in range(3):\n"
            "        snooze(1.0)\n"
            "    return fn()\n\n\n"
            "__all__ = ['retry']\n"
        )
        assert "ROB002" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob002_flags_wall_clock_deadline_loop(self):
        source = (
            "import time\n\n\n"
            "def wait(deadline):\n"
            "    while time.monotonic() < deadline:\n"
            "        pass\n\n\n"
            "__all__ = ['wait']\n"
        )
        assert "ROB002" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob002_exempts_the_clock_facade(self):
        source = "import time\n\ntime.sleep(0.0)\n\n__all__ = []\n"
        assert "ROB002" not in rule_ids(
            lint_source(source, path="repro/obs/clock.py")
        )
        assert "ROB002" in rule_ids(lint_source(source, path="repro/cli.py"))

    def test_rob003_flags_from_import_rename_alias(self):
        source = (
            "from os import rename as mv\n\n\n"
            "def save(path, text):\n"
            "    with open(str(path) + '.tmp', 'w') as handle:\n"
            "        handle.write(text)\n"
            "    mv(str(path) + '.tmp', path)\n\n\n"
            "__all__ = ['save']\n"
        )
        assert "ROB003" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob003_flags_tempfile_file_factories(self):
        source = (
            "import tempfile\n\n\n"
            "def scratch():\n"
            "    return tempfile.mkstemp()\n\n\n"
            "__all__ = ['scratch']\n"
        )
        assert "ROB003" in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob003_allows_scratch_directories(self):
        source = (
            "import tempfile\n\n\n"
            "def scratch():\n"
            "    return tempfile.mkdtemp()\n\n\n"
            "__all__ = ['scratch']\n"
        )
        assert "ROB003" not in rule_ids(lint_source(source, path="repro/x.py"))

    def test_rob003_exempts_the_storage_module(self):
        source = "import os\n\nos.replace('a', 'b')\n\n__all__ = []\n"
        assert "ROB003" not in rule_ids(
            lint_source(source, path="repro/storage.py")
        )
        assert "ROB003" in rule_ids(
            lint_source(source, path="repro/obs/tracing.py")
        )

    def test_rob002_allows_injected_sleep(self):
        source = (
            "from repro.obs.clock import sleep_s\n\n\n"
            "def retry(fn, sleep=sleep_s):\n"
            "    for attempt in range(3):\n"
            "        sleep(0.5 * 2 ** attempt)\n"
            "    return fn()\n\n\n"
            "__all__ = ['retry']\n"
        )
        assert "ROB002" not in rule_ids(lint_source(source, path="repro/x.py"))


class TestSuppressions:
    def test_same_line_disable(self):
        path, bad, _ = RULE_FIXTURES["INV002"]
        suppressed = bad.replace(
            "x == 0.0",
            "x == 0.0  # reprolint: disable=INV002 -- exact-zero guard",
        )
        assert "INV002" not in rule_ids(lint_source(suppressed, path=path))

    def test_standalone_comment_covers_next_line(self):
        source = (
            "# reprolint: disable=INV001 -- fixture constant\n"
            "BETA_COEFF = 3.6275987284684357\n"
        )
        assert "INV001" not in rule_ids(
            lint_source(source, path="repro/spectrum/x.py")
        )

    def test_file_level_disable(self):
        source = (
            "# reprolint: disable-file=DET002\n"
            "a = list(set([1, 2]))\n"
            "b = list(set([3, 4]))\n"
        )
        assert "DET002" not in rule_ids(lint_source(source, path="repro/a.py"))

    def test_disable_all(self):
        source = "import random  # reprolint: disable=all\n"
        assert lint_source(source, path="repro/sim/a.py") == []

    def test_unrelated_rule_still_fires(self):
        source = "import random  # reprolint: disable=DET002\n"
        assert "RNG001" in rule_ids(lint_source(source, path="repro/sim/a.py"))

    def test_marker_inside_string_is_ignored(self):
        source = (
            "note = '# reprolint: disable=RNG001'\nimport random\n"
        )
        assert "RNG001" in rule_ids(lint_source(source, path="repro/sim/a.py"))

    def test_parse_suppressions_index(self):
        index = parse_suppressions(
            "x = 1  # reprolint: disable=INV002, DET002\n"
        )
        assert index.is_suppressed("INV002", 1)
        assert index.is_suppressed("DET002", 1)
        assert not index.is_suppressed("INV002", 2)
        assert not index.is_suppressed("RNG001", 1)


class TestConfig:
    def write_pyproject(self, tmp_path: Path, body: str) -> Path:
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(body, encoding="utf-8")
        return pyproject

    def test_excludes_respected(self, tmp_path):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import random\n", encoding="utf-8")
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        (legacy / "old.py").write_text("import random\n", encoding="utf-8")
        pyproject = self.write_pyproject(
            tmp_path,
            "[tool.reprolint]\nexclude = [\"legacy/*\"]\n",
        )
        config = LintConfig.from_pyproject(pyproject)
        report = lint_paths([tmp_path], config)
        assert report.files_checked == 1
        assert {d.rule_id for d in report.diagnostics} >= {"RNG001"}
        assert all("legacy" not in d.path for d in report.diagnostics)

    def test_severity_override_and_fail_on(self, tmp_path):
        pyproject = self.write_pyproject(
            tmp_path,
            "[tool.reprolint]\nfail_on = \"error\"\n\n"
            "[tool.reprolint.severity]\nDET002 = \"info\"\n",
        )
        config = LintConfig.from_pyproject(pyproject)
        diagnostics = lint_source(
            "a = list(set([1, 2]))\n", path="repro/a.py", config=config
        )
        assert [d.severity for d in diagnostics] == [Severity.INFO]
        report = lint_paths([], config)
        report.diagnostics.extend(diagnostics)
        assert not report.failed(config.fail_on)

    def test_select_and_ignore(self):
        config = LintConfig(select=["RNG001"])
        source = "import random\n\nimport time\n\nstart = time.time()\n"
        assert rule_ids(lint_source(source, "repro/sim/a.py", config)) == {"RNG001"}
        config = LintConfig(ignore=["RNG001"])
        assert "RNG001" not in rule_ids(
            lint_source(source, "repro/sim/a.py", config)
        )

    def test_rule_option_override(self, tmp_path):
        pyproject = self.write_pyproject(
            tmp_path,
            "[tool.reprolint]\n\n"
            "[tool.reprolint.rules.RNG002]\nallow = [\"repro/legacy/*\"]\n",
        )
        config = LintConfig.from_pyproject(pyproject)
        source = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
        assert "RNG002" not in rule_ids(
            lint_source(source, "repro/legacy/x.py", config)
        )
        # The built-in allow list was *replaced*, so repro/rng now flags.
        assert "RNG002" in rule_ids(
            lint_source(source, "repro/rng/streams.py", config)
        )

    def test_minimal_toml_parser_parity(self):
        body = (
            "[tool.reprolint]\n"
            "exclude = [\"a/*\", \"b/*\"]\n"
            "fail_on = \"error\"\n"
            "[tool.reprolint.severity]\n"
            "DET002 = \"info\"\n"
            "[tool.reprolint.rules.RNG002]\n"
            "allow = [\"x/*\"]\n"
        )
        parsed = _parse_minimal_toml(body)["tool"]["reprolint"]
        assert parsed["exclude"] == ["a/*", "b/*"]
        assert parsed["fail_on"] == "error"
        assert parsed["severity"]["DET002"] == "info"
        assert parsed["rules"]["RNG002"]["allow"] == ["x/*"]

    def test_path_matches_suffix_semantics(self):
        assert path_matches("src/repro/rng/streams.py", ["repro/rng/*"])
        assert path_matches("repro/rng/streams.py", ["repro/rng/*"])
        assert not path_matches("src/repro/sim/engine.py", ["repro/rng/*"])

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            Severity.from_name("fatal")

    def test_repo_pyproject_table_loads(self):
        table = load_pyproject_table(PYPROJECT)
        assert "exclude" in table


class TestFrameworkApi:
    def test_get_rule_roundtrip(self):
        assert get_rule("RNG001").name == "random-module"
        with pytest.raises(ConfigurationError):
            get_rule("NOPE999")

    def test_diagnostic_dict_and_human_formats(self):
        diagnostic = Diagnostic(
            rule_id="RNG001",
            path="repro/a.py",
            line=3,
            col=4,
            severity=Severity.ERROR,
            message="nope",
        )
        assert diagnostic.format_human() == "repro/a.py:3:4: RNG001 error: nope"
        assert diagnostic.as_dict()["severity"] == "error"

    def test_lint_is_deterministic(self, tmp_path):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        (package / "a.py").write_text(
            "import random\nimport time\n\nstart = time.time()\n",
            encoding="utf-8",
        )
        (package / "b.py").write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        first = [d.as_dict() for d in lint_paths([tmp_path]).diagnostics]
        second = [d.as_dict() for d in lint_paths([tmp_path]).diagnostics]
        assert first == second
        locations = [(d["path"], d["line"], d["col"]) for d in first]
        assert locations == sorted(locations), "diagnostics come out sorted"


class TestCli:
    def test_json_output_and_exit_code(self, tmp_path, capsys):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import random\n", encoding="utf-8")
        code = reprolint_main(["--format", "json", str(tmp_path)])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 1
        assert payload["files_checked"] == 1
        assert payload["diagnostics"][0]["rule"] == "RNG001"
        assert payload["diagnostics"][0]["line"] == 1

    def test_human_output_contains_location(self, tmp_path, capsys):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "bad.py").write_text(
            "def f(x=[]):\n    return x\n", encoding="utf-8"
        )
        code = reprolint_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad.py:1:" in out
        assert "API001" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "ok.py").write_text(
            "__all__ = ['f']\n\n\ndef f() -> int:\n    return 1\n",
            encoding="utf-8",
        )
        assert reprolint_main([str(tmp_path)]) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert reprolint_main([str(tmp_path / "nope")]) == 2

    def test_exclude_override_relints_excluded_tree(self, tmp_path, capsys):
        """`--exclude ""` drops the config excludes (relaxed CI profile)."""
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint]\nexclude = ["bench/*"]\n', encoding="utf-8"
        )
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "b.py").write_text("import random\n", encoding="utf-8")
        config_args = ["--config", str(tmp_path / "pyproject.toml"), "--no-cache"]
        assert reprolint_main(config_args + [str(bench)]) == 0
        assert (
            reprolint_main(config_args + ["--exclude", "", str(bench)]) == 1
        )

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_class in all_rules():
            assert rule_class.id in out

    def test_ignore_flag(self, tmp_path, capsys):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "bad.py").write_text(
            "def f(x=[]):\n    return x\n\n\n__all__ = ['f']\n", encoding="utf-8"
        )
        assert reprolint_main(["--ignore", "API001", str(tmp_path)]) == 0


class TestRepoGate:
    """The tier-1 contract: the repo itself lints clean, violations fail."""

    def test_src_tree_is_lint_clean(self, capsys):
        code = reprolint_main(["--config", str(PYPROJECT), str(SRC_DIR)])
        out = capsys.readouterr().out
        assert code == 0, f"reprolint found violations in src/:\n{out}"

    def test_addc_repro_lint_subcommand(self, capsys):
        code = repro.cli.main(
            ["lint", "--config", str(PYPROJECT), str(SRC_DIR)]
        )
        assert code == 0
        assert "finding(s)" in capsys.readouterr().out

    def test_introduced_violation_fails(self, tmp_path, capsys):
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        clean = SRC_DIR / "repro" / "sim" / "packet.py"
        (package / "packet.py").write_text(
            clean.read_text(encoding="utf-8")
            + "\nimport random  # injected regression\n",
            encoding="utf-8",
        )
        code = reprolint_main(["--config", str(PYPROJECT), str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RNG001" in out and "packet.py" in out

    def test_rule_pack_fixtures_fail_via_cli(self, tmp_path, capsys):
        for rule_id, (path, bad, _) in sorted(RULE_FIXTURES.items()):
            # Unique basename per rule: several fixtures share a directory.
            target = tmp_path / Path(path).parent / f"fixture_{rule_id.lower()}.py"
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(bad, encoding="utf-8")
        # --strict so the SUP001 fixture reports; --no-cache keeps the
        # throwaway fixture tree out of the repo's incremental cache.
        code = reprolint_main(
            ["--config", str(PYPROJECT), "--strict", "--no-cache", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        for rule_id in RULE_FIXTURES:
            assert rule_id in out, f"{rule_id} fixture missing from CLI output"


def write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")


# A mini-package whose driver hands a worker from another module to a
# spawn pool — safe as written; UNSAFE_UTIL makes the worker read a
# mutated-after-import module global.
SPAWN_PKG = {
    "pkg/__init__.py": "",
    "pkg/util.py": "def work(item):\n    return item + 1\n",
    "pkg/driver.py": (
        "from repro.harness import WorkerSupervisor\n\n"
        "from pkg.util import work\n\n\n"
        "def launch(items):\n"
        "    supervisor = WorkerSupervisor(2)\n"
        "    return supervisor.run(work, items)\n"
    ),
}

UNSAFE_UTIL = (
    "STATE = 0\n\n\n"
    "def bump():\n"
    "    global STATE\n"
    "    STATE = STATE + 1\n\n\n"
    "def work(item):\n"
    "    return STATE + item\n"
)


class TestProjectTier:
    """Cross-file rules over mini-packages (resolution through imports)."""

    def test_rng010_cross_module_collision(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def f(streams):\n    return streams.stream('shared')\n",
                "pkg/b.py": "def g(streams):\n    return streams.stream('shared')\n",
            },
        )
        report = lint_paths([Path("pkg")], LintConfig(select=["RNG010"]))
        assert rule_ids(report.diagnostics) == {"RNG010"}
        assert len(report.diagnostics) == 1, "one diagnostic per colliding name"
        message = report.diagnostics[0].message
        assert "pkg.a:f" in message and "pkg.b:g" in message

    def test_rng010_related_call_paths_do_not_collide(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": (
                    "from pkg.b import g\n\n\n"
                    "def f(streams):\n"
                    "    g(streams)\n"
                    "    return streams.stream('shared')\n"
                ),
                "pkg/b.py": "def g(streams):\n    return streams.stream('shared')\n",
            },
        )
        report = lint_paths([Path("pkg")], LintConfig(select=["RNG010"]))
        assert report.diagnostics == [], (
            "f reaches g through the call graph; the mirrored name is one lineage"
        )

    def test_rng011_constant_import_is_auditable(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/names.py": "NOISE_STREAM = 'noise'\n",
                "pkg/use.py": (
                    "from pkg.names import NOISE_STREAM\n\n\n"
                    "def f(streams):\n"
                    "    return streams.stream(NOISE_STREAM)\n"
                ),
            },
        )
        report = lint_paths([Path("pkg")], LintConfig(select=["RNG011"]))
        assert report.diagnostics == []

    def test_rng011_call_result_is_dynamic(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/names.py": "def pick_name():\n    return 'noise'\n",
                "pkg/use.py": (
                    "from pkg.names import pick_name\n\n\n"
                    "def f(streams):\n"
                    "    return streams.stream(pick_name())\n"
                ),
            },
        )
        report = lint_paths([Path("pkg")], LintConfig(select=["RNG011"]))
        assert rule_ids(report.diagnostics) == {"RNG011"}
        assert report.diagnostics[0].path == "pkg/use.py"

    def test_rng012_loop_fresh_receiver_is_exempt(self):
        source = (
            "def run(root, reps):\n"
            "    out = []\n"
            "    for rep in range(reps):\n"
            "        factory = root.spawn(f'rep-{rep}')\n"
            "        out.append(factory.stream('addc'))\n"
            "    return out\n\n\n"
            "__all__ = ['run']\n"
        )
        assert "RNG012" not in rule_ids(lint_source(source, "repro/sim/x.py"))

    def test_perf002_cross_module_worker(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = LintConfig(select=["PERF002"])
        write_tree(tmp_path, SPAWN_PKG)
        assert lint_paths([Path("pkg")], config).diagnostics == []
        (tmp_path / "pkg" / "util.py").write_text(UNSAFE_UTIL, encoding="utf-8")
        report = lint_paths([Path("pkg")], config)
        assert rule_ids(report.diagnostics) == {"PERF002"}
        finding = report.diagnostics[0]
        assert finding.path == "pkg/driver.py", "anchored at the handoff site"
        assert "STATE" in finding.message and "pkg.util" in finding.message

    def test_perf002_allowed_globals_escape_hatch(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        (tmp_path / "pkg" / "util.py").write_text(UNSAFE_UTIL, encoding="utf-8")
        config = LintConfig(
            select=["PERF002"],
            rule_options={"PERF002": {"allowed_globals": ["pkg.util:STATE"]}},
        )
        assert lint_paths([Path("pkg")], config).diagnostics == []

    def test_det003_cross_module_merge_feed(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = LintConfig(select=["DET003"])
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/produce.py": (
                    "def collect(metrics):\n"
                    "    payload = {}\n"
                    "    for name in metrics.keys():\n"
                    "        payload[name] = metrics[name]\n"
                    "    return payload\n"
                ),
                "pkg/publish.py": (
                    "from pkg.produce import collect\n\n\n"
                    "def publish(metrics, recorder):\n"
                    "    return recorder.merge_snapshot(collect(metrics))\n"
                ),
            },
        )
        report = lint_paths([Path("pkg")], config)
        assert rule_ids(report.diagnostics) == {"DET003"}
        finding = report.diagnostics[0]
        assert finding.path == "pkg/produce.py", "anchored at the unordered iteration"
        assert "sorted(" in finding.message
        fixed = (
            "def collect(metrics):\n"
            "    payload = {}\n"
            "    for name in sorted(metrics):\n"
            "        payload[name] = metrics[name]\n"
            "    return payload\n"
        )
        (tmp_path / "pkg" / "produce.py").write_text(fixed, encoding="utf-8")
        assert lint_paths([Path("pkg")], config).diagnostics == []


class TestIncrementalCache:
    def test_warm_run_analyzes_zero_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        config = LintConfig(select=["PERF002", "RNG001"])
        cache = tmp_path / "cache.json"
        cold = lint_paths([Path("pkg")], config, cache_path=cache)
        assert cold.files_analyzed == 3 and cold.cache_hits == 0
        warm = lint_paths([Path("pkg")], config, cache_path=cache)
        assert warm.files_analyzed == 0 and warm.cache_hits == 3
        assert [d.as_dict() for d in warm.diagnostics] == [
            d.as_dict() for d in cold.diagnostics
        ]
        assert warm.suppressed == cold.suppressed

    def test_dependent_reanalyzed_on_change(self, tmp_path, monkeypatch):
        """Editing only util.py must surface the new cross-file finding
        anchored in the *unchanged* driver.py."""
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        config = LintConfig(select=["PERF002"])
        cache = tmp_path / "cache.json"
        assert lint_paths([Path("pkg")], config, cache_path=cache).diagnostics == []
        (tmp_path / "pkg" / "util.py").write_text(UNSAFE_UTIL, encoding="utf-8")
        warm = lint_paths([Path("pkg")], config, cache_path=cache)
        assert warm.files_analyzed == 2, "util.py plus its dependent driver.py"
        assert warm.cache_hits == 1, "__init__.py untouched"
        assert rule_ids(warm.diagnostics) == {"PERF002"}
        assert warm.diagnostics[0].path == "pkg/driver.py"

    def test_config_change_invalidates_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        cache = tmp_path / "cache.json"
        lint_paths([Path("pkg")], LintConfig(select=["PERF002"]), cache_path=cache)
        rerun = lint_paths(
            [Path("pkg")], LintConfig(select=["RNG001"]), cache_path=cache
        )
        assert rerun.files_analyzed == 3 and rerun.cache_hits == 0

    def test_corrupt_cache_is_a_cold_run(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report = lint_paths([Path("pkg")], LintConfig(), cache_path=cache)
        assert report.files_analyzed == 3

    def test_parallel_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, SPAWN_PKG)
        (tmp_path / "pkg" / "util.py").write_text(UNSAFE_UTIL, encoding="utf-8")
        config = LintConfig(select=["PERF002", "API003"])
        serial = lint_paths([Path("pkg")], config, jobs=1)
        parallel = lint_paths([Path("pkg")], config, jobs=2)
        assert [d.as_dict() for d in serial.diagnostics] == [
            d.as_dict() for d in parallel.diagnostics
        ]


# Condensed structural subset of the official SARIF 2.1.0 schema
# (sarif-schema-2.1.0.json): the required top-level shape, tool.driver,
# and the result/location shape GitHub code scanning relies on.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifOutput:
    def _sarif_for(self, tmp_path, capsys, source: str) -> dict:
        package = tmp_path / "repro" / "sim"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(source, encoding="utf-8")
        reprolint_main(["--format", "sarif", "--no-cache", str(tmp_path)])
        return json.loads(capsys.readouterr().out)

    def test_sarif_validates_against_2_1_0_schema(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        log = self._sarif_for(tmp_path, capsys, "import random\n")
        jsonschema.validate(log, SARIF_SCHEMA)
        assert log["runs"][0]["results"], "findings must appear as results"

    def test_sarif_result_shape(self, tmp_path, capsys):
        log = self._sarif_for(tmp_path, capsys, "import random\n")
        run = log["runs"][0]
        result = next(
            r for r in run["results"] if r["ruleId"] == "RNG001"
        )
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 1
        assert location["region"]["startColumn"] >= 1
        rules = run["tool"]["driver"]["rules"]
        assert result["ruleIndex"] == [r["id"] for r in rules].index("RNG001")

    def test_sarif_rules_cover_the_pack(self, tmp_path, capsys):
        log = self._sarif_for(tmp_path, capsys, "x = 1\n")
        listed = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        assert listed >= {rule_class.id for rule_class in all_rules()}


class TestBaselineRatchet:
    def test_baseline_filters_known_reports_new_and_stale(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {"pkg/a.py": "import random\n", "pkg/b.py": "x = 1\n"},
        )
        config = LintConfig(select=["RNG001"])
        baseline = tmp_path / "baseline.json"
        first = lint_paths(
            [Path("pkg")], config, baseline_path=baseline, update_baseline=True
        )
        assert first.diagnostics == [] and first.baselined == 1
        assert baseline.is_file()

        # A new finding is NOT covered; the baselined one stays filtered.
        (tmp_path / "pkg" / "b.py").write_text("import random\n", encoding="utf-8")
        second = lint_paths([Path("pkg")], config, baseline_path=baseline)
        assert [d.path for d in second.diagnostics] == ["pkg/b.py"]
        assert second.baselined == 1 and second.stale_baseline == []

        # Fixing the baselined finding leaves a stale entry (ratchet cue).
        (tmp_path / "pkg" / "a.py").write_text("x = 2\n", encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text("y = 3\n", encoding="utf-8")
        third = lint_paths([Path("pkg")], config, baseline_path=baseline)
        assert third.diagnostics == [] and third.baselined == 0
        assert len(third.stale_baseline) == 1
        assert third.stale_baseline[0].rule == "RNG001"

    def test_update_preserves_justifications(self, tmp_path, monkeypatch):
        from repro.lint import Baseline

        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path, {"pkg/a.py": "import random\n"})
        config = LintConfig(select=["RNG001"])
        baseline_path = tmp_path / "baseline.json"
        lint_paths(
            [Path("pkg")], config, baseline_path=baseline_path, update_baseline=True
        )
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        payload["entries"][0]["justification"] = "known quirk"
        baseline_path.write_text(json.dumps(payload), encoding="utf-8")
        lint_paths(
            [Path("pkg")], config, baseline_path=baseline_path, update_baseline=True
        )
        kept = Baseline.load(baseline_path)
        assert kept.entries[0].justification == "known quirk"

    def test_repo_baseline_matches_current_findings(self):
        """The committed baseline has no stale entries (ratchet invariant)."""
        from repro.lint import Baseline

        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries, "repo baseline exists and is non-empty"
        config = LintConfig.from_pyproject(PYPROJECT)
        report = lint_paths([SRC_DIR], config)
        new, matched, stale = baseline.split(report.diagnostics)
        assert stale == [], "baseline entries must match live findings"
        assert matched == len(baseline.entries)


class TestChangedMode:
    def _git(self, *argv, cwd):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t"] + list(argv),
            cwd=str(cwd),
            check=True,
            capture_output=True,
        )

    def _repo_with_history(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def work(item):\n    return item\n",
                "pkg/driver.py": (
                    "from pkg.util import work\n\n\n"
                    "def launch(items):\n"
                    "    return [work(i) for i in items]\n"
                ),
                "pkg/other.py": "import random\n",
            },
        )
        self._git("init", "-q", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "seed", cwd=tmp_path)

    def test_git_changed_files(self, tmp_path):
        from repro.lint.runner import git_changed_files

        self._repo_with_history(tmp_path)
        (tmp_path / "pkg" / "util.py").write_text(
            "import random\n\n\ndef work(item):\n    return item\n",
            encoding="utf-8",
        )
        (tmp_path / "pkg" / "fresh.py").write_text("x = 1\n", encoding="utf-8")
        changed = git_changed_files("HEAD", root=tmp_path)
        assert changed == ["pkg/fresh.py", "pkg/util.py"]

    def test_changed_restricts_to_changed_plus_dependents(
        self, tmp_path, monkeypatch, capsys
    ):
        self._repo_with_history(tmp_path)
        monkeypatch.chdir(tmp_path)
        (tmp_path / "pkg" / "util.py").write_text(
            "import random\n\n\ndef work(item):\n    return item\n",
            encoding="utf-8",
        )
        code = reprolint_main(
            [
                "--changed=HEAD",
                "--select",
                "RNG001",
                "--no-cache",
                "--format",
                "json",
                "pkg",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        # util.py changed; driver.py imports it; other.py's finding is
        # out of focus even though the file still has `import random`.
        assert [d["path"] for d in payload["diagnostics"]] == ["pkg/util.py"]
        assert payload["files_checked"] == 2

    def test_bad_ref_is_usage_error(self, tmp_path, monkeypatch, capsys):
        self._repo_with_history(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = reprolint_main(["--changed=nonexistent-ref", "--no-cache", "pkg"])
        assert code == 2
        assert "--changed" in capsys.readouterr().err


class TestStrictSuppressions:
    def test_unused_suppressions_reported_only_in_strict(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path,
            {
                "pkg/a.py": (
                    "# reprolint: disable-file=RNG001\n"
                    "x = 1  # reprolint: disable=DET002 -- stale\n"
                    "import random\n"
                ),
            },
        )
        config = LintConfig(select=["RNG001", "DET002", "SUP001"])
        relaxed = lint_paths([Path("pkg")], config)
        assert "SUP001" not in rule_ids(relaxed.diagnostics)
        strict = lint_paths([Path("pkg")], config, strict=True)
        findings = [d for d in strict.diagnostics if d.rule_id == "SUP001"]
        # The file-level RNG001 suppression is used (line 3); only the
        # DET002 line suppression is dead.
        assert [d.line for d in findings] == [2]

    def test_strict_config_key(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(
            tmp_path, {"pkg/a.py": "x = 1  # reprolint: disable=DET002\n"}
        )
        config = LintConfig.from_table({"strict": True, "select": ["DET002", "SUP001"]})
        assert config.strict is True
        report = lint_paths([Path("pkg")], config)
        assert rule_ids(report.diagnostics) == {"SUP001"}

    def test_suppression_of_project_finding_counts_as_used(self):
        bad, path = RULE_FIXTURES["RNG012"][1], RULE_FIXTURES["RNG012"][0]
        suppressed = bad.replace(
            "draws.append(streams.stream('noise'))",
            "draws.append(streams.stream('noise'))  # reprolint: disable=RNG012 -- fixture",
        )
        config = LintConfig(strict=True)
        diagnostics = lint_source(suppressed, path=path, config=config)
        assert "RNG012" not in rule_ids(diagnostics)
        assert "SUP001" not in rule_ids(diagnostics), (
            "a suppression consumed by a project-tier finding is not unused"
        )
