"""Tests for the Proper Carrier-sensing Range (Lemmas 2-3, Eq. 16)."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.core.pcr import (
    PcrParameters,
    c2_constant,
    compute_pcr,
    db_to_linear,
    linear_to_db,
    zeta_series_bound,
)
from repro.errors import ConfigurationError, PcrDomainError


class TestDbConversions:
    def test_round_trip(self):
        assert linear_to_db(db_to_linear(8.0)) == pytest.approx(8.0)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_invalid_linear(self):
        with pytest.raises(ConfigurationError):
            linear_to_db(0.0)


class TestZetaBounds:
    def test_paper_bound_at_alpha_4(self):
        assert zeta_series_bound(4.0, "paper") == pytest.approx(-0.5)

    def test_safe_bound_at_alpha_4(self):
        assert zeta_series_bound(4.0, "safe") == pytest.approx(0.5)

    def test_exact_is_riemann_sum(self):
        # sum_{l >= 2} l^{-3} = zeta(3) - 1 ~ 0.2021.
        assert zeta_series_bound(4.0, "exact") == pytest.approx(0.2020569, rel=1e-5)

    def test_exact_below_safe(self):
        for alpha in (2.5, 3.0, 3.5, 4.0, 5.0):
            assert zeta_series_bound(alpha, "exact") < zeta_series_bound(alpha, "safe")

    def test_invalid_variant(self):
        with pytest.raises(ConfigurationError):
            zeta_series_bound(4.0, "bogus")

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            zeta_series_bound(2.0)


class TestC2:
    def test_alpha_3_paper(self):
        # 1/(3-2) - 1 = 0, so c2 = 6 exactly.
        assert c2_constant(3.0, "paper") == pytest.approx(6.0)

    def test_alpha_4_paper(self):
        expected = 6.0 + 6.0 * (math.sqrt(3) / 2) ** (-4.0) * (-0.5)
        assert c2_constant(4.0, "paper") == pytest.approx(expected)

    def test_paper_domain_error(self):
        with pytest.raises(PcrDomainError):
            c2_constant(4.5, "paper")

    def test_safe_always_positive(self):
        for alpha in (2.1, 3.0, 4.0, 5.0, 8.0):
            assert c2_constant(alpha, "safe") > 0

    def test_exact_always_positive(self):
        for alpha in (2.1, 3.0, 4.0, 5.0, 8.0):
            assert c2_constant(alpha, "exact") > 0


class TestComputePcr:
    def test_fig4_default_regression(self):
        result = compute_pcr(PcrParameters())
        assert result.kappa == pytest.approx(3.128, abs=0.001)
        assert result.pcr == pytest.approx(31.28, abs=0.01)
        assert result.binding_constraint == "primary"

    def test_fig6_default_regression(self):
        result = compute_pcr(
            PcrParameters(pu_radius=10.0, eta_p_db=8.0, eta_s_db=8.0)
        )
        assert result.kappa == pytest.approx(2.432, abs=0.001)

    def test_equal_radii_and_thresholds_tie(self):
        result = compute_pcr(
            PcrParameters(pu_radius=10.0, su_radius=10.0)
        )
        assert result.primary_term == pytest.approx(result.secondary_term)

    def test_alpha_3_larger_than_alpha_4(self):
        # Fig. 4's observation: smaller path-loss exponent -> larger PCR.
        pcr3 = compute_pcr(PcrParameters(alpha=3.0)).pcr
        pcr4 = compute_pcr(PcrParameters(alpha=4.0)).pcr
        assert pcr3 > pcr4

    def test_nondecreasing_in_pu_power_above_su_power(self):
        base = PcrParameters()
        values = [
            compute_pcr(replace(base, pu_power=p)).pcr for p in (10, 15, 20, 30)
        ]
        assert values == sorted(values)

    def test_nondecreasing_in_su_power_above_pu_power(self):
        base = PcrParameters()
        values = [
            compute_pcr(replace(base, su_power=p)).pcr for p in (10, 15, 20, 30)
        ]
        assert values == sorted(values)

    def test_increasing_in_thresholds(self):
        base = PcrParameters()
        primary_terms = [
            compute_pcr(replace(base, eta_p_db=v)).primary_term for v in (4, 8, 12)
        ]
        assert primary_terms == sorted(primary_terms)
        assert primary_terms[0] < primary_terms[-1]
        secondary_terms = [
            compute_pcr(replace(base, eta_s_db=v)).secondary_term for v in (4, 8, 12)
        ]
        assert secondary_terms == sorted(secondary_terms)
        assert secondary_terms[0] < secondary_terms[-1]
        # The PCR itself (the max of the two terms) is non-decreasing.
        pcrs = [compute_pcr(replace(base, eta_p_db=v)).pcr for v in (4, 8, 12)]
        assert pcrs == sorted(pcrs)

    def test_kappa_at_least_one(self):
        result = compute_pcr(PcrParameters(eta_p_db=-20.0, eta_s_db=-20.0))
        assert result.kappa >= 1.0

    def test_exact_bound_smaller_than_safe(self):
        exact = compute_pcr(PcrParameters(zeta_bound="exact")).pcr
        safe = compute_pcr(PcrParameters(zeta_bound="safe")).pcr
        assert exact < safe

    def test_c1_c3_definition(self):
        result = compute_pcr(PcrParameters(pu_power=20.0, su_power=10.0))
        assert result.c1 == pytest.approx(1.0)
        assert result.c3 == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PcrParameters(alpha=2.0)
        with pytest.raises(ConfigurationError):
            PcrParameters(pu_power=-1.0)
        with pytest.raises(ConfigurationError):
            PcrParameters(zeta_bound="nope")
