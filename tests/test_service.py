"""Tests for repro.service: the fault-tolerant experiment daemon.

The acceptance contract, layer by layer:

* **protocol** — every response is schema-stamped ``service/v1``;
  malformed traffic raises :class:`ProtocolError`, never crashes;
* **queue** — a full queue *answers* (typed ``retry_after`` with
  exponential backoff), it never blocks; duplicates attach; recovery
  bypasses capacity;
* **cache** — an identical request is served from disk with zero engine
  compute and a durable provenance record;
* **fingerprints** — the cache key is invariant to spelling (dict
  insertion order) and to run *options* (workers, retry policy), and
  moves for every semantic config change;
* **daemon** — submit/run/result lifecycle, quarantine of poisoned
  jobs, and kill/restart recovery that finishes the backlog with
  byte-identical artifacts and RNG stream positions.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.obs as obs
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ServiceError,
)
from repro.harness import RetryPolicy, load_checkpoint
from repro.harness.sweep import sweep_fingerprint
from repro.obs.manifest import build_manifest
from repro.obs.report import render_report
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.daemon import ExperimentService
from repro.service.jobs import (
    JobSpec,
    run_job,
    save_job_artifact,
)
from repro.service.queue import JobQueue
from repro.service.state import STATE_SCHEMA, ServiceState


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


TINY = {"area": 900.0, "num_pus": 4, "num_sus": 20, "max_slots": 200_000}


def tiny_spec(**kwargs) -> JobSpec:
    base = dict(
        kind="compare", seed=20120612, repetitions=1, overrides=dict(TINY)
    )
    base.update(kwargs)
    return JobSpec(**base)


# --------------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------------- #


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = protocol.accepted("abc", 1, 1)
        line = protocol.encode_message(message)
        assert line.endswith(b"\n")
        assert protocol.decode_message(line) == message

    def test_every_response_is_schema_stamped(self):
        responses = [
            protocol.accepted("f", 1, 1),
            protocol.cache_hit("f", {}, {}),
            protocol.retry_after(1.0, 4, 4),
            protocol.progress_event("f", 1, 2),
            protocol.heartbeat(0, 1, 2),
            protocol.completed("f", "complete", {}),
            protocol.failed("f", {}),
            protocol.pending("f", 1, running=False),
            protocol.status_report({"queue_depth": 0}),
            protocol.pong(),
            protocol.draining(),
            protocol.error_response(ServiceError("x")),
        ]
        for response in responses:
            assert response["schema"] == "service/v1"
            assert isinstance(response["type"], str)

    def test_encode_rejects_unserializable(self):
        with pytest.raises(ProtocolError):
            protocol.encode_message({"type": "x", "bad": object()})

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"not json")
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"[1, 2]")
        with pytest.raises(ProtocolError):
            protocol.decode_message(b'{"no_type": 1}')
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"\xff\xfe")

    def test_parse_request_validates_shape(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"type": "frobnicate"})
        with pytest.raises(ProtocolError):
            protocol.parse_request({"type": "submit"})
        with pytest.raises(ProtocolError):
            protocol.parse_request({"type": "result"})
        assert protocol.parse_request({"type": "ping"})["type"] == "ping"

    def test_error_response_carries_structured_record(self):
        response = protocol.error_response(ServiceError("boom"))
        assert response["error"]["code"] == "service"
        assert "boom" in response["error"]["message"]


# --------------------------------------------------------------------------- #
# job specs and fingerprints (the cache key)
# --------------------------------------------------------------------------- #


class TestJobSpec:
    def test_wire_round_trip(self):
        spec = tiny_spec()
        rebuilt = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_unknown_field_rejected(self):
        record = tiny_spec().to_dict()
        record["workers"] = 8
        with pytest.raises(ServiceError, match="unknown fields"):
            JobSpec.from_dict(record)

    def test_kind_and_shape_validation(self):
        with pytest.raises(ServiceError):
            JobSpec(kind="nope")
        with pytest.raises(ServiceError):
            JobSpec(kind="fig6")  # needs a subfigure
        with pytest.raises(ServiceError):
            JobSpec(kind="compare", subfigure="c")
        with pytest.raises(ServiceError):
            JobSpec(kind="compare", chaos={"intensity": 0.5})
        with pytest.raises(ServiceError):
            JobSpec(kind="chaos", scale="galactic")

    def test_fig6_fingerprint_matches_cli_journal_fingerprint(self):
        spec = JobSpec(
            kind="fig6", subfigure="c", repetitions=1, overrides=dict(TINY)
        )
        config = spec.config()
        points = spec.points()
        expected = sweep_fingerprint(
            "fig6c", points, [config.repetitions] * len(points)
        )
        assert spec.fingerprint() == expected

    def test_fingerprint_ignores_override_spelling_order(self):
        forward = tiny_spec(overrides=dict(TINY))
        backward = tiny_spec(
            overrides=list(reversed(list(TINY.items())))
        )
        assert forward == backward
        assert forward.fingerprint() == backward.fingerprint()

    def test_fingerprint_moves_for_every_semantic_field(self):
        base = tiny_spec()
        variants = [
            tiny_spec(seed=7),
            tiny_spec(repetitions=2),
            tiny_spec(p_t=0.25),
            tiny_spec(blocking="geometric"),
            tiny_spec(overrides={**TINY, "num_sus": 21}),
            JobSpec(
                kind="chaos",
                seed=20120612,
                repetitions=1,
                overrides=dict(TINY),
            ),
        ]
        fingerprints = {spec.fingerprint() for spec in [base] + variants}
        assert len(fingerprints) == len(variants) + 1

    def test_chaos_fingerprint_covers_fault_options(self):
        quiet = JobSpec(kind="chaos", repetitions=1, overrides=dict(TINY))
        stormy = JobSpec(
            kind="chaos",
            repetitions=1,
            overrides=dict(TINY),
            chaos={"intensity": 0.9},
        )
        assert quiet.fingerprint() != stormy.fingerprint()


SPEC_FIELD_ORDERS = st.permutations(
    ["kind", "scale", "seed", "blocking", "repetitions", "p_t",
     "subfigure", "values", "overrides", "chaos"]
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    order=SPEC_FIELD_ORDERS,
    seed=st.integers(0, 2**31 - 1),
    repetitions=st.integers(1, 4),
    p_t=st.sampled_from([None, 0.1, 0.25, 0.4]),
)
def test_fingerprint_invariant_to_dict_insertion_order(
    order, seed, repetitions, p_t
):
    """Property (cache-key stability): a spec's fingerprint depends on
    what the job *means*, never on how the submit request spelled it."""
    spec = tiny_spec(seed=seed, repetitions=repetitions, p_t=p_t)
    record = spec.to_dict()
    shuffled = {key: record[key] for key in order}
    shuffled["overrides"] = dict(
        reversed(list(shuffled["overrides"].items()))
    )
    rebuilt = JobSpec.from_dict(shuffled)
    assert rebuilt == spec
    assert rebuilt.fingerprint() == spec.fingerprint()


def test_fingerprint_invariant_to_workers_and_policy(tmp_path):
    """The cache key covers the experiment, not how it is executed: the
    same spec run serial/parallel, with/without retry policy, lands on
    the same fingerprint and byte-identical artifacts."""
    spec = tiny_spec()
    runs = [
        run_job(spec),
        run_job(spec, workers=2),
        run_job(spec, policy=RetryPolicy(max_attempts=5)),
    ]
    artifacts = []
    for index, job in enumerate(runs):
        target = tmp_path / f"run-{index}.json"
        save_job_artifact(job, target)
        artifacts.append(target.read_bytes())
    assert artifacts[0] == artifacts[1] == artifacts[2]
    assert len({spec.fingerprint()}) == 1  # options never entered the key


# --------------------------------------------------------------------------- #
# queue: typed backpressure, never blocking
# --------------------------------------------------------------------------- #


class TestJobQueue:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            JobQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            JobQueue(backoff_factor=0.5)

    def test_full_queue_sheds_with_exponential_backoff(self):
        queue = JobQueue(capacity=1, backoff_base_s=1.0, backoff_max_s=3.0)
        assert queue.offer(tiny_spec(), "a").decision == "queued"
        sheds = [
            queue.offer(tiny_spec(seed=i), f"s{i}") for i in range(4)
        ]
        assert [s.decision for s in sheds] == ["shed"] * 4
        # 1, 2, 4 -> capped at 3, then stays capped.
        assert [s.retry_after_s for s in sheds] == [1.0, 2.0, 3.0, 3.0]

    def test_backoff_resets_after_admission(self):
        queue = JobQueue(capacity=1, backoff_base_s=1.0)
        queue.offer(tiny_spec(), "a")
        assert queue.offer(tiny_spec(seed=1), "b").retry_after_s == 1.0
        entry = queue.take(timeout_s=0)
        queue.offer(tiny_spec(seed=2), "c")  # slot freed by take
        queue.mark_done(entry)
        assert queue.offer(tiny_spec(seed=3), "d").retry_after_s == 1.0

    def test_offer_never_blocks_even_when_full(self):
        queue = JobQueue(capacity=1)
        queue.offer(tiny_spec(), "a")
        finished = threading.Event()

        def slam():
            for i in range(50):
                queue.offer(tiny_spec(seed=i + 1), f"x{i}")
            finished.set()

        thread = threading.Thread(target=slam)
        thread.start()
        thread.join(timeout=5.0)
        assert finished.is_set(), "offer() blocked on a full queue"

    def test_duplicates_attach_to_queued_and_running(self):
        queue = JobQueue(capacity=2)
        queue.offer(tiny_spec(), "a")
        again = queue.offer(tiny_spec(), "a")
        assert again.decision == "duplicate"
        assert again.position == 1
        entry = queue.take(timeout_s=0)
        running = queue.offer(tiny_spec(), "a")
        assert running.decision == "duplicate"
        assert running.position == 0  # 0 = currently running
        queue.mark_done(entry)

    def test_closed_queue_sheds(self):
        queue = JobQueue(capacity=4)
        queue.close()
        assert queue.offer(tiny_spec(), "a").decision == "shed"

    def test_restore_bypasses_capacity_but_not_dedup(self):
        queue = JobQueue(capacity=1)
        queue.offer(tiny_spec(), "a")
        assert queue.restore(tiny_spec(seed=1), "b") is not None
        assert queue.restore(tiny_spec(seed=2), "c") is not None
        assert queue.depth == 3  # over capacity, deliberately
        assert queue.restore(tiny_spec(seed=1), "b") is None
        # New offers still shed against the configured capacity.
        assert queue.offer(tiny_spec(seed=9), "z").decision == "shed"

    def test_take_is_fifo_and_timeout_returns_none(self):
        queue = JobQueue(capacity=4)
        queue.offer(tiny_spec(), "a")
        queue.offer(tiny_spec(seed=1), "b")
        assert queue.take(timeout_s=0).fingerprint == "a"
        assert queue.take(timeout_s=0).fingerprint == "b"
        assert queue.take(timeout_s=0) is None


# --------------------------------------------------------------------------- #
# cache and state
# --------------------------------------------------------------------------- #


class TestResultCache:
    def test_miss_then_hit_with_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        fp = spec.fingerprint()
        assert cache.load_artifact(fp) is None
        cache.artifact_path(fp).write_text('{"name": "comparison"}')
        assert cache.load_artifact(fp) == {"name": "comparison"}
        record = cache.record_hit(fp, spec)
        assert record["fingerprint"] == fp
        assert record["job"] == spec.to_dict()
        trail = cache.hit_records()
        assert len(trail) == 1
        assert trail[0]["kind"] == "cache_hit"

    def test_corrupt_entry_is_refused_not_served(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.artifact_path("f").write_text("{ torn")
        with pytest.raises(ServiceError, match="unreadable"):
            cache.load_artifact("f")

    def test_torn_log_tail_is_repaired_on_open(self, tmp_path):
        from repro.chaos import tear_ndjson_tail
        from repro.obs.recorder import MetricsRecorder

        cache = ResultCache(tmp_path / "cache")
        cache.record_hit("a" * 8, tiny_spec())
        cache.record_hit("b" * 8, tiny_spec(seed=1))
        # A SIGKILL lands inside the final append: the last line tears.
        tear_ndjson_tail(cache.log_path)
        recorder = MetricsRecorder()
        obs.set_recorder(recorder)
        reopened = ResultCache(tmp_path / "cache")
        assert recorder.counters["service.cache.torn_tail"] == 1
        trail = reopened.hit_records()
        assert [record["fingerprint"] for record in trail] == ["a" * 8]
        # The repaired log keeps accepting appends on a clean boundary.
        reopened.record_hit("c" * 8, tiny_spec(seed=2))
        assert [
            record["fingerprint"] for record in reopened.hit_records()
        ] == ["a" * 8, "c" * 8]

    def test_interior_log_corruption_raises_not_repairs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.record_hit("a" * 8, tiny_spec())
        cache.record_hit("b" * 8, tiny_spec(seed=1))
        lines = cache.log_path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # mangle an interior record
        cache.log_path.write_text("\n".join(lines) + "\n")
        # Only the *final* line can tear in a crash; damage anywhere else
        # means tampering, and the cache must refuse to open over it.
        with pytest.raises(ServiceError, match="corrupt at record 1"):
            ResultCache(tmp_path / "cache")

    def test_clean_log_open_counts_nothing(self, tmp_path):
        from repro.obs.recorder import MetricsRecorder

        cache = ResultCache(tmp_path / "cache")
        cache.record_hit("a" * 8, tiny_spec())
        recorder = MetricsRecorder()
        obs.set_recorder(recorder)
        reopened = ResultCache(tmp_path / "cache")
        assert "service.cache.torn_tail" not in recorder.counters
        assert len(reopened.hit_records()) == 1


# --------------------------------------------------------------------------- #
# client heartbeat deadline (injected clock, no daemon required)
# --------------------------------------------------------------------------- #


class _ScriptedSocket:
    """A socket stub: ``None`` entries raise timeout, bytes arrive as-is."""

    def __init__(self, script):
        self.script = list(script)

    def recv(self, _size):
        import socket as socket_module

        item = self.script.pop(0)
        if item is None:
            raise socket_module.timeout()
        return item


class _SteppingClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step_s):
        self.now_s = 0.0
        self.step_s = step_s

    def __call__(self):
        self.now_s += self.step_s
        return self.now_s


class TestClientHeartbeat:
    def _client(self, tmp_path, **kwargs):
        from repro.service.client import ServiceClient

        return ServiceClient(tmp_path / "service.sock", **kwargs)

    def test_deadline_must_be_positive(self, tmp_path):
        with pytest.raises(ServiceError, match="heartbeat_deadline_s"):
            self._client(tmp_path, heartbeat_deadline_s=0.0)

    def test_silence_past_the_deadline_raises_typed_error(self, tmp_path):
        from repro.errors import ServiceUnavailableError

        client = self._client(
            tmp_path,
            timeout_s=1.0,
            heartbeat_deadline_s=1.0,
            clock=_SteppingClock(0.4),
        )
        sock = _ScriptedSocket([None] * 10)
        with pytest.raises(ServiceUnavailableError, match="heartbeat"):
            client._read_frame(sock, b"")

    def test_arriving_bytes_reset_the_silence_clock(self, tmp_path):
        client = self._client(
            tmp_path,
            timeout_s=1.0,
            heartbeat_deadline_s=1.0,
            clock=_SteppingClock(0.4),
        )
        # Quiet intervals interleave with progress bytes; no single gap
        # reaches the deadline, so the slow-but-alive daemon is trusted.
        sock = _ScriptedSocket([None, b"xy", None, None, b"z\n", b"junk"])
        line, rest = client._read_frame(sock, b"")
        assert line == b"xyz"
        assert rest == b""

    def test_without_deadline_the_plain_timeout_path_rules(self, tmp_path):
        client = self._client(tmp_path, timeout_s=0.1)
        sock = _ScriptedSocket([None])
        with pytest.raises(ServiceError, match="timed out"):
            client._read_frame(sock, b"")


class TestServiceState:
    def test_persist_load_round_trip(self, tmp_path):
        state = ServiceState(tmp_path / "state")
        spec = tiny_spec()
        state.persist_job(spec, "fp1", 3)
        record = state.load_job("fp1")
        assert record["schema"] == "service-job/v1"
        assert record["seq"] == 3
        assert JobSpec.from_dict(record["job"]) == spec

    def test_recover_orders_by_seq_and_skips_done_and_failed(self, tmp_path):
        state = ServiceState(tmp_path / "state")
        state.persist_job(tiny_spec(seed=1), "bbb", 2)
        state.persist_job(tiny_spec(seed=2), "aaa", 1)
        state.persist_job(tiny_spec(seed=3), "ccc", 3)
        state.persist_job(tiny_spec(seed=4), "ddd", 4)
        # ccc finished (artifact exists); ddd is quarantined.
        (state.cache_dir / "ccc.json").write_text("{}")
        state.mark_job_failed("ddd", {"code": "engine", "message": "boom"})
        recovered = state.recover()
        assert [job.fingerprint for job in recovered] == ["aaa", "bbb"]
        assert all(not job.resume for job in recovered)

    def test_recover_flags_resume_when_journal_exists(self, tmp_path):
        state = ServiceState(tmp_path / "state")
        state.persist_job(tiny_spec(), "fp1", 1)
        state.journal_path("fp1").write_text("")
        (job,) = state.recover()
        assert job.resume

    def test_snapshot_round_trip_and_schema_gate(self, tmp_path):
        state = ServiceState(tmp_path / "state")
        assert state.load_snapshot() is None
        state.write_snapshot(["a"], "b", {"jobs_completed": 2})
        payload = state.load_snapshot()
        assert payload["schema"] == STATE_SCHEMA
        assert payload["queued"] == ["a"]
        assert payload["inflight"] == "b"
        assert payload["counters"]["jobs_completed"] == 2
        state.snapshot_path.write_text('{"schema": "service-state/v9"}')
        with pytest.raises(ServiceError, match="schema"):
            state.load_snapshot()


# --------------------------------------------------------------------------- #
# daemon lifecycle (transport-free)
# --------------------------------------------------------------------------- #


class TestExperimentService:
    def test_submit_run_result_then_cache_hit(self, tmp_path, monkeypatch):
        service = ExperimentService(tmp_path / "state", queue_capacity=2)
        spec = tiny_spec()
        fp = spec.fingerprint()

        first = service.submit(spec.to_dict())
        assert first["type"] == "accepted"
        assert first["fingerprint"] == fp
        # The accepted job was durably persisted before the answer.
        assert service.state.load_job(fp)["fingerprint"] == fp

        pending = service.result(fp)
        assert pending["type"] == "pending"

        assert service.run_next_job(timeout_s=0) == fp
        done = service.result(fp)
        assert done["type"] == "completed"
        assert done["status"] == "complete"
        assert done["artifact"]["name"] == "comparison"

        # An identical resubmission must not touch the engine at all.
        def forbidden(*args, **kwargs):
            raise AssertionError("cache hit reached the execution layer")

        monkeypatch.setattr(
            "repro.service.daemon.execute_job", forbidden
        )
        hit = service.submit(spec.to_dict())
        assert hit["type"] == "cache_hit"
        assert hit["artifact"] == done["artifact"]
        assert hit["provenance"]["fingerprint"] == fp
        counters = service.counters()
        assert counters["jobs_admitted"] == 1
        assert counters["cache_hits"] == 1
        assert service.cache.hit_records()[0]["fingerprint"] == fp

    def test_full_queue_answers_retry_after(self, tmp_path):
        service = ExperimentService(tmp_path / "state", queue_capacity=1)
        assert service.submit(tiny_spec().to_dict())["type"] == "accepted"
        shed = service.submit(tiny_spec(seed=3).to_dict())
        assert shed["type"] == "retry_after"
        assert shed["retry_after_s"] > 0
        assert shed["capacity"] == 1
        assert service.counters()["jobs_shed"] == 1
        # A shed job was never persisted: nothing to recover later.
        assert (
            service.state.load_job(tiny_spec(seed=3).fingerprint()) is None
        )

    def test_malformed_spec_answers_error(self, tmp_path):
        service = ExperimentService(tmp_path / "state")
        response = service.submit({"kind": "frobnicate"})
        assert response["type"] == "error"
        assert response["error"]["code"] == "service"

    def test_poisoned_job_is_quarantined_not_fatal(
        self, tmp_path, monkeypatch
    ):
        service = ExperimentService(tmp_path / "state")
        spec = tiny_spec()
        fp = spec.fingerprint()
        service.submit(spec.to_dict())

        def poisoned(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.service.daemon.execute_job", poisoned)
        assert service.run_next_job(timeout_s=0) == fp  # did not raise
        failed = service.result(fp)
        assert failed["type"] == "failed"
        assert "engine exploded" in failed["error"]["message"]
        assert service.counters()["jobs_failed"] == 1
        # Quarantine is durable and recovery leaves it alone.
        assert service.state.load_job(fp)["status"] == "failed"
        revived = ExperimentService(tmp_path / "state")
        assert revived.recovered_jobs == 0
        assert revived.result(fp)["type"] == "failed"

    def test_unknown_fingerprint_answers_error(self, tmp_path):
        service = ExperimentService(tmp_path / "state")
        assert service.result("no-such-job")["type"] == "error"

    def test_daemon_owns_one_warm_pool_for_its_lifetime(self, tmp_path):
        # Serial daemons never pay for a pool; parallel daemons keep one
        # lazy warm pool that drain() closes with the queue.
        serial = ExperimentService(tmp_path / "serial")
        assert serial.pool is None
        serial.drain()

        service = ExperimentService(tmp_path / "state", workers=2)
        assert service.pool is not None
        assert not service.pool.alive  # lazy: spawns on first parallel job
        service.drain()
        with pytest.raises(RuntimeError):
            service.pool.submit(print)

    def test_subscribers_get_progress_and_completed(self, tmp_path):
        service = ExperimentService(tmp_path / "state")
        spec = tiny_spec(repetitions=2)
        fp = spec.fingerprint()
        events = []
        service.submit(spec.to_dict())
        service.subscribe(fp, events.append)
        service.run_next_job(timeout_s=0)
        kinds = [event["type"] for event in events]
        assert kinds == ["progress", "progress", "completed"]
        assert [e["done"] for e in events[:-1]] == [1, 2]
        assert events[-1]["status"] == "complete"

    def test_dead_subscriber_never_kills_a_job(self, tmp_path):
        service = ExperimentService(tmp_path / "state")
        spec = tiny_spec()
        service.submit(spec.to_dict())
        service.subscribe(
            spec.fingerprint(),
            lambda event: (_ for _ in ()).throw(OSError("gone")),
        )
        assert service.run_next_job(timeout_s=0) == spec.fingerprint()
        assert service.counters()["jobs_completed"] == 1

    def test_drain_writes_snapshot_and_manifest(self, tmp_path):
        service = ExperimentService(tmp_path / "state", queue_capacity=2)
        spec = tiny_spec()
        service.submit(spec.to_dict())
        service.run_next_job(timeout_s=0)
        summary = service.drain()
        assert summary["queued"] == []
        assert summary["counters"]["jobs_completed"] == 1
        snapshot = service.state.load_snapshot()
        assert snapshot["schema"] == STATE_SCHEMA
        manifest_path = tmp_path / "state" / "service-state.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["extra"]["service"]["jobs_completed"] == 1
        # Admissions are closed after drain: submissions shed.
        assert service.submit(tiny_spec(seed=5).to_dict())["type"] == (
            "retry_after"
        )

    def test_stats_exposes_live_telemetry(self, tmp_path):
        """The ``stats`` payload: summary, quarantine, per-phase timings —
        all from in-memory state, no drain required."""
        service = ExperimentService(tmp_path / "state", queue_capacity=4)
        with obs.use_recorder(obs.MetricsRecorder()):
            spec = tiny_spec()
            service.submit(spec.to_dict())
            service.run_next_job(timeout_s=0)
            assert service.submit(spec.to_dict())["type"] == "cache_hit"
            stats = service.stats()
            phases = stats["phases"]
        summary = stats["service"]
        assert summary["queue_depth"] == 0
        assert summary["inflight"] == 0
        assert summary["capacity"] == 4
        assert summary["jobs_completed"] == 1
        assert summary["cache_misses"] == 1
        assert summary["cache_hits"] == 1
        assert stats["quarantined"] == 0
        # The daemon recorder saw the job's span profile merged back in.
        assert "service.job" in phases
        assert "engine.slot" in phases
        assert any(name.startswith("engine.phase.") for name in phases)
        assert json.loads(json.dumps(stats)) == stats

    def test_heartbeat_carries_queue_and_cache_counters(self, tmp_path):
        service = ExperimentService(tmp_path / "state", queue_capacity=4)
        spec = tiny_spec()
        service.submit(spec.to_dict())
        service.run_next_job(timeout_s=0)
        service.submit(spec.to_dict())  # served from cache
        beat = service.heartbeat()
        assert beat["type"] == "heartbeat"
        assert beat["queue_depth"] == 0
        assert beat["jobs_completed"] == 1
        assert beat["cache_hits"] == 1
        assert beat["cache_misses"] == 1

    def test_drained_manifest_renders_a_service_section(self, tmp_path):
        """The manifest drain() writes next to the snapshot feeds
        ``obs report`` a SERVICE section with the real counters."""
        service = ExperimentService(tmp_path / "state", queue_capacity=2)
        spec = tiny_spec()
        service.submit(spec.to_dict())
        service.run_next_job(timeout_s=0)
        service.submit(spec.to_dict())  # cache hit
        service.drain()
        manifest_path = tmp_path / "state" / "service-state.manifest.json"
        manifest = obs.load_manifest(manifest_path)
        text = render_report(manifest)
        assert "SERVICE" in text
        section = text[text.index("SERVICE"):]
        assert "jobs_completed: 1" in section
        assert "cache_hits:     1" in section
        assert "cache_misses:   1" in section
        assert "queue_depth:    0" in section


# --------------------------------------------------------------------------- #
# crash recovery: the byte-identity contract
# --------------------------------------------------------------------------- #


class TestCrashRecovery:
    def _reference_bytes(self, tmp_path, spec):
        target = tmp_path / "reference.json"
        save_job_artifact(run_job(spec), target)
        return target.read_bytes()

    def test_restart_finishes_persisted_backlog_byte_identically(
        self, tmp_path
    ):
        spec_a = tiny_spec(repetitions=2)
        spec_b = tiny_spec(seed=7)
        reference_a = self._reference_bytes(tmp_path, spec_a)

        state_dir = tmp_path / "state"
        first = ExperimentService(state_dir, queue_capacity=1)
        assert first.submit(spec_a.to_dict())["type"] == "accepted"
        entry = first.queue.take(timeout_s=0)  # A goes in-flight
        assert first.submit(spec_b.to_dict())["type"] == "accepted"
        del first, entry  # SIGKILL: nothing ran, nothing was drained

        # Even with capacity 1, BOTH persisted jobs must come back —
        # recovery bypasses admission control (they were admitted once).
        revived = ExperimentService(state_dir, queue_capacity=1)
        assert revived.recovered_jobs == 2
        assert revived.counters()["jobs_recovered"] == 2
        assert revived.run_next_job(timeout_s=0) == spec_a.fingerprint()
        assert revived.run_next_job(timeout_s=0) == spec_b.fingerprint()
        artifact = revived.cache.artifact_path(spec_a.fingerprint())
        assert artifact.read_bytes() == reference_a

    def test_torn_journal_resumes_byte_identically(self, tmp_path):
        """Kill mid-journal-record: the torn tail is discarded, the
        durable prefix is replayed (not recomputed), and the finished
        artifact — RNG positions included — is byte-identical."""
        spec = tiny_spec(repetitions=3)
        fp = spec.fingerprint()
        reference = self._reference_bytes(tmp_path, spec)

        state_dir = tmp_path / "state"
        first = ExperimentService(state_dir)
        first.submit(spec.to_dict())
        first.run_next_job(timeout_s=0)
        journal = first.state.journal_path(fp)
        completed_positions = {
            key: entry.measurement.rng_positions
            for key, entry in load_checkpoint(journal).entries.items()
        }
        # Tear the last record mid-line and erase the artifact: the
        # on-disk picture of a SIGKILL during the final repetition.
        torn = journal.read_bytes()[:-20]
        journal.write_bytes(torn)
        first.cache.artifact_path(fp).unlink()
        del first

        revived = ExperimentService(state_dir)
        assert revived.recovered_jobs == 1
        assert revived.run_next_job(timeout_s=0) == fp
        assert revived.counters()["jobs_resumed"] == 1
        assert revived.cache.artifact_path(fp).read_bytes() == reference
        resumed_positions = {
            key: entry.measurement.rng_positions
            for key, entry in load_checkpoint(journal).entries.items()
        }
        assert resumed_positions == completed_positions


# --------------------------------------------------------------------------- #
# socket transport end to end (in-process daemon, real AF_UNIX socket)
# --------------------------------------------------------------------------- #


class TestServerTransport:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceServer

        service = ExperimentService(tmp_path / "state", queue_capacity=2)
        server = ServiceServer(
            service,
            tmp_path / "service.sock",
            heartbeat_s=0.2,
            poll_s=0.05,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(tmp_path / "service.sock", timeout_s=120.0)
        for _ in range(200):
            try:
                client.ping()
                break
            except ServiceError:
                obs.clock.sleep_s(0.01)
        else:
            pytest.fail("server never came up")
        yield server, client
        server.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_ping_status_and_protocol_error(self, server, tmp_path):
        import socket as socket_module

        _server, client = server
        assert client.ping()["type"] == "pong"
        status = client.status()
        assert status["type"] == "status_report"
        assert status["capacity"] == 2
        # Malformed traffic gets a typed error; the daemon keeps serving.
        raw = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        raw.settimeout(30.0)
        raw.connect(str(tmp_path / "service.sock"))
        raw.sendall(b"this is not json\n")
        response = json.loads(raw.makefile().readline())
        raw.close()
        assert response["type"] == "error"
        assert client.ping()["type"] == "pong"

    def test_stats_verb_answers_live(self, server):
        _server, client = server
        stats = client.stats()
        assert stats["type"] == "stats_report"
        assert stats["schema"] == protocol.SERVICE_SCHEMA
        assert stats["service"]["capacity"] == 2
        assert stats["quarantined"] == 0
        assert isinstance(stats["phases"], dict)
        spec = tiny_spec(seed=31)
        final = client.submit(spec, stream=True)
        assert final["type"] == "completed"
        after = client.stats()
        assert after["service"]["jobs_completed"] == 1
        assert after["service"]["cache_misses"] == 1

    def test_streamed_submit_and_cached_resubmit(self, server):
        _server, client = server
        spec = tiny_spec(repetitions=2)
        events = []
        final = client.submit(spec, stream=True, on_event=events.append)
        assert final["type"] == "completed"
        assert final["status"] == "complete"
        kinds = [event["type"] for event in events]
        assert kinds[0] == "accepted"
        assert "progress" in kinds
        again = client.submit(spec)
        assert again["type"] == "cache_hit"
        assert (
            client.wait_for_result(spec.fingerprint())["type"] == "completed"
        )

    def test_shutdown_request_drains_and_snapshots(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceServer

        service = ExperimentService(tmp_path / "state")
        server = ServiceServer(
            service, tmp_path / "s.sock", heartbeat_s=0.2, poll_s=0.05
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(tmp_path / "s.sock", timeout_s=120.0)
        for _ in range(200):
            try:
                client.ping()
                break
            except ServiceError:
                obs.clock.sleep_s(0.01)
        spec = tiny_spec()
        assert client.submit(spec)["type"] == "accepted"
        assert client.shutdown()["type"] == "draining"
        thread.join(timeout=60)
        assert not thread.is_alive()
        # The drain finished the backlog before exiting.
        assert service.cache.has(spec.fingerprint())
        assert service.state.load_snapshot()["schema"] == STATE_SCHEMA
        assert not (tmp_path / "s.sock").exists()


# --------------------------------------------------------------------------- #
# obs report: the SERVICE section
# --------------------------------------------------------------------------- #


def test_report_renders_service_section():
    manifest = build_manifest(
        extra={
            "service": {
                "queue_depth": 2,
                "inflight": 1,
                "capacity": 4,
                "jobs_admitted": 9,
                "jobs_shed": 3,
                "cache_hits": 5,
            }
        }
    )
    text = render_report(manifest)
    assert "SERVICE" in text
    assert "queue_depth:    2" in text
    assert "jobs_shed:      3" in text
    assert "cache_hits:     5" in text
