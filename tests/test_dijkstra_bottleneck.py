"""Tests for bottleneck (minimax) Dijkstra and the 'highest' Coolest metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.dijkstra import dijkstra_bottleneck, extract_path
from repro.graphs.graph import Graph
from repro.routing.coolest import CoolestPolicy
from repro.routing.temperature import path_highest_temperature

from tests.test_cds import random_udg


class TestBottleneckDijkstra:
    def test_prefers_cool_bottleneck_over_short_path(self):
        # 0-1-3 (middle weight 10) vs 0-2-4-3 (all middle weights 1).
        graph = Graph(5)
        for u, v in [(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]:
            graph.add_edge(u, v)
        weights = [0.0, 10.0, 1.0, 0.0, 1.0]
        bottlenecks, parents = dijkstra_bottleneck(graph, 0, weights)
        assert extract_path(parents, 3) == [0, 2, 4, 3]
        assert bottlenecks[3] == 1.0

    def test_ties_break_to_fewer_hops(self):
        # Two equal-bottleneck routes; the two-hop one must win.
        graph = Graph(5)
        for u, v in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)]:
            graph.add_edge(u, v)
        weights = [0.0, 1.0, 1.0, 1.0, 0.0]
        _, parents = dijkstra_bottleneck(graph, 0, weights)
        assert extract_path(parents, 4) == [0, 1, 4]

    def test_bottleneck_is_max_on_path(self):
        graph = random_udg(30, 77)
        rng = np.random.default_rng(7)
        weights = rng.random(30).tolist()
        bottlenecks, parents = dijkstra_bottleneck(graph, 0, weights)
        for node in range(30):
            path = extract_path(parents, node)
            assert bottlenecks[node] == pytest.approx(
                max(weights[v] for v in path)
            )

    def test_bottleneck_optimality_brute_force(self):
        # Compare against exhaustive enumeration on a small graph.
        import itertools

        graph = random_udg(9, 78)
        rng = np.random.default_rng(8)
        weights = rng.random(9).tolist()
        bottlenecks, _ = dijkstra_bottleneck(graph, 0, weights)

        def best_bottleneck(target):
            best = float("inf")
            for length in range(1, 9):
                for middle in itertools.permutations(
                    [v for v in range(1, 9) if v != target], length - 1
                ):
                    path = [0, *middle, target]
                    if all(
                        graph.has_edge(a, b) for a, b in zip(path, path[1:])
                    ):
                        best = min(best, max(weights[v] for v in path))
                if best < float("inf") and length >= 4:
                    break
            return best

        for target in range(1, 9):
            assert bottlenecks[target] <= best_bottleneck(target) + 1e-12

    def test_errors(self):
        with pytest.raises(GraphError):
            dijkstra_bottleneck(Graph(2), 5, [0.0, 0.0])
        with pytest.raises(GraphError):
            dijkstra_bottleneck(Graph(2), 0, [0.0])
        with pytest.raises(GraphError):
            dijkstra_bottleneck(Graph(2), 0, [0.0, -1.0])


class TestHighestMetricPolicy:
    def test_routes_minimize_highest_temperature(self, quick_topology):
        highest = CoolestPolicy(quick_topology, 0.3, metric="highest")
        accumulated = CoolestPolicy(quick_topology, 0.3, metric="accumulated")
        temps = highest.temperatures
        for node in list(quick_topology.secondary.su_ids())[:25]:
            hot = path_highest_temperature(highest.route(node), temps)
            acc = path_highest_temperature(accumulated.route(node), temps)
            assert hot <= acc + 1e-12

    def test_describe(self, quick_topology):
        assert "highest" in CoolestPolicy(
            quick_topology, 0.3, metric="highest"
        ).describe()
