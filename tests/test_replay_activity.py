"""Tests for the trace-replay PU activity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.primary import ReplayActivity


class TestReplayActivity:
    def trace(self):
        return np.array(
            [
                [True, False, False],
                [False, True, False],
                [False, False, True],
            ]
        )

    def test_replays_in_order(self):
        model = ReplayActivity(self.trace())
        rng = np.random.default_rng(0)
        states = model.initial_states(3, rng)
        assert states.tolist() == [True, False, False]
        states = model.next_states(states, rng)
        assert states.tolist() == [False, True, False]
        states = model.next_states(states, rng)
        assert states.tolist() == [False, False, True]

    def test_wraps_around(self):
        model = ReplayActivity(self.trace())
        rng = np.random.default_rng(0)
        states = model.initial_states(3, rng)
        for _ in range(3):
            states = model.next_states(states, rng)
        assert states.tolist() == [True, False, False]

    def test_stationary_probability_is_trace_mean(self):
        model = ReplayActivity(self.trace())
        assert model.stationary_probability == pytest.approx(1.0 / 3.0)

    def test_initial_resets_cursor(self):
        model = ReplayActivity(self.trace())
        rng = np.random.default_rng(0)
        model.initial_states(3, rng)
        model.next_states(np.zeros(3, dtype=bool), rng)
        states = model.initial_states(3, rng)
        assert states.tolist() == [True, False, False]
        states = model.next_states(states, rng)
        assert states.tolist() == [False, True, False]

    def test_count_mismatch(self):
        model = ReplayActivity(self.trace())
        with pytest.raises(ConfigurationError):
            model.initial_states(5, np.random.default_rng(0))

    def test_bad_trace_shape(self):
        with pytest.raises(ConfigurationError):
            ReplayActivity(np.array([True, False]))

    def test_drives_a_deployment(self, streams):
        """A replayed trace drives a full collection run."""
        from repro.core.collector import run_addc_collection
        from repro.experiments.config import ExperimentConfig
        from repro.network.deployment import deploy_crn

        config = ExperimentConfig(
            area=30.0 * 30.0, num_pus=6, num_sus=25, repetitions=1
        )
        rng = np.random.default_rng(11)
        trace = rng.random((500, 6)) < 0.3
        topology = deploy_crn(
            config.deployment_spec(),
            streams.spawn("replay"),
            activity=ReplayActivity(trace),
        )
        outcome = run_addc_collection(
            topology, streams.spawn("replay-run"), with_bounds=False
        )
        assert outcome.result.completed
