"""Tests for the ADDC MAC policy."""

from __future__ import annotations

import pytest

from repro.core.addc import AddcPolicy
from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.sim.packet import Packet


@pytest.fixture()
def tree(quick_topology):
    return build_collection_tree(
        quick_topology.secondary.graph, quick_topology.secondary.base_station
    )


class TestAddcPolicy:
    def test_forwards_to_tree_parent(self, tree):
        policy = AddcPolicy(tree)
        packet = Packet(packet_id=0, source=3)
        for node in range(1, tree.num_nodes):
            assert policy.next_hop(node, packet) == tree.parent[node]

    def test_base_station_never_transmits(self, tree):
        policy = AddcPolicy(tree)
        with pytest.raises(ConfigurationError):
            policy.next_hop(0, Packet(packet_id=0, source=1))

    def test_fairness_default_on(self, tree):
        assert AddcPolicy(tree).fairness_wait
        assert not AddcPolicy(tree, fairness_wait=False).fairness_wait

    def test_describe(self, tree):
        assert AddcPolicy(tree).describe() == "ADDC"
        assert "no fairness" in AddcPolicy(tree, fairness_wait=False).describe()
