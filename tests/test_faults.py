"""Tests for the fault-injection subsystem (``repro.faults``).

Covers the plan schema and generators, every fault kind's engine
semantics (crash-stop, transient outage with rejoin, stuck sensing,
link degradation, base-station blackout), deferred arrivals, the
replayability guarantees (fixed-seed identity, fault-free neutrality for
an idle leaf), and the resilience metrics over the outcomes.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.collector import run_addc_collection
from repro.core.pcr import db_to_linear
from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    chaos_plan,
    crash_plan,
    mtbf_outage_plan,
)
from repro.geometry.region import SquareRegion
from repro.graphs.tree import build_collection_tree
from repro.metrics.resilience import resilience_report
from repro.network.primary import BernoulliActivity, PrimaryNetwork
from repro.network.secondary import SecondaryNetwork
from repro.network.topology import CrnTopology
from repro.rng import StreamFactory
from repro.sim.engine import SlottedEngine
from repro.sim.packet import Packet
from repro.sim.trace import TraceKind, TraceLog
from repro.spectrum.sensing import CarrierSenseMap

SENSE_RANGE = 10.0


def one_su_topology(
    pu_position=None, pu_active: float = 1.0
) -> CrnTopology:
    """Base station at (15, 15), one SU at (12, 15), optional single PU."""
    secondary = SecondaryNetwork(
        positions=np.array([[15.0, 15.0], [12.0, 15.0]]),
        power=10.0,
        radius=10.0,
    )
    if pu_position is None:
        pu_positions = np.empty((0, 2))
        activity = BernoulliActivity(0.0)
    else:
        pu_positions = np.array([pu_position])
        activity = BernoulliActivity(pu_active)
    primary = PrimaryNetwork(
        positions=pu_positions, power=10.0, radius=10.0, activity=activity
    )
    return CrnTopology(
        region=SquareRegion(30.0), primary=primary, secondary=secondary
    )


def make_engine(topology, streams, name, **kwargs):
    """A geometric-blocking engine with an ADDC policy over ``topology``."""
    tree = build_collection_tree(
        topology.secondary.graph, topology.secondary.base_station
    )
    policy = AddcPolicy(tree, graph=topology.secondary.graph)
    kwargs.setdefault("max_slots", 5000)
    return SlottedEngine(
        topology=topology,
        sense_map=CarrierSenseMap(topology, SENSE_RANGE),
        policy=policy,
        streams=streams.spawn(name),
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Schema                                                                 #
# --------------------------------------------------------------------- #


class TestFaultEventSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="meteor", slot=1, node=2)

    def test_negative_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent.crash(-1, 2)

    def test_windowed_kinds_need_until_after_slot(self):
        with pytest.raises(ConfigurationError):
            FaultEvent.outage(10, 2, recover_slot=10)
        with pytest.raises(ConfigurationError):
            FaultEvent.stuck_busy(10, 2, until=5)

    def test_crash_takes_no_until(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="crash", slot=1, node=2, until=9)

    def test_link_degradation_validation(self):
        with pytest.raises(ConfigurationError):  # missing peer
            FaultEvent(kind="link-degradation", slot=1, node=2, until=9)
        with pytest.raises(ConfigurationError):  # self-link
            FaultEvent.link_degradation(1, 2, 2, until=9, extra_loss_db=3.0)
        with pytest.raises(ConfigurationError):  # non-positive loss
            FaultEvent.link_degradation(1, 2, 3, until=9, extra_loss_db=0.0)

    def test_bs_blackout_targets_no_node(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="bs-blackout", slot=1, node=4, until=9)
        assert FaultEvent.bs_blackout(1, until=9).node == -1

    def test_every_kind_has_a_constructor(self):
        built = {
            FaultEvent.crash(1, 2).kind,
            FaultEvent.outage(1, 2, 9).kind,
            FaultEvent.stuck_busy(1, 2, 9).kind,
            FaultEvent.stuck_idle(1, 2, 9).kind,
            FaultEvent.link_degradation(1, 2, 3, 9, 10.0).kind,
            FaultEvent.bs_blackout(1, 9).kind,
        }
        assert built == set(FAULT_KINDS)


class TestFaultPlan:
    def test_sorted_by_slot_stable_within_slot(self):
        plan = FaultPlan.from_events(
            [
                FaultEvent.crash(30, 1),
                FaultEvent.outage(10, 2, 20),
                FaultEvent.crash(10, 3),
            ]
        )
        assert [event.slot for event in plan] == [10, 10, 30]
        # Same-slot events keep authoring order (the outage came first).
        assert [event.node for event in plan][:2] == [2, 3]

    def test_merge_and_describe(self):
        left = FaultPlan.from_events([FaultEvent.crash(5, 1)])
        right = FaultPlan.from_events([FaultEvent.outage(2, 3, 40)])
        merged = left.merged_with(right)
        assert len(merged) == 2
        assert merged.counts_by_kind() == {"crash": 1, "outage": 1}
        assert "horizon slot 40" in merged.describe()
        assert FaultPlan().describe() == "FaultPlan(empty)"

    def test_validate_for_rejects_base_station_and_strangers(self):
        plan = FaultPlan.from_events([FaultEvent.crash(5, 0)])
        with pytest.raises(ConfigurationError):
            plan.validate_for(su_ids=[1, 2, 3], base_station=0)
        plan = FaultPlan.from_events([FaultEvent.crash(5, 99)])
        with pytest.raises(ConfigurationError):
            plan.validate_for(su_ids=[1, 2, 3], base_station=0)

    def test_validate_for_allows_base_station_link_peer(self):
        plan = FaultPlan.from_events(
            [FaultEvent.link_degradation(5, 2, 0, until=9, extra_loss_db=3.0)]
        )
        plan.validate_for(su_ids=[1, 2, 3], base_station=0)


# --------------------------------------------------------------------- #
# Generators                                                             #
# --------------------------------------------------------------------- #


class TestGenerators:
    def test_mtbf_plan_replayable_and_bounded(self):
        def build():
            return mtbf_outage_plan(
                range(1, 30),
                horizon_slots=1000,
                mtbf_slots=400.0,
                mttr_slots=60.0,
                streams=StreamFactory(seed=99),
            )

        first, second = build(), build()
        assert first.events == second.events
        assert len(first) > 0
        for event in first:
            assert event.kind == "outage"
            assert 1 <= event.slot < event.until <= 1000

    def test_crash_plan_count_and_distinct_targets(self):
        plan = crash_plan(
            range(1, 20), horizon_slots=500, count=5, streams=StreamFactory(7)
        )
        assert len(plan) == 5
        nodes = [event.node for event in plan]
        assert len(set(nodes)) == 5
        assert all(1 <= event.slot < 500 for event in plan)
        with pytest.raises(ConfigurationError):
            crash_plan(range(1, 4), 500, count=9, streams=StreamFactory(7))

    def test_chaos_plan_scales_with_intensity(self):
        empty = chaos_plan(
            range(1, 40), 1000, intensity=0.0, streams=StreamFactory(3)
        )
        assert len(empty) == 0
        mixed = chaos_plan(
            range(1, 40),
            1000,
            intensity=0.5,
            streams=StreamFactory(3),
            sensing_fault_fraction=0.25,
            blackout=True,
        )
        counts = mixed.counts_by_kind()
        assert counts["outage"] == 20
        assert counts.get("stuck-busy", 0) + counts.get("stuck-idle", 0) == 5
        assert counts["bs-blackout"] == 1
        with pytest.raises(ConfigurationError):
            chaos_plan(range(1, 40), 1000, intensity=-0.1, streams=StreamFactory(3))

    def test_chaos_plan_replayable(self):
        plans = [
            chaos_plan(range(1, 40), 1000, 0.3, StreamFactory(11))
            for _ in range(2)
        ]
        assert plans[0].events == plans[1].events


# --------------------------------------------------------------------- #
# Engine semantics, kind by kind                                         #
# --------------------------------------------------------------------- #


class TestCrashFaults:
    def test_scripted_crash_equals_departure_schedule(
        self, quick_topology, streams
    ):
        """``departure_schedule`` and crash events share one code path."""
        plan = FaultPlan.from_events(
            [
                FaultEvent.crash(50, 5),
                FaultEvent.crash(300, 9),
                FaultEvent.crash(300, 14),
            ]
        )
        via_plan = run_addc_collection(
            quick_topology,
            streams.spawn("crash-eq"),
            blocking="homogeneous",
            fault_plan=plan,
            with_bounds=False,
        ).result
        via_schedule = run_addc_collection(
            quick_topology,
            streams.spawn("crash-eq"),
            blocking="homogeneous",
            departure_schedule={50: [5], 300: [9, 14]},
            with_bounds=False,
        ).result
        assert asdict(via_plan) == asdict(via_schedule)
        assert via_plan.completed
        assert via_plan.fault_event_count >= 1

    def test_crash_record_stays_open(self, quick_topology, streams):
        result = run_addc_collection(
            quick_topology,
            streams.spawn("crash-rec"),
            blocking="homogeneous",
            fault_plan=FaultPlan.from_events([FaultEvent.crash(10, 7)]),
            with_bounds=False,
        ).result
        (record,) = [r for r in result.fault_records if r.node == 7]
        assert record.kind == "crash"
        assert record.recovered_slot is None
        assert record.repair_slots is None
        assert result.nodes_departed >= 1
        assert result.nodes_recovered == 0


class TestTransientOutages:
    @pytest.fixture(scope="class")
    def relay(self, quick_topology, streams):
        probe = run_addc_collection(
            quick_topology,
            streams.spawn("outage-probe"),
            blocking="homogeneous",
            with_bounds=False,
        )
        sizes = probe.tree.subtree_sizes()
        node = max(
            range(1, probe.tree.num_nodes), key=lambda item: sizes[item]
        )
        return node, probe.tree.roles[node]

    def test_outage_recovers_without_loss(
        self, quick_topology, streams, relay
    ):
        """A kept-queue relay outage delays packets but loses none, and the
        repaired tree is fully reconnected with fresh depths."""
        node, original_role = relay
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("outage-keep"),
            blocking="homogeneous",
            fault_plan=FaultPlan.from_events(
                [FaultEvent.outage(30, node, 120)]
            ),
            with_bounds=False,
        )
        result = outcome.result
        n = quick_topology.secondary.num_sus
        assert result.completed
        assert result.packets_lost == 0
        assert result.delivered == n
        # The outage node plus every stranded subtree member that rejoined.
        assert result.nodes_recovered >= 1
        (record,) = result.fault_records
        assert record.kind == "outage"
        assert record.node == node
        # Actual reattachment happens at or after the scheduled recovery.
        assert record.recovered_slot is not None
        assert record.recovered_slot >= 120
        assert record.repair_slots >= 90
        # Tree reconnect: the node is re-attached and the depths were
        # refreshed so every parent pointer is depth-consistent again.
        tree = outcome.tree
        assert tree.parent[node] >= 0
        for member in range(tree.num_nodes):
            parent = tree.parent[member]
            if member != tree.root and parent >= 0:
                assert tree.depth[member] == tree.depth[parent] + 1
        # The recovered backbone node returns with its role restored.
        assert tree.roles[node] == original_role

    def test_drop_queue_outage_orphans_exactly_the_losses(
        self, quick_topology, streams, relay
    ):
        node, _ = relay
        result = run_addc_collection(
            quick_topology,
            streams.spawn("outage-drop"),
            blocking="homogeneous",
            fault_plan=FaultPlan.from_events(
                [FaultEvent.outage(200, node, 500, drop_queue=True)]
            ),
            with_bounds=False,
        ).result
        n = quick_topology.secondary.num_sus
        assert result.completed
        # A busy relay's dropped queue is real data loss ...
        assert result.packets_lost >= 1
        # ... and with outages as the only fault kind the orphan accounting
        # explains every lost packet exactly.
        assert result.packets_orphaned == result.packets_lost
        assert result.delivered + result.packets_lost == n
        assert result.nodes_recovered >= 1

    def test_arrivals_for_a_down_node_are_buffered(self, streams):
        topology = one_su_topology()
        engine = make_engine(
            topology,
            streams,
            "deferred",
            fault_plan=FaultPlan.from_events([FaultEvent.outage(5, 1, 20)]),
        )
        engine.load_packets(
            [Packet(packet_id=0, source=1, birth_slot=10)]
        )
        result = engine.run()
        assert result.completed
        assert result.arrivals_deferred == 1
        assert result.packets_lost == 0
        (delivery,) = result.deliveries
        assert delivery.birth_slot == 10
        # The packet could only leave after the slot-20 rejoin.
        assert delivery.delivered_slot >= 20
        assert result.nodes_recovered == 1


class TestSensingFaults:
    def test_stuck_busy_node_never_transmits_in_window(self, streams):
        topology = one_su_topology()
        trace = TraceLog()
        engine = make_engine(
            topology,
            streams,
            "stuck-busy",
            fault_plan=FaultPlan.from_events(
                [FaultEvent.stuck_busy(0, 1, until=40)]
            ),
            trace=trace,
        )
        engine.load_packets([Packet(packet_id=0, source=1)])
        result = engine.run()
        assert result.completed
        starts = [
            event
            for event in trace.of_kind(TraceKind.TX_START)
            if event.node == 1
        ]
        assert starts
        assert all(event.slot >= 40 for event in starts)
        assert result.deliveries[0].delivered_slot >= 40
        (record,) = result.fault_records
        assert record.kind == "stuck-busy"
        assert record.recovered_slot == 40

    def test_stuck_idle_transmits_into_pu_activity(self, streams):
        # A PU 5 m from the SU (inside the 10 m sensing range) is always
        # on, so the healthy node can never transmit; a pinned-idle
        # detector transmits anyway, and the violation is counted.  The
        # SIR still passes here (PU is 8 m from the base station), so the
        # collection completes *because* of the fault.
        topology = one_su_topology(pu_position=(7.0, 15.0), pu_active=1.0)
        healthy = make_engine(topology, streams, "stuck-idle-a", max_slots=60)
        healthy.load_packets([Packet(packet_id=0, source=1)])
        assert not healthy.run().completed

        faulted = make_engine(
            topology,
            streams,
            "stuck-idle-b",
            fault_plan=FaultPlan.from_events(
                [FaultEvent.stuck_idle(0, 1, until=200)]
            ),
            max_slots=200,
        )
        faulted.load_packets([Packet(packet_id=0, source=1)])
        result = faulted.run()
        assert result.completed
        assert result.pu_violations >= 1

    def test_stuck_idle_needs_geometric_blocking(
        self, quick_topology, streams
    ):
        plan = FaultPlan.from_events([FaultEvent.stuck_idle(0, 1, until=50)])
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                quick_topology,
                streams.spawn("stuck-guard"),
                blocking="homogeneous",
                fault_plan=plan,
                with_bounds=False,
            )

    def test_stuck_busy_fine_under_homogeneous_blocking(
        self, quick_topology, streams
    ):
        plan = FaultPlan.from_events([FaultEvent.stuck_busy(0, 1, until=50)])
        result = run_addc_collection(
            quick_topology,
            streams.spawn("stuck-ok"),
            blocking="homogeneous",
            fault_plan=plan,
            with_bounds=False,
        ).result
        assert result.completed


class TestLinkDegradation:
    def test_degraded_link_fails_sir_until_window_ends(self, streams):
        # PU at (24, 15): 12 m from the SU (outside sensing — transmission
        # allowed) and 9 m from the base station (nonzero interference).
        # Baseline SIR is (9/3)^4 = 81 >= eta_s; 30 dB of extra loss on
        # the SU -> BS link drops it to 0.081, below eta_s.
        topology = one_su_topology(pu_position=(24.0, 15.0), pu_active=1.0)

        baseline = make_engine(topology, streams, "link-a")
        baseline.load_packets([Packet(packet_id=0, source=1)])
        clean = baseline.run()
        assert clean.completed
        assert clean.collisions == 0
        assert clean.deliveries[0].delivered_slot < 5

        degraded = make_engine(
            topology,
            streams,
            "link-b",
            fault_plan=FaultPlan.from_events(
                [
                    FaultEvent.link_degradation(
                        0, 1, 0, until=60, extra_loss_db=30.0
                    )
                ]
            ),
        )
        degraded.load_packets([Packet(packet_id=0, source=1)])
        result = degraded.run()
        assert result.completed
        # SIR failures inside the window are counted as collisions ...
        assert result.collisions >= 1
        # ... and delivery only happens once the window has closed.
        assert result.deliveries[0].delivered_slot >= 60


class TestBaseStationBlackout:
    def test_deliveries_fail_and_retry_during_blackout(self, streams):
        topology = one_su_topology()
        engine = make_engine(
            topology,
            streams,
            "blackout",
            fault_plan=FaultPlan.from_events(
                [FaultEvent.bs_blackout(0, until=30)]
            ),
        )
        engine.load_packets([Packet(packet_id=0, source=1)])
        result = engine.run()
        assert result.completed
        assert result.blackout_failures >= 1
        # Blackout failures are not contention: ADDC stays collision-free.
        assert result.collisions == 0
        assert result.deliveries[0].delivered_slot >= 30


# --------------------------------------------------------------------- #
# Replayability                                                          #
# --------------------------------------------------------------------- #


class TestReplayability:
    def test_fixed_seed_chaos_run_is_bit_identical(
        self, quick_topology, streams
    ):
        plan = chaos_plan(
            quick_topology.secondary.su_ids(),
            1500,
            intensity=0.3,
            streams=StreamFactory(2024),
            sensing_fault_fraction=0.0,
        )
        results = [
            run_addc_collection(
                quick_topology,
                streams.spawn("chaos-replay"),
                blocking="homogeneous",
                fault_plan=plan,
                with_bounds=False,
            ).result
            for _ in range(2)
        ]
        assert results[0].fault_event_count >= 1
        assert asdict(results[0]) == asdict(results[1])

    def test_idle_leaf_outage_is_invisible(self, quick_topology, streams):
        """An outage of an idle, queue-empty leaf that recovers before any
        packet needs it leaves every measured quantity bit-identical."""
        tree = build_collection_tree(
            quick_topology.secondary.graph,
            quick_topology.secondary.base_station,
        )
        children = tree.children()
        leaf = max(
            (
                node
                for node in range(1, tree.num_nodes)
                if not children[node]
            ),
            key=lambda node: tree.depth[node],
        )
        sources = [
            su for su in quick_topology.secondary.su_ids() if su != leaf
        ]
        plans = [None, FaultPlan.from_events([FaultEvent.outage(2, leaf, 40)])]
        results = []
        for plan in plans:
            engine = make_engine(
                quick_topology,
                streams,
                "leaf-eq",
                blocking="homogeneous",
                homogeneous_p_o=0.7,
                fault_plan=plan,
                max_slots=100_000,
            )
            # Fresh Packet objects per run: the engine mutates hop counts.
            engine.load_packets(
                [
                    Packet(packet_id=index, source=node)
                    for index, node in enumerate(sources)
                ]
            )
            results.append(engine.run())
        clean, faulted = (asdict(result) for result in results)
        assert faulted["nodes_recovered"] == 1
        assert len(faulted["fault_records"]) == 1
        for fault_only in ("fault_records", "nodes_recovered"):
            clean.pop(fault_only)
            faulted.pop(fault_only)
        assert clean == faulted


# --------------------------------------------------------------------- #
# Resilience metrics                                                     #
# --------------------------------------------------------------------- #


class TestResilienceMetrics:
    def test_fault_free_run_scores_perfect(self, quick_topology, streams):
        result = run_addc_collection(
            quick_topology,
            streams.spawn("res-clean"),
            blocking="homogeneous",
            with_bounds=False,
        ).result
        report = resilience_report(result, quick_topology.secondary.num_sus)
        assert report.delivery_ratio == 1.0
        assert report.fault_events == 0
        assert report.availability == 1.0
        assert report.orphans_per_fault == 0.0
        assert report.downtime_weighted_throughput > 0.0
        assert "delivery" in report.summary()

    def test_outage_run_reports_repairs_and_downtime(
        self, quick_topology, streams
    ):
        result = run_addc_collection(
            quick_topology,
            streams.spawn("res-faulted"),
            blocking="homogeneous",
            fault_plan=FaultPlan.from_events(
                [
                    FaultEvent.outage(30, 4, 300, drop_queue=True),
                    FaultEvent.outage(60, 11, 400, drop_queue=True),
                ]
            ),
            with_bounds=False,
        ).result
        report = resilience_report(result, quick_topology.secondary.num_sus)
        assert report.fault_events == result.fault_event_count
        # Per-event repair accounting (nodes_recovered also counts the
        # stranded subtree members that rejoined alongside).
        assert report.outages_recovered == 2
        assert report.outages_open == 0
        assert report.availability < 1.0
        assert report.mean_repair_slots >= 270
        assert report.max_repair_slots >= report.mean_repair_slots
        assert report.delivery_ratio == pytest.approx(
            result.delivered / result.num_packets
        )
        assert report.packets_orphaned == result.packets_orphaned
