"""Measuring the paper's "data accumulation effect" directly.

Section V attributes Coolest's higher delay to accumulation: "many SUs
might choose the same path.  This will make the data accumulation effect
more serious."  With per-node peak-backlog tracking this becomes a
measurable claim rather than a narrative.
"""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.routing.coolest import run_coolest_collection


class TestBacklogTracking:
    def test_peaks_recorded(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology, streams.spawn("acc-1"), with_bounds=False
        )
        result = outcome.result
        assert result.peak_queue_lengths
        assert result.max_backlog >= 1
        # Every source held at least its own packet.
        for node in tiny_topology.secondary.su_ids():
            assert result.peak_queue_lengths.get(node, 0) >= 1

    def test_relays_accumulate_more_than_leaves(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology, streams.spawn("acc-2"), with_bounds=False
        )
        tree = outcome.tree
        peaks = outcome.result.peak_queue_lengths
        children = tree.children()
        leaf_peaks = [
            peaks.get(node, 0)
            for node in range(1, tree.num_nodes)
            if not children[node]
        ]
        relay_peaks = [
            peaks.get(node, 0)
            for node in range(1, tree.num_nodes)
            if children[node]
        ]
        assert max(relay_peaks) > max(leaf_peaks)

    def test_backlog_bounded_by_subtree(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology, streams.spawn("acc-3"), with_bounds=False
        )
        sizes = outcome.tree.subtree_sizes()
        for node, peak in outcome.result.peak_queue_lengths.items():
            assert peak <= sizes[node]

    def test_coolest_accumulates_more_than_addc(self, quick_topology, streams):
        """The paper's accumulation claim, measured: the converging coolest
        paths pile more packets onto their worst relay than ADDC's CDS
        tree piles onto its own."""
        addc = run_addc_collection(
            quick_topology,
            streams.spawn("acc-4"),
            blocking="homogeneous",
            with_bounds=False,
        )
        coolest = run_coolest_collection(
            quick_topology, streams.spawn("acc-5"), blocking="homogeneous"
        )
        assert addc.result.completed and coolest.result.completed
        assert coolest.result.max_backlog >= addc.result.max_backlog
