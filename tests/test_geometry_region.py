"""Tests for deployment regions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.region import DiskRegion, SquareRegion


class TestSquareRegion:
    def test_area(self):
        assert SquareRegion(side=250.0).area == 62500.0

    def test_from_area(self):
        region = SquareRegion.from_area(62500.0)
        assert math.isclose(region.side, 250.0)

    def test_center(self):
        assert np.allclose(SquareRegion(10.0).center, [5.0, 5.0])

    def test_sample_within_bounds(self):
        region = SquareRegion(50.0)
        points = region.sample(500, np.random.default_rng(1))
        assert points.shape == (500, 2)
        assert (points >= 0.0).all() and (points <= 50.0).all()

    def test_sample_zero(self):
        assert SquareRegion(1.0).sample(0, np.random.default_rng(0)).shape == (0, 2)

    def test_contains(self):
        region = SquareRegion(10.0)
        assert region.contains(np.array([0.0, 10.0]))
        assert not region.contains(np.array([10.1, 5.0]))

    @pytest.mark.parametrize("side", [0.0, -1.0])
    def test_invalid_side(self, side):
        with pytest.raises(GeometryError):
            SquareRegion(side)

    def test_invalid_area(self):
        with pytest.raises(GeometryError):
            SquareRegion.from_area(-4.0)

    def test_negative_count(self):
        with pytest.raises(GeometryError):
            SquareRegion(1.0).sample(-1, np.random.default_rng(0))


class TestDiskRegion:
    def test_area(self):
        assert math.isclose(DiskRegion(radius=2.0).area, 4.0 * math.pi)

    def test_sample_within_disk(self):
        disk = DiskRegion(radius=5.0, center_x=10.0, center_y=-3.0)
        points = disk.sample(500, np.random.default_rng(2))
        distances = np.hypot(points[:, 0] - 10.0, points[:, 1] + 3.0)
        assert (distances <= 5.0 + 1e-9).all()

    def test_sampling_is_area_uniform(self):
        # Inner half-radius disk holds a quarter of the area; the sample
        # fraction should match.
        disk = DiskRegion(radius=1.0)
        points = disk.sample(20_000, np.random.default_rng(3))
        inner = (np.hypot(points[:, 0], points[:, 1]) <= 0.5).mean()
        assert abs(inner - 0.25) < 0.02

    def test_contains(self):
        disk = DiskRegion(radius=1.0)
        assert disk.contains(np.array([1.0, 0.0]))
        assert not disk.contains(np.array([1.01, 0.0]))

    def test_invalid_radius(self):
        with pytest.raises(GeometryError):
            DiskRegion(radius=0.0)


@settings(max_examples=25)
@given(st.floats(min_value=0.1, max_value=1e3), st.integers(0, 50))
def test_square_samples_always_inside(side, count):
    region = SquareRegion(side)
    points = region.sample(count, np.random.default_rng(0))
    for row in points:
        assert region.contains(row)
