"""Tests for the named scenario presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import SCENARIOS, get_scenario, list_scenarios
from repro.network.deployment import deploy_crn
from repro.network.primary import MarkovActivity
from repro.rng import StreamFactory


class TestRegistry:
    def test_list_is_sorted_and_complete(self):
        assert list_scenarios() == sorted(SCENARIOS)
        assert "paper-default" in list_scenarios()

    def test_lookup(self):
        scenario = get_scenario("paper-default")
        assert scenario.config.num_sus == 115

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_scenario("atlantis")

    def test_every_scenario_has_summary(self):
        for scenario in SCENARIOS.values():
            assert scenario.summary
            assert scenario.name in SCENARIOS

    def test_densities_within_sane_range(self):
        for scenario in SCENARIOS.values():
            assert 0 < scenario.config.su_density < 0.2
            assert 0 <= scenario.config.pu_density < 0.05


class TestScenarioBehaviour:
    def test_bursty_activity_factory(self):
        scenario = get_scenario("tv-band-bursty")
        activity = scenario.make_activity()
        assert isinstance(activity, MarkovActivity)
        assert activity.stationary_probability == pytest.approx(0.3)

    def test_default_activity_is_none(self):
        assert get_scenario("paper-default").make_activity() is None

    def test_multichannel_scenario(self):
        assert get_scenario("whitespace-4ch").num_channels == 4

    def test_scenarios_deploy(self):
        # Deployment (the expensive part of a scenario) must succeed for a
        # couple of representative presets.
        for name in ("quiet-rural", "dense-iot-field"):
            scenario = get_scenario(name)
            topology = deploy_crn(
                scenario.config.deployment_spec(),
                StreamFactory(1).spawn(name),
                activity=scenario.make_activity(),
            )
            assert topology.secondary.num_sus == scenario.config.num_sus
