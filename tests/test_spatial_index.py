"""Tests for the uniform-grid spatial index (brute-force verified)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.distance import distances_from
from repro.geometry.spatial_index import GridIndex


def brute_force(positions: np.ndarray, point, radius: float):
    return set(np.nonzero(distances_from(point, positions) <= radius)[0].tolist())


class TestQueryRadius:
    def test_simple(self):
        index = GridIndex(np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]]), 2.0)
        assert sorted(index.query_radius((0.0, 0.0), 1.5)) == [0, 1]

    def test_inclusive_boundary(self):
        index = GridIndex(np.array([[3.0, 4.0]]), 1.0)
        assert index.query_radius((0.0, 0.0), 5.0) == [0]

    def test_zero_radius(self):
        index = GridIndex(np.array([[1.0, 1.0], [1.0, 1.0001]]), 0.5)
        assert index.query_radius((1.0, 1.0), 0.0) == [0]

    def test_negative_radius_rejected(self):
        index = GridIndex(np.array([[0.0, 0.0]]), 1.0)
        with pytest.raises(GeometryError):
            index.query_radius((0.0, 0.0), -1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 60),
        st.floats(min_value=0.1, max_value=30.0),
        st.floats(min_value=0.2, max_value=15.0),
        st.integers(0, 2**31 - 1),
    )
    def test_matches_brute_force(self, count, radius, cell, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((count, 2)) * 50.0
        index = GridIndex(positions, cell)
        point = rng.random(2) * 50.0
        assert set(index.query_radius(point, radius)) == brute_force(
            positions, point, radius
        )


class TestConstruction:
    def test_bad_shape(self):
        with pytest.raises(GeometryError):
            GridIndex(np.zeros((3, 3)), 1.0)

    def test_bad_cell_size(self):
        with pytest.raises(GeometryError):
            GridIndex(np.zeros((3, 2)), 0.0)

    def test_len(self):
        assert len(GridIndex(np.zeros((4, 2)), 1.0)) == 4

    def test_empty(self):
        index = GridIndex(np.empty((0, 2)), 1.0)
        assert index.query_radius((0.0, 0.0), 10.0) == []


class TestNeighborLists:
    def test_excludes_self(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [10.0, 10.0]])
        lists = GridIndex(positions, 1.0).neighbor_lists(1.0)
        assert lists[0] == [1]
        assert lists[1] == [0]
        assert lists[2] == []

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        positions = rng.random((40, 2)) * 20.0
        lists = GridIndex(positions, 3.0).neighbor_lists(5.0)
        for u, neighbors in enumerate(lists):
            for v in neighbors:
                assert u in lists[v]

    def test_query_radius_excluding(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0]])
        index = GridIndex(positions, 1.0)
        assert index.query_radius_excluding((0.0, 0.0), 1.0, 0) == [1]


class TestCrossNeighborLists:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        indexed = rng.random((30, 2)) * 20.0
        others = rng.random((10, 2)) * 20.0
        lists = GridIndex(indexed, 4.0).cross_neighbor_lists(others, 6.0)
        for row, found in zip(others, lists):
            assert set(found) == brute_force(indexed, row, 6.0)
