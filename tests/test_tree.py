"""Tests for the CDS-based collection tree and the BFS-tree ablation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs.bfs import bfs_layers
from repro.graphs.graph import Graph
from repro.graphs.tree import NodeRole, build_bfs_tree, build_collection_tree

from tests.test_cds import random_udg


class TestCollectionTree:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    def test_spanning_tree_reaches_root(self, num_nodes, seed):
        graph = random_udg(num_nodes, seed)
        tree = build_collection_tree(graph, 0)
        assert tree.parent[0] == 0
        for node in range(num_nodes):
            path = tree.path_to_root(node)
            assert path[0] == node and path[-1] == 0

    def test_tree_edges_exist_in_graph(self):
        graph = random_udg(30, 11)
        tree = build_collection_tree(graph, 0)
        for node in range(1, graph.num_nodes):
            assert graph.has_edge(node, tree.parent[node])

    def test_role_alternation_on_backbone(self):
        graph = random_udg(40, 12)
        tree = build_collection_tree(graph, 0)
        for node in range(1, graph.num_nodes):
            parent = tree.parent[node]
            if tree.roles[node] is NodeRole.CONNECTOR:
                assert tree.roles[parent] is NodeRole.DOMINATOR
            if tree.roles[node] is NodeRole.DOMINATOR:
                assert tree.roles[parent] is NodeRole.CONNECTOR
            if tree.roles[node] is NodeRole.DOMINATEE:
                assert tree.roles[parent] is NodeRole.DOMINATOR

    def test_depth_consistent_with_parents(self):
        graph = random_udg(30, 13)
        tree = build_collection_tree(graph, 0)
        for node in range(1, graph.num_nodes):
            assert tree.depth[node] == tree.depth[tree.parent[node]] + 1

    def test_children_inverse_of_parent(self):
        graph = random_udg(25, 14)
        tree = build_collection_tree(graph, 0)
        children = tree.children()
        for node, kids in enumerate(children):
            for kid in kids:
                assert tree.parent[kid] == node

    def test_subtree_sizes(self):
        graph = random_udg(25, 15)
        tree = build_collection_tree(graph, 0)
        sizes = tree.subtree_sizes()
        assert sizes[0] == graph.num_nodes
        # Each node's size is 1 plus its children's sizes.
        children = tree.children()
        for node in range(graph.num_nodes):
            assert sizes[node] == 1 + sum(sizes[kid] for kid in children[node])

    def test_root_degree_counts_children(self):
        graph = random_udg(25, 16)
        tree = build_collection_tree(graph, 0)
        assert tree.root_degree() == len(tree.children()[0])

    def test_max_degree_at_least_root_degree(self):
        graph = random_udg(25, 17)
        tree = build_collection_tree(graph, 0)
        assert tree.max_degree() >= tree.root_degree()

    def test_path_to_root_bad_node(self):
        graph = random_udg(10, 18)
        tree = build_collection_tree(graph, 0)
        with pytest.raises(GraphError):
            tree.path_to_root(99)


class TestBfsTree:
    def test_depth_equals_bfs_layers(self):
        graph = random_udg(30, 19)
        tree = build_bfs_tree(graph, 0)
        assert tree.depth == bfs_layers(graph, 0)

    def test_bfs_tree_never_deeper_than_cds_tree(self):
        graph = random_udg(40, 20)
        bfs = build_bfs_tree(graph, 0)
        cds = build_collection_tree(graph, 0)
        assert max(bfs.depth) <= max(cds.depth)

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            build_bfs_tree(Graph(2), 0)
