"""Tests for the connectivity / delay-scaling study helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.connectivity import (
    connectivity_probability,
    delay_vs_distance,
)
from repro.rng import StreamFactory


class TestConnectivityProbability:
    def test_dense_networks_connect(self):
        # ~12 expected neighbors per node: essentially always connected.
        probability = connectivity_probability(
            num_nodes=60, area=40.0 * 40.0, radius=10.0, trials=20, seed=1
        )
        assert probability > 0.9

    def test_sparse_networks_do_not(self):
        probability = connectivity_probability(
            num_nodes=20, area=200.0 * 200.0, radius=10.0, trials=20, seed=2
        )
        assert probability < 0.2

    def test_monotone_in_radius(self):
        low = connectivity_probability(40, 80.0 * 80.0, 10.0, trials=30, seed=3)
        high = connectivity_probability(40, 80.0 * 80.0, 25.0, trials=30, seed=3)
        assert high >= low

    def test_deterministic(self):
        a = connectivity_probability(30, 60.0 * 60.0, 12.0, trials=15, seed=4)
        b = connectivity_probability(30, 60.0 * 60.0, 12.0, trials=15, seed=4)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            connectivity_probability(1, 100.0, 10.0)
        with pytest.raises(ConfigurationError):
            connectivity_probability(10, 100.0, 10.0, trials=0)


class TestDelayVsDistance:
    def test_rows_sorted_and_scaling(self, quick_topology, streams):
        rows = delay_vs_distance(
            quick_topology, streams.spawn("dvd"), num_flows=6
        )
        assert len(rows) == 6
        distances = [row[0] for row in rows]
        assert distances == sorted(distances)
        # Hop counts grow with distance overall (nearest vs farthest).
        assert rows[-1][1] >= rows[0][1]
        # Every measured delay covers at least one slot per hop.
        for _, hops, delay in rows:
            assert delay >= hops

    def test_validation(self, quick_topology, streams):
        with pytest.raises(ConfigurationError):
            delay_vs_distance(quick_topology, streams.spawn("dvd2"), num_flows=1)
