"""Public-API surface checks.

Keeps the exported names importable and the exception hierarchy intact —
the contracts downstream code depends on.
"""

from __future__ import annotations

import importlib

import pytest

import repro
from repro import errors

PACKAGES = [
    "repro",
    "repro.core",
    "repro.graphs",
    "repro.network",
    "repro.spectrum",
    "repro.sim",
    "repro.routing",
    "repro.scheduling",
    "repro.metrics",
    "repro.workloads",
    "repro.experiments",
    "repro.geometry",
    "repro.rng",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_headline_api_present(self):
        for name in (
            "run_addc_collection",
            "run_coolest_collection",
            "run_centralized_collection",
            "compute_pcr",
            "deploy_crn",
            "ExperimentConfig",
            "SlottedEngine",
        ):
            assert hasattr(repro, name)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if (
                isinstance(attribute, type)
                and issubclass(attribute, Exception)
                and attribute is not errors.ReproError
            ):
                assert issubclass(attribute, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.DisconnectedNetworkError, errors.GraphError)
        assert issubclass(
            errors.InterferenceViolationError, errors.SimulationError
        )

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConfigurationError("bad")


class TestTopologyHelpers:
    def test_pus_within(self, quick_topology):
        import numpy as np

        for node in (0, 5, 20):
            found = quick_topology.pus_within(node, 15.0)
            distances = np.hypot(
                *(
                    quick_topology.primary.positions
                    - quick_topology.secondary.positions[node]
                ).T
            )
            expected = set(np.nonzero(distances <= 15.0)[0].tolist())
            assert set(found) == expected

    def test_reprs_are_informative(self, quick_topology):
        assert "CrnTopology" in repr(quick_topology)
        assert "PrimaryNetwork" in repr(quick_topology.primary)
        assert "SecondaryNetwork" in repr(quick_topology.secondary)
