"""Run the docstring examples embedded across the package."""

from __future__ import annotations

import doctest
import importlib

import pytest

# Modules whose docstrings carry runnable examples.
MODULES = [
    "repro.rng.streams",
    "repro.geometry.distance",
    "repro.geometry.region",
    "repro.geometry.spatial_index",
    "repro.graphs.graph",
    "repro.graphs.bfs",
    "repro.graphs.connectivity",
    "repro.graphs.mis",
    "repro.core.packing",
    "repro.core.pcr",
    "repro.core.fairness",
    "repro.core.numeric",
    "repro.lint.config",
    "repro.lint.diagnostics",
    "repro.lint.registry",
    "repro.lint.suppress",
    "repro.network.primary",
    "repro.workloads.sweep",
    "repro.metrics.stats",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
