"""Golden regression anchors.

Pinned outputs of fixed-seed runs.  These exist to catch *accidental*
behavioural drift in the engine or its random streams: any change to
contention order, stream consumption, or adjudication semantics shows up
here first.  If a change is intentional, update the pinned values and say
why in the commit.
"""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.core.pcr import PcrParameters, compute_pcr
from repro.experiments.config import ExperimentConfig
from repro.network.deployment import deploy_crn
from repro.routing.coolest import run_coolest_collection
from repro.rng import StreamFactory


@pytest.fixture(scope="module")
def golden_topology():
    config = ExperimentConfig(
        area=40.0 * 40.0, num_pus=10, num_sus=50, repetitions=1
    )
    return deploy_crn(config.deployment_spec(), StreamFactory(20120612).spawn("g"))


class TestGoldenValues:
    def test_pcr_constants(self):
        result = compute_pcr(PcrParameters())
        assert result.kappa == pytest.approx(3.128228205467164, abs=1e-9)
        result = compute_pcr(
            PcrParameters(pu_radius=10.0, eta_p_db=8.0, eta_s_db=8.0)
        )
        assert result.kappa == pytest.approx(2.4321126642154653, abs=1e-9)

    def test_addc_geometric_run(self, golden_topology):
        outcome = run_addc_collection(
            golden_topology,
            StreamFactory(20120612).spawn("g").spawn("addc"),
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        # Pinned: any drift means the engine's behaviour changed.
        assert result.delay_slots == 2443
        assert result.total_transmissions == 158
        assert result.collisions == 26

    def test_addc_homogeneous_run(self, golden_topology):
        outcome = run_addc_collection(
            golden_topology,
            StreamFactory(20120612).spawn("g").spawn("addc-h"),
            blocking="homogeneous",
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        assert result.delay_slots == 1131

    def test_coolest_run(self, golden_topology):
        outcome = run_coolest_collection(
            golden_topology,
            StreamFactory(20120612).spawn("g").spawn("coolest"),
        )
        result = outcome.result
        assert result.completed
        assert result.delay_slots == 7363
