"""Tests for trace-based time breakdowns."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError
from repro.metrics.breakdown import hop_latencies, node_activity, packet_journey
from repro.sim.trace import TraceKind, TraceLog


@pytest.fixture(scope="module")
def traced_run(tiny_topology, streams):
    trace = TraceLog()
    outcome = run_addc_collection(
        tiny_topology, streams.spawn("traced"), trace=trace, with_bounds=False
    )
    assert outcome.result.completed
    return trace, outcome.result


class TestPacketJourney:
    def test_journey_ends_with_delivery(self, traced_run):
        trace, result = traced_run
        record = result.deliveries[0]
        journey = packet_journey(trace, record.packet_id)
        kinds = [event.kind for event in journey]
        assert kinds[-1] is TraceKind.DELIVERY
        assert kinds.count(TraceKind.TX_SUCCESS) == record.hops

    def test_slots_monotone(self, traced_run):
        trace, result = traced_run
        journey = packet_journey(trace, result.deliveries[-1].packet_id)
        slots = [event.slot for event in journey]
        assert slots == sorted(slots)

    def test_unknown_packet(self, traced_run):
        trace, _ = traced_run
        with pytest.raises(ConfigurationError):
            packet_journey(trace, 10**9)


class TestNodeActivity:
    def test_counts_match_result(self, traced_run):
        trace, result = traced_run
        activity = node_activity(trace)
        for node, attempts in result.tx_attempts.items():
            assert activity[node].tx_attempts == attempts
        for node, successes in result.tx_successes.items():
            assert activity[node].tx_successes == successes
        total_collisions = sum(a.collisions for a in activity.values())
        assert total_collisions == result.collisions

    def test_loss_rate_bounds(self, traced_run):
        trace, _ = traced_run
        for record in node_activity(trace).values():
            assert 0.0 <= record.loss_rate <= 1.0


class TestHopLatencies:
    def test_sum_equals_delay(self, traced_run):
        trace, result = traced_run
        for record in result.deliveries[:10]:
            latencies = hop_latencies(trace, record.packet_id)
            assert len(latencies) == record.hops
            assert sum(latencies) == record.delay_slots

    def test_all_positive(self, traced_run):
        trace, result = traced_run
        for record in result.deliveries[:10]:
            assert all(lat >= 1 for lat in hop_latencies(trace, record.packet_id))
