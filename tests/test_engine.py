"""Behavioural tests of the slotted contention engine.

These assert the invariants Algorithm 1 promises: carrier sensing blocks
concurrent transmissions inside the CSMA range, PU-blocked nodes stay
silent, the SIR guarantee of Lemma 3 holds for every concurrent set ADDC
produces, and the fairness property behind Theorem 1 shows up in the
transmission schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError, SimulationError
from repro.geometry.distance import euclidean
from repro.graphs.tree import build_collection_tree
from repro.rng import StreamFactory
from repro.sim.engine import SlottedEngine
from repro.sim.packet import Packet
from repro.sim.trace import TraceKind, TraceLog
from repro.spectrum.sensing import CarrierSenseMap
from repro.spectrum.sir import SirValidator


def make_engine(topology, streams, csma_range=None, trace=None, slot_hook=None,
                fairness=True, blocking="geometric", homogeneous_p_o=None,
                max_slots=200_000):
    params = PcrParameters(
        alpha=4.0,
        pu_power=topology.primary.power,
        su_power=topology.secondary.power,
        pu_radius=topology.primary.radius,
        su_radius=topology.secondary.radius,
        eta_p_db=8.0,
        eta_s_db=8.0,
    )
    pcr = compute_pcr(params)
    sense_map = CarrierSenseMap(topology, pcr.pcr, csma_range)
    tree = build_collection_tree(
        topology.secondary.graph, topology.secondary.base_station
    )
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree, fairness_wait=fairness),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        blocking=blocking,
        homogeneous_p_o=homogeneous_p_o,
        max_slots=max_slots,
        trace=trace,
        slot_hook=slot_hook,
    )
    return engine, sense_map, pcr


class TestCompletion:
    def test_all_packets_delivered(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e1"))
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert result.delivered == tiny_topology.secondary.num_sus
        assert engine.total_queued() == 0

    def test_each_source_delivers_exactly_once(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e2"))
        engine.load_snapshot()
        result = engine.run()
        sources = sorted(record.source for record in result.deliveries)
        assert sources == list(tiny_topology.secondary.su_ids())

    def test_hops_match_tree_depth(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e3"))
        tree = engine.policy.tree
        engine.load_snapshot()
        result = engine.run()
        for record in result.deliveries:
            assert record.hops == tree.depth[record.source]

    def test_determinism(self, tiny_topology, streams):
        results = []
        for _ in range(2):
            engine, _, _ = make_engine(tiny_topology, streams.spawn("same"))
            engine.load_snapshot()
            results.append(engine.run())
        assert results[0].delay_slots == results[1].delay_slots
        assert results[0].tx_attempts == results[1].tx_attempts

    def test_max_slots_cap(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e4"), max_slots=3)
        engine.load_snapshot()
        result = engine.run()
        assert not result.completed
        assert result.slots_simulated == 3


class TestCarrierSensingInvariants:
    def test_no_concurrent_transmitters_within_csma_range(
        self, tiny_topology, streams
    ):
        positions = tiny_topology.secondary.positions
        violations = []

        def hook(engine):
            links = engine.last_slot_su_links
            for i, (tx_a, _) in enumerate(links):
                for tx_b, _ in links[i + 1 :]:
                    if (
                        euclidean(positions[tx_a], positions[tx_b])
                        <= engine.sense_map.su_csma_range
                    ):
                        violations.append((engine.slot, tx_a, tx_b))

        engine, _, _ = make_engine(tiny_topology, streams.spawn("e5"), slot_hook=hook)
        engine.load_snapshot()
        engine.run()
        assert violations == []

    def test_pu_blocked_nodes_stay_silent(self, tiny_topology, streams):
        violations = []

        def hook(engine):
            if not engine.last_slot_active_pus:
                return
            pu_positions = engine.topology.primary.positions
            su_positions = engine.topology.secondary.positions
            protection = engine.sense_map.pu_protection_range
            for tx, _ in engine.last_slot_su_links:
                for pu in engine.last_slot_active_pus:
                    if euclidean(su_positions[tx], pu_positions[pu]) <= protection:
                        violations.append((engine.slot, tx, pu))

        engine, _, _ = make_engine(tiny_topology, streams.spawn("e6"), slot_hook=hook)
        engine.load_snapshot()
        engine.run()
        assert violations == []

    def test_addc_concurrent_sets_satisfy_lemma3_sir(self, tiny_topology, streams):
        """Empirical check of Lemmas 2-3: every concurrent set ADDC emits
        passes the physical SIR model for the secondary links."""
        validator = SirValidator(
            alpha=4.0,
            eta_p=db_to_linear(8.0),
            eta_s=db_to_linear(8.0),
            pu_power=tiny_topology.primary.power,
            su_power=tiny_topology.secondary.power,
        )
        su_positions = tiny_topology.secondary.positions
        failures = []

        def hook(engine):
            links = [
                (su_positions[tx], su_positions[rx])
                for tx, rx in engine.last_slot_su_links
            ]
            if not links:
                return
            # Secondary links against each other (the Lemma 3 guarantee for
            # a stand-alone secondary network; active PUs are all beyond
            # the protection range of every transmitter).
            report = validator.validate(pu_links=[], su_links=links)
            if not report.su_ok:
                failures.append(engine.slot)

        engine, _, _ = make_engine(tiny_topology, streams.spawn("e7"), slot_hook=hook)
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert failures == []

    def test_addc_standalone_has_no_collisions(self, standalone_topology, streams):
        # Lemma 3's setting: a stand-alone secondary network.  The PCR makes
        # ADDC collision-free, and the SIR adjudication agrees.
        engine, _, _ = make_engine(standalone_topology, streams.spawn("e8"))
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert result.collisions == 0

    def test_paper_zeta_bound_admits_rare_pu_interference(
        self, tiny_topology, streams
    ):
        """The paper's c2 rests on the reversed inequality zeta(x) <= 1/(x-1),
        so its PCR slightly *under*-protects against cumulative PU
        interference: a small SIR-failure rate is expected.  The corrected
        bounds restore the guarantee (next test)."""
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e8b"))
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        # Failures stay a minority of attempts even where the paper's bound
        # under-protects; the corrected bounds below eliminate them.
        assert result.collisions <= 0.5 * result.total_transmissions

    def test_corrected_zeta_bound_restores_guarantee(self, tiny_topology, streams):
        from repro.core.collector import run_addc_collection

        for variant in ("safe", "exact"):
            outcome = run_addc_collection(
                tiny_topology,
                streams.spawn(f"e8c-{variant}"),
                zeta_bound=variant,
                with_bounds=False,
            )
            assert outcome.result.completed
            assert outcome.result.collisions == 0

    def test_small_csma_range_produces_collisions(self, quick_topology, streams):
        engine, _, _ = make_engine(
            quick_topology,
            streams.spawn("e9"),
            csma_range=quick_topology.secondary.radius,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert result.collisions > 0


class TestFairness:
    @staticmethod
    def _two_su_topology():
        """The exact setting of property P's proof: two competing SUs.

        Both SUs are base-station children inside each other's PCR; the
        primary network is absent (the proof first assumes a stand-alone
        secondary network).
        """
        import numpy as np

        from repro.geometry.region import SquareRegion
        from repro.network.primary import BernoulliActivity, PrimaryNetwork
        from repro.network.secondary import SecondaryNetwork
        from repro.network.topology import CrnTopology

        region = SquareRegion(30.0)
        secondary = SecondaryNetwork(
            positions=np.array([[15.0, 15.0], [11.0, 12.0], [19.0, 12.0]]),
            power=10.0,
            radius=10.0,
        )
        primary = PrimaryNetwork(
            positions=np.empty((0, 2)),
            power=10.0,
            radius=10.0,
            activity=BernoulliActivity(0.0),
        )
        return CrnTopology(region=region, primary=primary, secondary=secondary)

    def test_theorem1_two_packet_property(self, streams):
        """Property P of Theorem 1: before a backlogged SU transmits one
        packet, a competing PCR neighbor transmits at most two.

        The paper proves P for exactly two competing SUs in a stand-alone
        secondary network (Fig. 5); with more contenders the post-
        transmission wait elapses in wall-clock time while third nodes hold
        the channel, so the pairwise bound does not compose — Theorem 1's
        aggregate form is checked separately below.
        """
        topology = self._two_su_topology()
        trace = TraceLog()
        engine, _, _ = make_engine(topology, streams.spawn("e10"), trace=trace)
        engine.load_snapshot(packets_per_su=8)
        result = engine.run()
        assert result.completed
        successes = trace.of_kind(TraceKind.TX_SUCCESS)
        schedule = [event.node for event in successes]
        for node, other in ((1, 2), (2, 1)):
            positions = [i for i, winner in enumerate(schedule) if winner == node]
            for start, end in zip(positions, positions[1:]):
                between = schedule[start + 1 : end].count(other)
                assert between <= 2, (
                    f"node {other} transmitted {between} packets while "
                    f"node {node} was backlogged"
                )

    def test_theorem1_service_time_bound(self, standalone_topology, streams):
        """Theorem 1's aggregate claim, stand-alone case (p_o = 1): a
        backlogged SU serves at least one packet every
        ``2 Delta beta(kappa) + 24 beta(kappa+1) - 1`` slots."""
        from repro.core.analysis import theorem1_service_bound_slots

        trace = TraceLog()
        engine, _, pcr = make_engine(
            standalone_topology, streams.spawn("e10b"), trace=trace
        )
        tree = engine.policy.tree
        bound = theorem1_service_bound_slots(pcr.kappa, tree.max_degree(), 1.0)
        engine.load_snapshot(packets_per_su=2)
        result = engine.run()
        assert result.completed
        successes = trace.of_kind(TraceKind.TX_SUCCESS)
        per_node_slots: dict = {}
        for event in successes:
            per_node_slots.setdefault(event.node, []).append(event.slot)
        for node, slots in per_node_slots.items():
            # First service from the task start, then gaps between services
            # while backlogged.
            gaps = [slots[0]] + [b - a for a, b in zip(slots, slots[1:])]
            assert max(gaps) <= bound

    def test_fairness_wait_spreads_service(self, quick_topology, streams):
        from repro.core.fairness import jain_index

        def service_fairness(fairness):
            engine, _, _ = make_engine(
                quick_topology, streams.spawn(f"fair-{fairness}"), fairness=fairness
            )
            engine.load_snapshot()
            result = engine.run()
            # Fairness of inter-delivery service among sources still active
            # in the first half of the run.
            half = result.delay_slots // 2
            early_counts = {}
            for record in result.deliveries:
                if record.delivered_slot <= half:
                    early_counts[record.source] = (
                        early_counts.get(record.source, 0) + 1
                    )
            return result

        with_wait = service_fairness(True)
        without_wait = service_fairness(False)
        # Both complete; the fairness wait must not break completion.
        assert with_wait.completed and without_wait.completed


class TestHomogeneousBlocking:
    def test_blocking_rate_matches_p_o(self, tiny_topology, streams):
        p_o = 0.25
        engine, _, _ = make_engine(
            tiny_topology,
            streams.spawn("e11"),
            blocking="homogeneous",
            homogeneous_p_o=p_o,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        # frozen_slot_count / (frozen + ready) estimates 1 - p_o.
        total = result.frozen_slot_count + result.opportunity_slot_count
        observed_blocked = result.frozen_slot_count / total
        assert abs(observed_blocked - (1.0 - p_o)) < 0.05

    def test_homogeneous_needs_p_o(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            make_engine(
                tiny_topology, streams.spawn("e12"), blocking="homogeneous"
            )

    def test_invalid_blocking_mode(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            make_engine(tiny_topology, streams.spawn("e13"), blocking="bogus")


class TestEngineErrors:
    def test_run_without_workload(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e14"))
        with pytest.raises(SimulationError):
            engine.run()

    def test_single_use(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e15"))
        engine.load_snapshot()
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_load_after_start(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e16"))
        engine.load_snapshot()
        engine.run()
        with pytest.raises(SimulationError):
            engine.load_snapshot()

    def test_bad_packet_source(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e17"))
        with pytest.raises(ConfigurationError):
            engine.load_packets([Packet(packet_id=0, source=0)])

    def test_bad_contention_window(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            engine, sense_map, _ = make_engine(tiny_topology, streams.spawn("e18"))
            SlottedEngine(
                topology=tiny_topology,
                sense_map=sense_map,
                policy=engine.policy,
                streams=streams.spawn("e18b"),
                contention_window_ms=0.9,
                slot_duration_ms=1.0,
            )

    def test_queue_introspection(self, tiny_topology, streams):
        engine, _, _ = make_engine(tiny_topology, streams.spawn("e19"))
        engine.load_snapshot()
        assert engine.total_queued() == tiny_topology.secondary.num_sus
        assert engine.queue_length(1) == 1
        assert engine.queue_length(0) == 0
