"""CLI-level tests for the service layer and the harnessed chaos command.

Two contracts live here:

* ``addc-repro chaos --checkpoint/--resume`` — the fault-injection sweep
  now runs through the shared jobs layer, so a journal torn by a kill
  resumes to byte-identical artifacts exactly like ``fig6``/``compare``;
* the ``serve``/``service`` commands parse, share defaults, and build
  specs that agree with the one-shot commands about fingerprints.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.cli import build_parser, main
from repro.service.jobs import JobSpec


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


TINY_FLAGS = [
    "--seed", "20120612",
    "--repetitions", "2",
]


def _chaos_args(tmp_path, label, extra):
    return [
        "chaos",
        *TINY_FLAGS,
        "--intensity", "0.3",
        "--horizon-slots", "500",
        "--mean-downtime", "100",
        "--save", str(tmp_path / f"{label}.json"),
        *extra,
    ]


class TestChaosCheckpointResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path, capsys):
        """Satellite contract: tear the chaos journal mid-record (what a
        SIGKILL leaves behind), resume, and get the exact bytes of an
        uninterrupted run — RNG stream positions included."""
        journal = tmp_path / "chaos.ndjson"

        assert main(_chaos_args(tmp_path, "reference", [])) == 0
        reference = (tmp_path / "reference.json").read_bytes()

        assert (
            main(
                _chaos_args(
                    tmp_path, "first", ["--checkpoint", str(journal)]
                )
            )
            == 0
        )
        assert (tmp_path / "first.json").read_bytes() == reference

        # Tear the journal's last record mid-line and resume: only the
        # torn repetition is recomputed, and the artifact matches.
        torn = journal.read_bytes()
        journal.write_bytes(torn[:-25])
        assert (
            main(
                _chaos_args(
                    tmp_path,
                    "resumed",
                    ["--checkpoint", str(journal), "--resume"],
                )
            )
            == 0
        )
        out = capsys.readouterr().out
        assert (tmp_path / "resumed.json").read_bytes() == reference
        assert "resumed" in out

    def test_resume_refuses_a_foreign_journal(self, tmp_path, capsys):
        """A journal from a *different* chaos sweep (other seed) must be
        refused by fingerprint, not silently mixed in."""
        journal = tmp_path / "chaos.ndjson"
        assert (
            main(_chaos_args(tmp_path, "first", ["--checkpoint", str(journal)]))
            == 0
        )
        code = main(
            [
                "chaos",
                "--seed", "999",
                "--repetitions", "2",
                "--intensity", "0.3",
                "--horizon-slots", "500",
                "--mean-downtime", "100",
                "--save", str(tmp_path / "other.json"),
                "--checkpoint", str(journal),
                "--resume",
            ]
        )
        assert code == 1
        assert "ERROR" in capsys.readouterr().err


class TestServiceCli:
    def test_serve_and_service_parse_with_shared_defaults(self):
        parser = build_parser()
        serve = parser.parse_args(["serve"])
        submit = parser.parse_args(["service", "submit", "compare"])
        assert serve.socket == submit.socket
        assert serve.queue_capacity == 4
        assert submit.scale == "quick"
        smoke = parser.parse_args(["service", "smoke"])
        assert smoke.service_command == "smoke"

    def test_submit_spec_matches_one_shot_fingerprints(self):
        """A ``service submit`` spec and the equivalent one-shot CLI run
        must agree on the experiment's identity (the cache key)."""
        from repro.cli import _service_spec_from

        parser = build_parser()
        args = parser.parse_args(
            ["service", "submit", "fig6", "--subfigure", "c",
             "--seed", "7", "--repetitions", "1"]
        )
        spec = _service_spec_from(args)
        direct = JobSpec(kind="fig6", subfigure="c", seed=7, repetitions=1)
        assert spec == direct
        assert spec.fingerprint() == direct.fingerprint()

    def test_submit_chaos_spec_carries_fault_options(self):
        from repro.cli import _service_spec_from

        parser = build_parser()
        args = parser.parse_args(
            ["service", "submit", "chaos", "--intensity", "0.5",
             "--blackout", "--repetitions", "1"]
        )
        spec = _service_spec_from(args)
        assert spec.kind == "chaos"
        options = spec.chaos_options()
        assert options.intensity == 0.5
        assert options.blackout is True

    def test_fig6_submit_requires_subfigure(self):
        from repro.cli import _service_spec_from
        from repro.errors import ServiceError

        parser = build_parser()
        args = parser.parse_args(["service", "submit", "fig6"])
        with pytest.raises(ServiceError, match="subfigure"):
            _service_spec_from(args)

    def test_unreachable_socket_is_a_typed_failure(self, tmp_path, capsys):
        code = main(
            ["service", "ping", "--socket", str(tmp_path / "nowhere.sock")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "ERROR [service]" in err
        assert "addc-repro serve" in err

    def test_fig6_harness_manifest_still_carries_harness_block(
        self, tmp_path, capsys
    ):
        """The fig6 refactor onto the jobs layer must not change the CLI
        artifact/manifest contract the OBSERVABILITY docs promise."""
        save = tmp_path / "fig6c.json"
        journal = tmp_path / "fig6c.ndjson"
        code = main(
            [
                "fig6", "c",
                "--seed", "20120612",
                "--repetitions", "1",
                "--save", str(save),
                "--checkpoint", str(journal),
            ]
        )
        assert code == 0
        manifest = json.loads(
            (tmp_path / "fig6c.manifest.json").read_text()
        )
        assert manifest["extra"]["sweep"] == "fig6c"
        assert manifest["extra"]["harness"]["status"] == "complete"
        assert journal.exists()
