"""Tests for imperfect spectrum sensing (false alarms / missed detections)."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError


class TestFalseAlarms:
    def test_false_alarms_slow_collection(self, tiny_topology, streams):
        clean = run_addc_collection(
            tiny_topology, streams.spawn("fa-0"), blocking="homogeneous"
        )
        noisy = run_addc_collection(
            tiny_topology,
            streams.spawn("fa-1"),
            blocking="homogeneous",
            p_false_alarm=0.6,
        )
        assert clean.result.completed and noisy.result.completed
        # Losing 60% of the opportunities must visibly increase delay.
        assert noisy.result.delay_slots > 1.5 * clean.result.delay_slots

    def test_false_alarms_cause_no_violations(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology,
            streams.spawn("fa-2"),
            p_false_alarm=0.4,
        )
        assert outcome.result.completed
        assert outcome.result.pu_violations == 0


class TestMissedDetections:
    def test_missed_detections_cause_violations(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology,
            streams.spawn("md-1"),
            p_missed_detection=0.5,
        )
        assert outcome.result.completed
        # With half the busy slots sensed free, PU-protection violations
        # must appear.
        assert outcome.result.pu_violations > 0

    def test_perfect_sensing_has_no_violations(self, tiny_topology, streams):
        outcome = run_addc_collection(tiny_topology, streams.spawn("md-0"))
        assert outcome.result.pu_violations == 0

    def test_violating_transmissions_usually_fail(self, tiny_topology, streams):
        """Under geometric blocking, a transmission during PU activity
        inside the protection range faces that PU's interference at its
        receiver; most such attempts fail the SIR check and are retried."""
        outcome = run_addc_collection(
            tiny_topology,
            streams.spawn("md-2"),
            p_missed_detection=0.8,
        )
        result = outcome.result
        assert result.completed
        assert result.pu_violations > 0
        assert result.collisions > 0


class TestValidation:
    def test_incompatible_with_mean_field(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                tiny_topology,
                streams.spawn("bad-0"),
                blocking="homogeneous",
                p_missed_detection=0.2,
            )

    def test_invalid_probabilities(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                tiny_topology, streams.spawn("bad-1"), p_false_alarm=1.5
            )
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                tiny_topology, streams.spawn("bad-2"), p_missed_detection=-0.1
            )
