"""Tests for repro.perf: parallel executor, vectorized-kernel equivalence.

The load-bearing guarantee is bit-identity: the parallel sweep executor
must reproduce serial results byte-for-byte (artifacts, manifests, merged
metrics, RNG stream positions) for any worker count, and the vectorized
CSR ``GridIndex`` must return exactly what a brute-force distance scan
(and the preserved scalar reference) returns.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

import repro.obs as obs
from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError, GeometryError
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig6 import FIG6_SWEEPS, run_fig6_sweep
from repro.experiments.io import save_sweep
from repro.experiments.runner import (
    run_comparison_point,
    run_comparison_repetition,
)
from repro.geometry import GridIndex
from repro.network.deployment import deploy_crn
from repro.network.primary import BernoulliActivity, MarkovActivity
from repro.obs.manifest import manifest_path_for
from repro.obs.recorder import MetricsRecorder, NullRecorder
from repro.perf import (
    ParallelSweepExecutor,
    ScalarGridIndex,
    SharedArrayStore,
    SweepWorkItem,
    WarmWorkerPool,
    attach_segment,
    execute_work_batch,
    execute_work_item,
)
from repro.perf.shm import detach_all
from repro.rng import StreamFactory
from repro.routing.coolest import run_coolest_collection


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


def tiny_config(**overrides) -> ExperimentConfig:
    """A deliberately small scenario so process-pool tests stay fast."""
    base = dict(
        area=30.0 * 30.0,
        num_pus=4,
        num_sus=20,
        repetitions=2,
        max_slots=200_000,
        seed=20120612,
    )
    base.update(overrides)
    return ExperimentConfig.quick_scale().with_overrides(**base)


# --------------------------------------------------------------------- #
# Satellite (b): randomized property test, CSR == brute force == scalar #
# --------------------------------------------------------------------- #


def brute_force_query(positions, point, radius, exclude=None):
    deltas = positions - np.asarray(point, dtype=float)
    mask = (deltas * deltas).sum(axis=1) <= radius * radius
    found = np.nonzero(mask)[0]
    if exclude is not None:
        found = found[found != exclude]
    return sorted(found.tolist())


class TestGridIndexProperty:
    def test_randomized_queries_match_brute_force_and_scalar(self):
        rng = StreamFactory(20120612).stream("spatial-property")
        for case in range(30):
            n = int(rng.integers(1, 120))
            side = float(rng.uniform(5.0, 60.0))
            cell = float(rng.uniform(0.5, 12.0))
            positions = rng.random((n, 2)) * side
            index = GridIndex(positions, cell)
            scalar = ScalarGridIndex(positions, cell)
            for _ in range(5):
                point = rng.random(2) * side * 1.2 - side * 0.1
                radius = float(rng.uniform(0.0, side * 0.5))
                got = index.query_radius(point, radius)
                assert sorted(got) == brute_force_query(
                    positions, point, radius
                ), f"case {case}: CSR != brute force"
                # Exact order parity with the scalar reference, too.
                assert got == scalar.query_radius(point, radius)
                exclude = int(rng.integers(0, n))
                assert index.query_radius_excluding(
                    point, radius, exclude
                ) == scalar.query_radius_excluding(point, radius, exclude)

    def test_batched_queries_match_per_point_queries(self):
        rng = StreamFactory(7).stream("spatial-batch")
        positions = rng.random((80, 2)) * 40.0
        index = GridIndex(positions, 5.0)
        queries = rng.random((25, 2)) * 50.0 - 5.0
        radius = 7.5
        batched = index.query_radius_many(queries, radius)
        assert batched == [
            index.query_radius(queries[i], radius) for i in range(len(queries))
        ]
        excludes = rng.integers(0, 80, size=25)
        batched_excl = index.query_radius_many(queries, radius, exclude=excludes)
        assert batched_excl == [
            index.query_radius_excluding(queries[i], radius, int(excludes[i]))
            for i in range(len(queries))
        ]

    def test_boundary_radius_is_inclusive(self):
        positions = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        index = GridIndex(positions, 2.0)
        # Distances are exactly 3, 4, and 5 — all must be included.
        assert sorted(index.query_radius((0.0, 0.0), 3.0)) == [0, 1]
        assert sorted(index.query_radius((0.0, 0.0), 4.0)) == [0, 1, 2]
        assert sorted(index.query_radius((3.0, 4.0), 5.0)) == [0, 1, 2]

    def test_neighbor_lists_match_scalar_reference(self):
        rng = StreamFactory(11).stream("spatial-neighbors")
        positions = rng.random((60, 2)) * 25.0
        others = rng.random((15, 2)) * 25.0
        for cell in (1.0, 4.0, 10.0):
            index = GridIndex(positions, cell)
            scalar = ScalarGridIndex(positions, cell)
            for radius in (0.0, 3.5, 8.0):
                assert index.neighbor_lists(radius) == scalar.neighbor_lists(
                    radius
                )
                assert index.cross_neighbor_lists(
                    others, radius
                ) == scalar.cross_neighbor_lists(others, radius)

    def test_empty_index_and_empty_queries(self):
        index = GridIndex(np.zeros((0, 2)), 1.0)
        assert index.query_radius((0.0, 0.0), 5.0) == []
        assert index.neighbor_lists(2.0) == []
        full = GridIndex(np.array([[1.0, 1.0]]), 1.0)
        assert full.query_radius_many(np.zeros((0, 2)), 1.0) == []


class TestGridIndexValidation:
    # Satellite (a): non-finite inputs raise instead of bucketing NaN.

    def test_non_finite_query_point_raises(self):
        index = GridIndex(np.array([[0.0, 0.0]]), 1.0)
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(GeometryError):
                index.query_radius((bad, 0.0), 1.0)
            with pytest.raises(GeometryError):
                index.query_radius_excluding((0.0, bad), 1.0, 0)
            with pytest.raises(GeometryError):
                index.query_radius_many(np.array([[bad, 0.0]]), 1.0)

    def test_non_finite_positions_raise(self):
        with pytest.raises(GeometryError):
            GridIndex(np.array([[0.0, float("nan")]]), 1.0)

    def test_non_finite_or_negative_radius_raises(self):
        index = GridIndex(np.array([[0.0, 0.0]]), 1.0)
        with pytest.raises(GeometryError):
            index.query_radius((0.0, 0.0), -1.0)
        with pytest.raises(GeometryError):
            index.query_radius((0.0, 0.0), float("nan"))

    def test_excluding_single_pass_keeps_results(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        index = GridIndex(positions, 1.0)
        assert sorted(index.query_radius_excluding((0.0, 0.0), 2.0, 1)) == [0, 2]
        # Excluding an index not in range changes nothing.
        assert sorted(index.query_radius_excluding((0.0, 0.0), 0.5, 2)) == [0]


# --------------------------------------------------------------------- #
# Executor unit behaviour                                               #
# --------------------------------------------------------------------- #


class TestExecutor:
    def test_work_item_is_picklable(self):
        item = SweepWorkItem(
            point_index=3, repetition=1, config=tiny_config(), collect_metrics=True
        )
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepExecutor(0)

    def test_execute_work_item_collects_metrics(self):
        item = SweepWorkItem(
            point_index=0,
            repetition=0,
            config=tiny_config(repetitions=1),
            collect_metrics=True,
        )
        outcome = execute_work_item(item)
        assert outcome.point_index == 0 and outcome.repetition == 0
        assert outcome.metrics["counters"]["engine.runs"] == 2  # ADDC + Coolest
        assert "sweep.repetition" in outcome.profile
        assert outcome.measurement.rng_positions.keys() == {"addc", "coolest"}
        # Without collect_metrics the worker ships no snapshot.
        bare = execute_work_item(
            SweepWorkItem(0, 0, tiny_config(repetitions=1))
        )
        assert bare.metrics is None and bare.profile is None
        assert bare.measurement == outcome.measurement

    def test_inline_executor_matches_direct_calls(self):
        config = tiny_config()
        items = [SweepWorkItem(0, rep, config) for rep in range(2)]
        outcomes = ParallelSweepExecutor(1).run_items(items)
        assert [o.measurement for o in outcomes] == [
            run_comparison_repetition(config, rep) for rep in range(2)
        ]


class TestMergeSnapshot:
    def test_counters_histograms_and_spans_fold(self):
        worker = MetricsRecorder()
        worker.counter_add("engine.slots", 10)
        worker.observe("delay", 3.0, bounds=(1.0, 5.0))
        worker.observe("delay", 7.0, bounds=(1.0, 5.0))
        worker.gauge_set("level", 2.0)
        worker.span_add("engine.run", 0.25)

        parent = MetricsRecorder()
        parent.counter_add("engine.slots", 5)
        parent.merge_snapshot(worker.snapshot(), worker.profile())
        parent.merge_snapshot(worker.snapshot(), worker.profile())

        assert parent.counters["engine.slots"] == 25
        assert parent.gauges["level"] == 2.0
        merged = parent.histograms["delay"]
        assert merged.count == 4 and merged.total == 20.0
        assert merged.bucket_counts == [0, 2, 2]
        span = parent.spans["engine.run"]
        assert span.count == 2
        assert span.total_s == pytest.approx(0.5)
        assert span.min_s == pytest.approx(0.25)
        assert span.max_s == pytest.approx(0.25)

    def test_histogram_bounds_mismatch_raises(self):
        worker = MetricsRecorder()
        worker.observe("delay", 1.0, bounds=(1.0, 2.0))
        parent = MetricsRecorder()
        parent.observe("delay", 1.0, bounds=(1.0, 3.0))
        with pytest.raises(ConfigurationError):
            parent.merge_snapshot(worker.snapshot())

    def test_null_recorder_merge_is_noop(self):
        recorder = NullRecorder()
        recorder.merge_snapshot({"counters": {"x": 1}}, {"s": {"count": 1}})
        assert recorder.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# --------------------------------------------------------------------- #
# Satellite (c): workers in {2, 4} are byte-identical to serial         #
# --------------------------------------------------------------------- #


def _volatile_stripped(manifest_dict):
    cleaned = json.loads(json.dumps(manifest_dict))
    cleaned.pop("created_utc", None)
    cleaned.pop("wall_time_s", None)
    cleaned.pop("profile", None)  # span timings are wall-clock by nature
    cleaned.get("extra", {}).pop("workers", None)
    return cleaned


def _run_sweep_to_file(tmp_path, label, workers):
    config = tiny_config()
    sweep = FIG6_SWEEPS["fig6c"]
    recorder = MetricsRecorder()
    start = obs.monotonic_s()
    with obs.use_recorder(recorder):
        points = run_fig6_sweep(
            sweep, config, values=(0.1, 0.2), workers=workers
        )
    wall_time_s = obs.monotonic_s() - start
    manifest = obs.build_manifest(
        seed=config.seed,
        config=config,
        wall_time_s=wall_time_s,
        recorder=recorder,
        extra={"sweep": "fig6c", "workers": workers},
    )
    path = tmp_path / f"{label}.json"
    save_sweep(path, "fig6c", points, manifest=manifest)
    return points, path


class TestParallelDeterminism:
    def test_point_results_identical_workers_2(self):
        config = tiny_config()
        serial = run_comparison_point(config)
        parallel = run_comparison_point(config, workers=2)
        assert parallel.addc_delays == serial.addc_delays
        assert parallel.coolest_delays == serial.coolest_delays
        assert parallel.skipped_repetitions == serial.skipped_repetitions
        # Post-run RNG stream positions match rep by rep: the workers
        # consumed exactly the draws the serial path consumed.
        assert parallel.rng_positions == serial.rng_positions
        assert len(serial.rng_positions) == config.repetitions

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sweep_artifacts_byte_identical(self, tmp_path, workers):
        serial_points, serial_path = _run_sweep_to_file(tmp_path, "serial", 1)
        parallel_points, parallel_path = _run_sweep_to_file(
            tmp_path, f"workers{workers}", workers
        )
        assert parallel_path.read_bytes() == serial_path.read_bytes()
        assert [p.rng_positions for _, p in parallel_points] == [
            p.rng_positions for _, p in serial_points
        ]
        serial_manifest = json.loads(
            manifest_path_for(serial_path).read_text()
        )
        parallel_manifest = json.loads(
            manifest_path_for(parallel_path).read_text()
        )
        # Identical modulo wall-time fields and the recorded worker count
        # — including the merged metric snapshot (counters, histograms).
        assert _volatile_stripped(parallel_manifest) == _volatile_stripped(
            serial_manifest
        )
        assert parallel_manifest["extra"]["workers"] == workers


# --------------------------------------------------------------------- #
# Warm worker pool lifecycle                                            #
# --------------------------------------------------------------------- #


def _pool_square(value):
    return value * value


def _attach_then_die(descriptor):
    attach_segment(descriptor)
    os._exit(17)  # simulates an OOM kill with the mapping still open


def _shm_segments():
    """Names of live repro shared-memory segments (empty off-Linux)."""
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("repro-")
        }
    except OSError:
        return set()


class TestWarmWorkerPool:
    def test_invalid_worker_count_raises(self):
        with pytest.raises(ConfigurationError):
            WarmWorkerPool(0)

    def test_lazy_spawn_submit_rebuild_close(self):
        pool = WarmWorkerPool(2)
        assert not pool.alive  # nothing spawns until the first submit
        assert pool.submit(_pool_square, 7).result() == 49
        assert pool.alive
        # rebuild() replaces the processes in place; the pool object
        # stays valid and the next submit respawns transparently.
        pool.rebuild()
        assert pool.submit(_pool_square, 9).result() == 81
        pool.close()
        assert not pool.alive
        with pytest.raises(RuntimeError):
            pool.submit(_pool_square, 1)
        pool.close()  # idempotent

    def test_context_manager_closes_on_exit(self):
        with WarmWorkerPool(2) as pool:
            assert pool.submit(_pool_square, 3).result() == 9
        assert not pool.alive
        with pytest.raises(RuntimeError):
            pool.submit(_pool_square, 1)


# --------------------------------------------------------------------- #
# Shared-memory topology store                                          #
# --------------------------------------------------------------------- #


class TestSharedArrayStore:
    def test_publish_attach_round_trip_and_unlink(self):
        before = _shm_segments()
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([], dtype=np.int64),
            "c": np.arange(5, dtype=np.int64),
        }
        with SharedArrayStore() as store:
            descriptor = store.publish(arrays)
            views = attach_segment(descriptor)
            assert set(views) == set(arrays)
            for name, array in arrays.items():
                assert views[name].dtype == array.dtype
                assert views[name].shape == array.shape
                np.testing.assert_array_equal(views[name], array)
            # The attach cache returns the same mapping for the same
            # segment instead of re-mapping it.
            assert attach_segment(descriptor) is views
        detach_all()
        # close() unlinked the segment: nothing leaked, nothing to attach.
        assert _shm_segments() == before
        with pytest.raises(FileNotFoundError):
            attach_segment(descriptor)

    def test_close_is_idempotent_and_tolerates_empty(self):
        store = SharedArrayStore()
        store.close()
        store.close()

    def test_worker_crash_leaves_no_segments(self):
        """A worker dying mid-batch must not leak the parent's segment.

        The parent owns every segment it published: after ``rebuild()``
        replaces the crashed processes, ``store.close()`` still unlinks
        everything — /dev/shm ends exactly where it started.
        """
        before = _shm_segments()
        store = SharedArrayStore()
        pool = WarmWorkerPool(2)
        try:
            descriptor = store.publish({"x": np.arange(8.0)})
            with pytest.raises(BrokenProcessPool):
                pool.submit(_attach_then_die, descriptor).result()
            pool.rebuild()
            # The rebuilt pool is immediately usable again.
            assert pool.submit(_pool_square, 5).result() == 25
        finally:
            pool.close()
            store.close()
        assert _shm_segments() == before


# --------------------------------------------------------------------- #
# Batching: one pickle per point, outcomes identical to per-item path   #
# --------------------------------------------------------------------- #


class TestBatching:
    def test_plan_batches_never_spans_points(self):
        executor = ParallelSweepExecutor(2)
        config_a = tiny_config()
        config_b = tiny_config(seed=7)
        items = [SweepWorkItem(0, rep, config_a) for rep in range(3)]
        items += [SweepWorkItem(1, rep, config_b) for rep in range(2)]
        batches = executor._plan_batches(items)
        # Flattened batches preserve exact submission order.
        assert [item for batch in batches for item in batch] == items
        for batch in batches:
            assert len({(i.point_index, i.config) for i in batch}) == 1

    def test_plan_batches_chunks_large_points_for_pipelining(self):
        executor = ParallelSweepExecutor(2)
        items = [SweepWorkItem(0, rep, tiny_config()) for rep in range(8)]
        batches = executor._plan_batches(items)
        # 8 items / (2 * 2 workers) = chunks of 2: the single point is
        # split so the pool is never serialized onto one worker.
        assert len(batches) == 4
        assert all(len(batch) == 2 for batch in batches)

    def test_batch_with_shm_topology_matches_per_item_path(self):
        """Parent-deployed shm topology reproduces worker-deployed runs.

        Runs the batched entry point inline with a published segment and
        compares against ``execute_work_item`` (which deploys its own
        topology from the placement streams): the measurements must be
        indistinguishable, proving the CSR graph round-trip and
        ``install_graph`` rebuild are exact.
        """
        config = tiny_config()
        items = [SweepWorkItem(0, rep, config) for rep in range(2)]
        reference = [execute_work_item(item) for item in items]
        with SharedArrayStore() as store:
            batch = ParallelSweepExecutor._publish_batch(store, items)
            outcomes = execute_work_batch(batch)
        detach_all()
        assert [o.measurement for o in outcomes] == [
            o.measurement for o in reference
        ]
        assert [(o.point_index, o.repetition) for o in outcomes] == [
            (0, 0),
            (0, 1),
        ]


# --------------------------------------------------------------------- #
# Warm executor: byte-identity across reuse, no shm leaks               #
# --------------------------------------------------------------------- #


class TestWarmExecutorDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_context_entered_executor_is_byte_identical(self, workers):
        """A reused warm pool changes wall-clock and nothing else.

        Two sweep points (different configs) exercise batching across
        point boundaries; two consecutive ``run_items`` calls inside one
        ``with`` block exercise pool/store reuse.  Every measurement —
        including post-run RNG stream positions — must equal the serial
        reference on both passes.
        """
        before = _shm_segments()
        config_a = tiny_config()
        config_b = tiny_config(p_t=0.2)
        serial = [
            run_comparison_repetition(config, rep)
            for config in (config_a, config_b)
            for rep in range(2)
        ]
        items = [
            SweepWorkItem(index, rep, config)
            for index, config in enumerate((config_a, config_b))
            for rep in range(2)
        ]
        with ParallelSweepExecutor(workers) as executor:
            first = executor.run_items(items)
            second = executor.run_items(items)  # warm reuse, same pool
        assert [o.measurement for o in first] == serial
        assert [o.measurement for o in second] == serial
        assert [m.rng_positions for m in serial] == [
            o.measurement.rng_positions for o in first
        ]
        assert _shm_segments() == before

    def test_injected_pool_is_borrowed_never_closed(self):
        config = tiny_config()
        items = [SweepWorkItem(0, rep, config) for rep in range(2)]
        serial = [run_comparison_repetition(config, rep) for rep in range(2)]
        with WarmWorkerPool(2) as pool:
            with ParallelSweepExecutor(2, pool=pool) as executor:
                outcomes = executor.run_items(items)
            # Exiting the executor must leave the injected pool warm —
            # it belongs to the caller (e.g. the service daemon).
            assert pool.alive
            assert [o.measurement for o in outcomes] == serial
            # And usable again outside any executor context.
            transient = ParallelSweepExecutor(2, pool=pool).run_items(items)
            assert [o.measurement for o in transient] == serial
        assert not pool.alive

    def test_reentering_executor_raises(self):
        executor = ParallelSweepExecutor(2)
        with executor:
            with pytest.raises(RuntimeError):
                executor.__enter__()


# --------------------------------------------------------------------- #
# Frozen-slot fast-forward: on == off, bit for bit                      #
# --------------------------------------------------------------------- #


class TestFastForwardEquivalence:
    """``fast_forward=True`` must be invisible everywhere but wall-clock.

    Each case runs one collection twice over the same deployment — plain
    loop, then fast-forwarded — and requires the identical
    ``SimulationResult`` *and* identical post-run RNG stream positions:
    every skipped slot consumed exactly the draws the ordinary loop would
    have consumed.
    """

    def _pair(self, run, activity=None, **kwargs):
        config = tiny_config()
        topology = deploy_crn(
            config.deployment_spec(),
            StreamFactory(config.seed).spawn("rep-0"),
            activity=activity,
        )

        def go(fast_forward):
            streams = StreamFactory(config.seed).spawn("rep-0").spawn("algo")
            return run(
                topology, streams, fast_forward=fast_forward, **kwargs
            )

        return go(False), go(True)

    def _assert_identical(self, off, on):
        assert on.result == off.result
        assert on.engine.rng_positions() == off.engine.rng_positions()
        assert off.engine.fastforward_slots == 0

    def test_addc_geometric_bernoulli(self):
        off, on = self._pair(run_addc_collection, with_bounds=False)
        self._assert_identical(off, on)
        # The tiny scenario is dominated by frozen spectrum waits, so the
        # fast path must actually engage here — equality alone would also
        # hold for a fast-forward that never fires.
        assert on.engine.fastforward_slots > 0

    def test_addc_homogeneous_blocking(self):
        off, on = self._pair(
            run_addc_collection, with_bounds=False, blocking="homogeneous"
        )
        self._assert_identical(off, on)

    def test_addc_markov_activity(self):
        off, on = self._pair(
            run_addc_collection,
            with_bounds=False,
            activity=MarkovActivity(0.3, burstiness=4.0),
        )
        self._assert_identical(off, on)

    def test_addc_imperfect_sensing(self):
        off, on = self._pair(
            run_addc_collection,
            with_bounds=False,
            p_false_alarm=0.05,
            p_missed_detection=0.1,
        )
        self._assert_identical(off, on)

    def test_coolest_baseline(self):
        off, on = self._pair(run_coolest_collection)
        self._assert_identical(off, on)


class TestBatchDrawEquivalence:
    """``next_states_batch`` must consume the stream like N serial calls."""

    @pytest.mark.parametrize(
        "model",
        [BernoulliActivity(0.3), MarkovActivity(0.3, burstiness=4.0)],
        ids=["bernoulli", "markov"],
    )
    def test_batch_rows_equal_sequential_calls(self, model):
        count, n = 17, 6
        serial_rng = StreamFactory(5).stream("activity")
        batch_rng = StreamFactory(5).stream("activity")
        states = model.initial_states(n, serial_rng)
        model.initial_states(n, batch_rng)  # keep the streams aligned
        expected = []
        current = states
        for _ in range(count):
            current = model.next_states(current, serial_rng)
            expected.append(current)
        rows = model.next_states_batch(states, batch_rng.random((count, n)))
        np.testing.assert_array_equal(rows, np.array(expected))
        # One (count, n) fill left the generator exactly where count
        # sequential next_states calls left the serial one.
        np.testing.assert_array_equal(
            serial_rng.random(4), batch_rng.random(4)
        )
