"""Tests for delivery timelines and the steady-state rate."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError
from repro.metrics.timeline import delivery_timeline, steady_state_rate
from repro.sim.results import PacketRecord


def record(delivered_slot, packet_id=0):
    return PacketRecord(
        packet_id=packet_id, source=1, birth_slot=0,
        delivered_slot=delivered_slot, hops=1,
    )


class TestDeliveryTimeline:
    def test_simple_windows(self):
        deliveries = [record(0), record(1), record(10), record(25)]
        rates = delivery_timeline(deliveries, window_slots=10)
        # Windows: [0,10) -> 2, [10,20) -> 1, [20,26) -> 1/6.
        assert rates[0] == pytest.approx(0.2)
        assert rates[1] == pytest.approx(0.1)
        assert rates[2] == pytest.approx(1 / 6)

    def test_total_mass_conserved(self):
        deliveries = [record(s, i) for i, s in enumerate([3, 7, 12, 13, 40])]
        rates = delivery_timeline(deliveries, window_slots=8)
        horizon = 41
        windows = [8, 8, 8, 8, 8, 1]
        assert sum(r * w for r, w in zip(rates, windows)) == pytest.approx(5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            delivery_timeline([], 10)
        with pytest.raises(ConfigurationError):
            delivery_timeline([record(1)], 0)


class TestSteadyStateRate:
    def test_plateau_extraction(self):
        # Slow warm-up, fast middle, slow tail.
        deliveries = (
            [record(s, s) for s in range(0, 100, 20)]
            + [record(s, 1000 + s) for s in range(100, 300, 2)]
            + [record(s, 2000 + s) for s in range(300, 400, 25)]
        )
        rate = steady_state_rate(deliveries, window_slots=50)
        assert rate == pytest.approx(0.5, abs=0.1)

    def test_short_run_uses_everything(self):
        deliveries = [record(s, s) for s in range(10)]
        assert steady_state_rate(deliveries, window_slots=100) > 0

    def test_on_a_real_run(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("timeline"),
            blocking="homogeneous",
            with_bounds=True,
        )
        rate = steady_state_rate(outcome.result.deliveries, window_slots=100)
        # The plateau rate beats the run-average (warm-up drags the mean),
        # stays below the hard upper bound W = 1, and above Theorem 2's
        # lower bound.
        assert rate <= 1.0
        assert rate >= outcome.bounds.capacity_fraction
