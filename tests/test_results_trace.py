"""Tests for simulation results, packets, and the trace log."""

from __future__ import annotations

import pytest

from repro.sim.packet import DATA, RREP, RREQ, Packet
from repro.sim.results import PacketRecord, SimulationResult
from repro.sim.trace import TraceEvent, TraceKind, TraceLog


class TestPacket:
    def test_defaults(self):
        packet = Packet(packet_id=1, source=5)
        assert packet.is_data
        assert packet.kind == DATA
        assert packet.route is None

    def test_route_end(self):
        packet = Packet(packet_id=1, source=5, kind=RREQ, route=[5, 3, 0])
        assert not packet.at_route_end
        packet.route_pos = 2
        assert packet.at_route_end

    def test_control_not_data(self):
        assert not Packet(packet_id=1, source=5, kind=RREP).is_data


class TestPacketRecord:
    def test_delay(self):
        record = PacketRecord(
            packet_id=0, source=1, birth_slot=10, delivered_slot=19, hops=3
        )
        assert record.delay_slots == 10


class TestSimulationResult:
    def make_completed(self):
        result = SimulationResult(num_packets=2, slot_duration_ms=1.0)
        result.completed = True
        result.slots_simulated = 10
        result.deliveries = [
            PacketRecord(0, 1, 0, 4, 2),
            PacketRecord(1, 2, 0, 9, 4),
        ]
        result.tx_attempts = {1: 3, 2: 5}
        return result

    def test_delay_and_capacity(self):
        result = self.make_completed()
        assert result.delay_slots == 10
        assert result.delay_ms == 10.0
        assert result.capacity_packets_per_slot == pytest.approx(0.2)

    def test_mean_statistics(self):
        result = self.make_completed()
        assert result.mean_hops == 3.0
        assert result.mean_packet_delay_slots == pytest.approx(7.5)
        assert result.total_transmissions == 8

    def test_incomplete_run_has_no_delay(self):
        result = SimulationResult(num_packets=5, slot_duration_ms=1.0)
        result.slots_simulated = 100
        assert result.delay_slots is None
        assert result.delay_ms is None
        assert result.capacity_packets_per_slot is None
        assert "INCOMPLETE" in result.summary()

    def test_completed_summary(self):
        assert "completed" in self.make_completed().summary()


class TestTraceLog:
    def event(self, slot=0, kind=TraceKind.TX_START, node=1):
        return TraceEvent(slot=slot, kind=kind, node=node)

    def test_append_and_iterate(self):
        log = TraceLog()
        log.record(self.event(0))
        log.record(self.event(1))
        assert len(log) == 2
        assert [e.slot for e in log] == [0, 1]

    def test_cap_keeps_prefix(self):
        log = TraceLog(max_events=2)
        for slot in range(5):
            log.record(self.event(slot))
        assert len(log) == 2
        assert log.truncated
        assert [e.slot for e in log] == [0, 1]

    def test_of_kind_and_for_node(self):
        log = TraceLog()
        log.record(self.event(kind=TraceKind.TX_START, node=1))
        log.record(self.event(kind=TraceKind.FREEZE, node=2))
        assert len(log.of_kind(TraceKind.FREEZE)) == 1
        assert len(log.for_node(1)) == 1

    def test_for_node_matches_both_sides_of_a_tx(self):
        # Regression: a TX event touches transmitter AND receiver; the
        # receiver's view used to come back empty.
        log = TraceLog()
        tx = TraceEvent(slot=3, kind=TraceKind.TX_START, node=1, peer=2)
        log.record(tx)
        assert log.for_node(1) == [tx]  # transmitter side
        assert log.for_node(2) == [tx]  # receiver (peer) side
        assert log.for_node(3) == []

    def test_dropped_counter_and_repr(self):
        log = TraceLog(max_events=2)
        assert log.dropped == 0
        assert not log.truncated
        for slot in range(5):
            log.record(self.event(slot))
        assert log.dropped == 3
        assert log.truncated
        assert repr(log) == "TraceLog(events=2, max_events=2, dropped=3)"

    def test_unbounded_repr(self):
        log = TraceLog()
        log.record(self.event(0))
        assert repr(log) == "TraceLog(events=1, max_events=unbounded, dropped=0)"
