"""Tests for the energy-detection sensing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.sim.engine import SlottedEngine
from repro.spectrum.detection import EnergyDetector, q_function
from repro.spectrum.sensing import CarrierSenseMap


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.6448536) == pytest.approx(0.05, abs=1e-4)
        assert float(q_function(10.0)) < 1e-20

    def test_symmetry(self):
        assert float(q_function(-1.3) + q_function(1.3)) == pytest.approx(1.0)


class TestEnergyDetector:
    def test_false_alarm_falls_with_threshold(self):
        low = EnergyDetector(threshold=1.05, num_samples=200)
        high = EnergyDetector(threshold=1.3, num_samples=200)
        assert high.false_alarm_probability < low.false_alarm_probability

    def test_false_alarm_falls_with_samples(self):
        few = EnergyDetector(threshold=1.1, num_samples=50)
        many = EnergyDetector(threshold=1.1, num_samples=800)
        assert many.false_alarm_probability < few.false_alarm_probability

    def test_detection_rises_with_snr(self):
        detector = EnergyDetector(threshold=1.2, num_samples=200)
        probabilities = detector.detection_probability([0.01, 0.1, 1.0, 10.0])
        assert (np.diff(probabilities) > 0).all()

    def test_strong_signal_always_detected(self):
        detector = EnergyDetector(threshold=1.2, num_samples=200)
        assert float(detector.detection_probability(100.0)) > 0.999999

    def test_snr_falls_with_distance(self):
        detector = EnergyDetector(noise_power=1e-4)
        snr = detector.snr_at(10.0, [5.0, 10.0, 20.0], 4.0)
        assert (np.diff(snr) < 0).all()

    def test_roc_tradeoff(self):
        """Raising the threshold trades false alarms for misses — the ROC
        monotonicity every detector obeys."""
        snr = 0.05
        points = []
        for threshold in (1.02, 1.1, 1.2, 1.3):
            detector = EnergyDetector(threshold=threshold, num_samples=300)
            points.append(
                (
                    detector.false_alarm_probability,
                    float(detector.detection_probability(snr)),
                )
            )
        false_alarms = [p[0] for p in points]
        detections = [p[1] for p in points]
        assert false_alarms == sorted(false_alarms, reverse=True)
        assert detections == sorted(detections, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            EnergyDetector(num_samples=0)
        with pytest.raises(ConfigurationError):
            EnergyDetector(noise_power=0.0)
        with pytest.raises(ConfigurationError):
            EnergyDetector().detection_probability([-1.0])


def run_with_detector(topology, streams, detector, max_slots=300_000):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        detector=detector,
        max_slots=max_slots,
    )
    engine.load_snapshot()
    return engine.run()


class TestDetectorInEngine:
    def test_sharp_detector_behaves_like_perfect_sensing(
        self, tiny_topology, streams
    ):
        # Huge sample count + low noise: the detector is essentially exact.
        detector = EnergyDetector(
            threshold=1.15, num_samples=5000, noise_power=1e-7
        )
        result = run_with_detector(
            tiny_topology, streams.spawn("det-1"), detector
        )
        assert result.completed
        assert result.pu_violations == 0

    def test_deaf_detector_violates_pu_protection(self, tiny_topology, streams):
        # High noise floor: boundary PUs go unheard, violations follow.
        detector = EnergyDetector(
            threshold=1.15, num_samples=200, noise_power=5e-2
        )
        result = run_with_detector(
            tiny_topology, streams.spawn("det-2"), detector
        )
        assert result.completed
        assert result.pu_violations > 0

    def test_paranoid_detector_slows_collection(self, tiny_topology, streams):
        # A hair-trigger threshold false-alarms constantly: no violations,
        # but many lost opportunities.
        sharp = EnergyDetector(threshold=1.15, num_samples=5000, noise_power=1e-7)
        jumpy = EnergyDetector(threshold=1.001, num_samples=100, noise_power=1e-7)
        fast = run_with_detector(tiny_topology, streams.spawn("det-3"), sharp)
        slow = run_with_detector(tiny_topology, streams.spawn("det-4"), jumpy)
        assert slow.completed and fast.completed
        assert slow.delay_slots > fast.delay_slots

    def test_rejects_mean_field(self, tiny_topology, streams):
        from repro.network.topology import CrnTopology  # noqa: F401

        pcr = compute_pcr(PcrParameters(pu_radius=10.0))
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        with pytest.raises(ConfigurationError):
            SlottedEngine(
                topology=tiny_topology,
                sense_map=sense_map,
                policy=AddcPolicy(tree),
                streams=streams.spawn("det-5"),
                blocking="homogeneous",
                homogeneous_p_o=0.1,
                detector=EnergyDetector(),
            )
