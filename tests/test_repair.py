"""Tests for local collection-tree maintenance under node churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.repair import (
    attach_node,
    detach_node,
    orphaned_subtree,
    refresh_depths,
)
from repro.graphs.tree import NodeRole, build_collection_tree

from tests.test_cds import random_udg


def tree_reaches_root(tree, skip=()):
    for node in range(tree.num_nodes):
        if node in skip:
            continue
        seen = set()
        cursor = node
        while cursor != tree.root:
            if cursor in seen or tree.parent[cursor] < 0:
                return False
            seen.add(cursor)
            cursor = tree.parent[cursor]
    return True


class TestDetach:
    def test_dominatee_departure_is_free(self):
        graph = random_udg(30, 42)
        tree = build_collection_tree(graph, 0)
        leaf = next(
            node
            for node in range(1, 30)
            if tree.roles[node] is NodeRole.DOMINATEE
        )
        stranded = detach_node(tree, graph, leaf)
        assert stranded == []
        assert tree.parent[leaf] == -1
        assert tree_reaches_root(tree, skip={leaf})

    def test_dominator_departure_reparents_children(self):
        graph = random_udg(40, 43)
        tree = build_collection_tree(graph, 0)
        dominator = next(
            node
            for node in range(1, 40)
            if tree.roles[node] is NodeRole.DOMINATOR
            and any(tree.parent[c] == node for c in range(40))
        )
        children_before = [
            c for c in range(40) if tree.parent[c] == dominator
        ]
        stranded = detach_node(tree, graph, dominator)
        for child in children_before:
            if child in stranded:
                continue
            assert tree.parent[child] != dominator
            assert graph.has_edge(child, tree.parent[child])
        # A stranded child strands its entire subtree.
        skip = {dominator}
        for child in stranded:
            skip.add(child)
            skip.update(orphaned_subtree(tree, child))
        assert tree_reaches_root(tree, skip=skip)

    def test_root_cannot_leave(self):
        graph = random_udg(10, 44)
        tree = build_collection_tree(graph, 0)
        with pytest.raises(GraphError):
            detach_node(tree, graph, 0)

    def test_no_cycles_after_many_departures(self):
        graph = random_udg(50, 45)
        tree = build_collection_tree(graph, 0)
        rng = np.random.default_rng(1)
        departed = set()
        for _ in range(8):
            candidates = [
                node
                for node in range(1, 50)
                if node not in departed and tree.parent[node] != -1
            ]
            node = int(rng.choice(candidates))
            stranded = detach_node(tree, graph, node)
            departed.add(node)
            # A stranded child strands its entire subtree; clear them all.
            for child in stranded:
                for orphan in [child, *orphaned_subtree(tree, child)]:
                    departed.add(orphan)
                    tree.parent[orphan] = -1
        refresh_depths(tree)
        assert tree_reaches_root(tree, skip=departed)
        for node in range(50):
            if node in departed:
                continue
            if node != tree.root:
                assert tree.depth[node] == tree.depth[tree.parent[node]] + 1


class TestAttach:
    def test_join_attaches_to_backbone(self):
        graph = random_udg(30, 46)
        tree = build_collection_tree(graph, 0)
        # Simulate a join: detach a dominatee and re-attach it.
        leaf = next(
            node
            for node in range(1, 30)
            if tree.roles[node] is NodeRole.DOMINATEE
        )
        detach_node(tree, graph, leaf)
        parent = attach_node(tree, graph, leaf)
        assert graph.has_edge(leaf, parent)
        assert tree.roles[parent] in (NodeRole.DOMINATOR, NodeRole.CONNECTOR)
        assert tree.depth[leaf] == tree.depth[parent] + 1
        assert tree_reaches_root(tree)

    def test_double_attach_rejected(self):
        graph = random_udg(20, 47)
        tree = build_collection_tree(graph, 0)
        with pytest.raises(GraphError):
            attach_node(tree, graph, 5)

    def test_isolated_join_rejected(self):
        # A node adjacent only to dominatees cannot attach locally.
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        tree = build_collection_tree(graph, 0)
        # Node 3 hangs off node 2; detach 3 then strip its backbone access
        # by detaching node 2 as well.
        detach_node(tree, graph, 3)
        detach_node(tree, graph, 2)
        with pytest.raises(GraphError):
            attach_node(tree, graph, 3)


class TestOrphanedSubtree:
    def test_subtree_members(self):
        graph = random_udg(30, 48)
        tree = build_collection_tree(graph, 0)
        sizes = tree.subtree_sizes()
        for node in range(1, 30):
            orphans = orphaned_subtree(tree, node)
            assert len(orphans) == sizes[node] - 1
            for orphan in orphans:
                assert node in tree.path_to_root(orphan)
