"""Tests for repro.harness: checkpoint journals, supervision, crash-resume.

The load-bearing guarantee is that crash-safety never costs determinism: a
sweep killed at any point (SIGKILL mid-record included) and resumed must
produce byte-identical artifacts, RNG stream positions, and merged metric
registries — modulo the ``harness.*`` counters, which deliberately record
the resilience history of *this* run and are excluded from the contract.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro.obs as obs
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    PartialSweepError,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig6 import (
    FIG6_SWEEPS,
    run_fig6_sweep,
    sweep_point_configs,
)
from repro.experiments.io import load_sweep, save_sweep
from repro.experiments.runner import RepetitionMeasurement
from repro.harness import (
    CheckpointWriter,
    FailureRecord,
    ItemTracker,
    RetryPolicy,
    WorkerSupervisor,
    inspect_checkpoint,
    load_checkpoint,
    measurement_from_dict,
    measurement_to_dict,
    run_checkpointed_sweep,
    sweep_fingerprint,
    verify_checkpoint,
)
from repro.obs.recorder import MetricsRecorder

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


def tiny_config(**overrides) -> ExperimentConfig:
    """The same deliberately small scenario the perf tests use."""
    base = dict(
        area=30.0 * 30.0,
        num_pus=4,
        num_sus=20,
        repetitions=2,
        max_slots=200_000,
        seed=20120612,
    )
    base.update(overrides)
    return ExperimentConfig.quick_scale().with_overrides(**base)


def tiny_sweep():
    return dataclasses.replace(FIG6_SWEEPS["fig6c"], values=(0.1, 0.2))


def tiny_points(**overrides):
    return sweep_point_configs(tiny_sweep(), tiny_config(**overrides))


def _measurement(rep: int) -> RepetitionMeasurement:
    return RepetitionMeasurement(
        repetition=rep,
        addc_delay_ms=1234.5678901234 * (rep + 1) / 3.0,
        coolest_delay_ms=None if rep == 3 else 9876.54321 / (rep + 1),
        rng_positions={"addc": {"backoff": f"digest-{rep}"}},
    )


def _artifact_bytes(tmp_path, label, name, points):
    target = tmp_path / f"{label}.json"
    save_sweep(target, name, points)
    return target.read_bytes()


# --------------------------------------------------------------------- #
# Checkpoint journal: round-trip, torn tail, corruption                 #
# --------------------------------------------------------------------- #


class TestJournal:
    def _fresh(self, tmp_path, records=3):
        path = tmp_path / "sweep.checkpoint.ndjson"
        with CheckpointWriter.create(path, "unit", "hash-1", records) as writer:
            for rep in range(records):
                writer.append_measurement(0, rep, _measurement(rep))
        return path

    def test_measurement_json_round_trip_is_bit_exact(self):
        for rep in range(4):
            original = _measurement(rep)
            wire = json.loads(json.dumps(measurement_to_dict(original)))
            assert measurement_from_dict(wire) == original

    def test_round_trip(self, tmp_path):
        path = self._fresh(tmp_path)
        state = load_checkpoint(path)
        assert state.header["schema"] == "checkpoint/v1"
        assert state.header["name"] == "unit"
        assert state.config_hash == "hash-1"
        assert state.header["total_items"] == 3
        assert not state.torn_tail
        assert sorted(state.entries) == [(0, 0), (0, 1), (0, 2)]
        for (point, rep), entry in state.entries.items():
            assert entry.point_index == point
            assert entry.measurement == _measurement(rep)
        assert state.valid_bytes == path.stat().st_size

    def test_failure_records_round_trip(self, tmp_path):
        path = tmp_path / "j.ndjson"
        record = FailureRecord(
            point_index=1,
            repetition=0,
            kind="timeout",
            attempts=3,
            error={"code": "worker-timeout", "type": "X", "message": "m"},
        )
        with CheckpointWriter.create(path, "unit", "h", 2) as writer:
            writer.append_measurement(0, 0, _measurement(0))
            writer.append_failure(record.to_dict())
        state = load_checkpoint(path)
        assert state.failures == [record.to_dict()]
        assert FailureRecord.from_dict(state.failures[0]) == record

    def test_create_refuses_to_clobber(self, tmp_path):
        path = self._fresh(tmp_path)
        with pytest.raises(CheckpointError, match="already exists"):
            CheckpointWriter.create(path, "unit", "hash-1", 3)

    def test_create_fsyncs_the_journal_directory(self, tmp_path, monkeypatch):
        """Regression: the appends fsync the *file*, but the journal's
        existence is a directory entry — creation must flush the parent
        directory too, or a power loss can undo an acknowledged journal."""
        import stat

        dir_fsyncs = []
        real_fsync = os.fsync

        def spying_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                dir_fsyncs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        path = tmp_path / "fresh.ndjson"
        with CheckpointWriter.create(path, "unit", "hash-1", 1) as writer:
            writer.append_measurement(0, 0, _measurement(0))
        assert dir_fsyncs, "journal creation never fsynced its directory"

    def test_append_to_continues_journal(self, tmp_path):
        path = self._fresh(tmp_path, records=2)
        with CheckpointWriter.append_to(load_checkpoint(path)) as writer:
            writer.append_measurement(0, 2, _measurement(2))
        assert sorted(load_checkpoint(path).entries) == [(0, 0), (0, 1), (0, 2)]

    def test_torn_tail_dropped_counted_and_repaired(self, tmp_path):
        path = self._fresh(tmp_path)
        good_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "repetition", "point": 0, "re')
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            state = load_checkpoint(path, repair=False)
        assert state.torn_tail
        assert sorted(state.entries) == [(0, 0), (0, 1), (0, 2)]
        assert state.valid_bytes == good_size
        assert recorder.counters["harness.checkpoint.torn_tail"] == 1
        # repair=False left the file alone; repair=True truncates it.
        assert path.stat().st_size > good_size
        load_checkpoint(path, repair=True)
        assert path.stat().st_size == good_size
        assert not load_checkpoint(path).torn_tail

    def test_valid_final_line_without_newline_is_torn(self, tmp_path):
        path = self._fresh(tmp_path)
        raw = path.read_bytes()
        assert raw.endswith(b"\n")
        path.write_bytes(raw[:-1])
        state = load_checkpoint(path)
        assert state.torn_tail
        assert sorted(state.entries) == [(0, 0), (0, 1)]

    def test_midfile_corruption_raises(self, tmp_path):
        path = self._fresh(tmp_path)
        lines = path.read_bytes().split(b"\n")
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(CheckpointError, match="line 2"):
            load_checkpoint(path)

    def test_wrong_schema_and_shape_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"schema": "trace/v1"}\n')
        with pytest.raises(CheckpointError, match="expected schema"):
            load_checkpoint(path)
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            load_checkpoint(path)
        missing = tmp_path / "missing.ndjson"
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(missing)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = self._fresh(tmp_path, records=1)
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "mystery"}\n')
        with pytest.raises(CheckpointError, match="unknown record kind"):
            load_checkpoint(path)

    def test_duplicate_key_first_wins(self, tmp_path):
        path = self._fresh(tmp_path, records=1)
        with CheckpointWriter.append_to(load_checkpoint(path)) as writer:
            writer.append_measurement(0, 0, _measurement(2))
        state = load_checkpoint(path)
        assert state.entries[(0, 0)].measurement == _measurement(0)

    def test_inspect_summary(self, tmp_path):
        path = self._fresh(tmp_path)
        summary = inspect_checkpoint(path)
        assert summary["schema"] == "checkpoint/v1"
        assert summary["completed_items"] == 3
        assert summary["records_per_point"] == {"0": 3}
        assert summary["torn_tail"] is False

    def test_verify_clean_torn_and_mismatched(self, tmp_path):
        path = self._fresh(tmp_path)
        assert verify_checkpoint(path) == []
        assert verify_checkpoint(path, config_hash="hash-1") == []
        problems = verify_checkpoint(path, config_hash="other")
        assert any("config_hash mismatch" in problem for problem in problems)
        with open(path, "ab") as handle:
            handle.write(b"{half")
        problems = verify_checkpoint(path)
        assert any("torn tail" in problem for problem in problems)


# --------------------------------------------------------------------- #
# Retry policy and tracker state machine (fake clock, no processes)     #
# --------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.5, backoff_factor=2.0, backoff_max_s=30.0
        )
        assert [policy.backoff_s(a) for a in range(1, 9)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            8.0,
            16.0,
            30.0,
            30.0,
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)
        with pytest.raises(ConfigurationError):
            WorkerSupervisor(workers=0)


class TestItemTracker:
    def _tracker(self, **policy_kwargs):
        return ItemTracker(
            index=0, item=object(), policy=RetryPolicy(**policy_kwargs)
        )

    def test_deadline_stamped_and_expired_on_fake_clock(self):
        tracker = self._tracker(timeout_s=5.0)
        tracker.mark_submitted(100.0)
        assert tracker.deadline == 105.0
        assert not tracker.deadline_expired(104.999)
        assert tracker.deadline_expired(105.0)
        untimed = self._tracker()
        untimed.mark_submitted(100.0)
        assert untimed.deadline is None
        assert not untimed.deadline_expired(1e9)

    def test_backoff_moves_not_before(self):
        tracker = self._tracker(max_attempts=3, backoff_base_s=2.0)
        assert tracker.record_failure("error", 10.0, {"message": "x"}) == "retry"
        assert tracker.not_before == 12.0
        assert tracker.record_failure("error", 20.0, {}) == "retry"
        assert tracker.not_before == 24.0

    def test_quarantine_after_max_attempts(self):
        tracker = self._tracker(max_attempts=2)
        assert tracker.record_failure("timeout", 0.0, {}) == "retry"
        assert tracker.record_failure("crash", 1.0, {"message": "boom"}) == (
            "quarantine"
        )
        record = tracker.failure_record()
        assert record.kind == "crash"
        assert record.attempts == 2
        assert record.error == {"message": "boom"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown failure kind"):
            self._tracker().record_failure("meltdown", 0.0, {})


# --------------------------------------------------------------------- #
# Supervisor: inline (workers=1) path with injected clock/sleep         #
# --------------------------------------------------------------------- #


class _Flaky:
    """Callable failing a fixed number of times before succeeding."""

    def __init__(self, failures: int):
        self.remaining = failures
        self.calls = 0

    def __call__(self, item):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise ValueError(f"transient {self.calls}")
        return item * 10


class TestSupervisorInline:
    def _supervisor(self, slept=None, **policy_kwargs):
        return WorkerSupervisor(
            workers=1,
            policy=RetryPolicy(**policy_kwargs),
            clock=lambda: 0.0,
            sleep=(slept.append if slept is not None else (lambda _s: None)),
        )

    def test_retry_then_success_with_backoff_sleeps(self):
        slept = []
        supervisor = self._supervisor(slept, max_attempts=4)
        run = supervisor.run(_Flaky(2), [7])
        assert run.outcomes == [70]
        assert run.failures == []
        assert slept == [0.5, 1.0]
        assert run.stats["retries"] == 2
        assert run.stats["worker_errors"] == 2

    def test_quarantine_then_inline_rescue_succeeds(self):
        supervisor = self._supervisor(max_attempts=2, inline_retry=True)
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            run = supervisor.run(_Flaky(2), [7])
        assert run.outcomes == [70]
        assert run.failures == []
        assert run.stats["quarantined"] == 0
        assert run.stats["inline_rescues"] == 1
        assert recorder.counters["harness.inline_rescues"] == 1
        assert recorder.counters["harness.quarantined"] == 1

    def test_poison_item_stays_quarantined(self):
        supervisor = self._supervisor(max_attempts=3, inline_retry=True)
        run = supervisor.run(_Flaky(99), [7])
        assert run.outcomes == [None]
        assert len(run.failures) == 1
        record = run.failures[0]
        assert record.kind == "error"
        assert record.attempts == 3
        assert record.error["type"] == "ValueError"
        # The inline rescue re-raised too and refreshed the error record.
        assert "transient 4" in record.error["message"]
        assert run.stats["quarantined"] == 1

    def test_on_result_fires_per_completion(self):
        seen = []
        supervisor = self._supervisor(max_attempts=1, inline_retry=False)
        run = supervisor.run(
            lambda item: item + 1,
            [10, 20, 30],
            on_result=lambda index, outcome: seen.append((index, outcome)),
        )
        assert run.outcomes == [11, 21, 31]
        assert seen == [(0, 11), (1, 21), (2, 31)]

    def test_keyboard_interrupt_propagates(self):
        def interrupt(_item):
            raise KeyboardInterrupt

        supervisor = self._supervisor(max_attempts=5)
        with pytest.raises(KeyboardInterrupt):
            supervisor.run(interrupt, [1])


# --------------------------------------------------------------------- #
# Supervisor: process-pool path (spawn-picklable workers below)         #
# --------------------------------------------------------------------- #


def _double_worker(item):
    return item * 2


def _error_if_negative(item):
    if item < 0:
        raise ValueError(f"poison {item}")
    return item * 2


def _exit_if_negative(item):
    if item < 0:
        os._exit(17)  # simulates an OOM kill / segfault
    return item * 2


def _sleep_if_negative(item):
    if item < 0:
        time.sleep(60.0)
    return item * 2


def _parent_only_worker(item):
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("only works in the parent")
    return item * 2


class TestSupervisorPool:
    def test_results_in_submission_order(self):
        supervisor = WorkerSupervisor(workers=2)
        run = supervisor.run(_double_worker, list(range(6)))
        assert run.outcomes == [0, 2, 4, 6, 8, 10]
        assert run.failures == []

    def test_worker_error_retried_then_quarantined(self):
        supervisor = WorkerSupervisor(
            workers=2,
            policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.0, inline_retry=False
            ),
        )
        run = supervisor.run(_error_if_negative, [1, -2, 3])
        assert run.outcomes == [2, None, 6]
        assert len(run.failures) == 1
        record = run.failures[0]
        assert record.kind == "error"
        assert record.attempts == 2
        assert record.error["type"] == "ValueError"
        assert "poison -2" in record.error["message"]
        assert run.stats["retries"] == 1
        assert run.stats["worker_errors"] == 2

    def test_pool_crash_is_attributed_by_isolation_probe(self):
        supervisor = WorkerSupervisor(
            workers=2,
            policy=RetryPolicy(
                max_attempts=1, backoff_base_s=0.0, inline_retry=False
            ),
        )
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            run = supervisor.run(_exit_if_negative, [1, -2, 3, 4])
        # Exactly the poison item is charged; innocents all completed.
        assert run.outcomes == [2, None, 6, 8]
        assert len(run.failures) == 1
        record = run.failures[0]
        assert record.kind == "crash"
        assert record.error["code"] == "worker-crash"
        assert run.stats["worker_crashes"] == 1
        assert run.stats["pool_rebuilds"] >= 1
        assert recorder.counters["harness.pool_rebuilds"] >= 1

    def test_deadline_timeout_quarantines_and_spares_innocents(self):
        supervisor = WorkerSupervisor(
            workers=2,
            # The deadline is stamped at submit time, so it must absorb
            # the spawn pool's startup cost as well as the work itself.
            policy=RetryPolicy(
                timeout_s=8.0,
                max_attempts=1,
                backoff_base_s=0.0,
                inline_retry=False,
            ),
        )
        run = supervisor.run(_sleep_if_negative, [1, -2, 3])
        assert run.outcomes == [2, None, 6]
        assert len(run.failures) == 1
        assert run.failures[0].kind == "timeout"
        assert run.failures[0].error["code"] == "worker-timeout"
        assert run.stats["timeouts"] == 1

    def test_inline_rescue_recovers_pool_only_failures(self):
        supervisor = WorkerSupervisor(
            workers=2,
            policy=RetryPolicy(
                max_attempts=1, backoff_base_s=0.0, inline_retry=True
            ),
        )
        run = supervisor.run(_parent_only_worker, [1, 2])
        assert run.outcomes == [2, 4]
        assert run.failures == []
        assert run.stats["inline_rescues"] == 2


# --------------------------------------------------------------------- #
# Checkpointed sweeps: byte-identity across kill/resume                 #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def plain_points():
    """The uninterrupted reference run (computed once per module)."""
    return run_fig6_sweep(tiny_sweep(), tiny_config())


class TestCheckpointedSweep:
    def test_full_run_matches_plain_driver(self, tmp_path, plain_points):
        journal = tmp_path / "sweep.ckpt"
        result = run_checkpointed_sweep(
            "fig6c", tiny_points(), checkpoint_path=journal, workers=1
        )
        assert result.status == "complete"
        assert result.complete
        assert result.cached_items == 0
        assert not result.resumed
        assert _artifact_bytes(
            tmp_path, "harness", "fig6c", result.points
        ) == _artifact_bytes(tmp_path, "plain", "fig6c", plain_points)
        assert verify_checkpoint(journal, config_hash=result.config_hash) == []

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_kill_and_resume_is_byte_identical(
        self, tmp_path, plain_points, workers
    ):
        journal = tmp_path / "sweep.ckpt"
        run_checkpointed_sweep(
            "fig6c", tiny_points(), checkpoint_path=journal, workers=workers
        )
        # Simulate a kill after one durable record: keep the header plus
        # one record, then tear the next record mid-line like SIGKILL does.
        lines = journal.read_bytes().split(b"\n")
        journal.write_bytes(
            b"\n".join(lines[:2]) + b"\n" + lines[2][: len(lines[2]) // 2]
        )
        resumed = run_checkpointed_sweep(
            "fig6c",
            tiny_points(),
            checkpoint_path=journal,
            resume=True,
            workers=workers,
        )
        assert resumed.resumed
        assert resumed.cached_items == 1
        assert resumed.status == "complete"
        assert _artifact_bytes(
            tmp_path, f"resumed-{workers}", "fig6c", resumed.points
        ) == _artifact_bytes(tmp_path, f"plain-{workers}", "fig6c", plain_points)
        # RNG stream positions replay exactly (never serialized by
        # save_sweep, so asserted separately).
        assert [point.rng_positions for _, point in resumed.points] == [
            point.rng_positions for _, point in plain_points
        ]

    def test_injected_warm_pool_survives_run_and_resume(
        self, tmp_path, plain_points
    ):
        """One caller-owned pool serves a kill-and-resume cycle warm.

        The supervisor must borrow an injected pool — never close it — so
        a daemon can reuse one set of spawned workers across jobs; the
        resumed sweep on the same warm pool stays byte-identical.
        """
        from repro.perf import WarmWorkerPool

        journal = tmp_path / "sweep.ckpt"
        with WarmWorkerPool(2) as pool:
            run_checkpointed_sweep(
                "fig6c",
                tiny_points(),
                checkpoint_path=journal,
                workers=2,
                pool=pool,
            )
            assert pool.alive  # borrowed, not closed
            lines = journal.read_bytes().split(b"\n")
            journal.write_bytes(b"\n".join(lines[:2]) + b"\n")
            resumed = run_checkpointed_sweep(
                "fig6c",
                tiny_points(),
                checkpoint_path=journal,
                resume=True,
                workers=2,
                pool=pool,
            )
            assert pool.alive
        assert resumed.resumed
        assert resumed.status == "complete"
        assert _artifact_bytes(
            tmp_path, "warm-resumed", "fig6c", resumed.points
        ) == _artifact_bytes(tmp_path, "warm-plain", "fig6c", plain_points)
        assert [point.rng_positions for _, point in resumed.points] == [
            point.rng_positions for _, point in plain_points
        ]

    def test_resume_with_mismatched_sweep_refused(self, tmp_path):
        journal = tmp_path / "sweep.ckpt"
        run_checkpointed_sweep(
            "fig6c", tiny_points(), checkpoint_path=journal, workers=1
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            run_checkpointed_sweep(
                "fig6c",
                tiny_points(seed=999),
                checkpoint_path=journal,
                resume=True,
                workers=1,
            )

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        journal = tmp_path / "sweep.ckpt"
        run_checkpointed_sweep(
            "fig6c", tiny_points(), checkpoint_path=journal, workers=1
        )
        with pytest.raises(CheckpointError, match="resume it or delete it"):
            run_checkpointed_sweep(
                "fig6c", tiny_points(), checkpoint_path=journal, workers=1
            )

    def test_fingerprint_ignores_workers_and_policy(self):
        points = tiny_points()
        reps = [config.repetitions for _, config in points]
        assert sweep_fingerprint("fig6c", points, reps) == sweep_fingerprint(
            "fig6c", points, reps
        )
        assert sweep_fingerprint("fig6c", points, reps) != sweep_fingerprint(
            "fig6c", points, [reps[0] + 1] + reps[1:]
        )

    def test_metric_registry_identical_modulo_harness_counters(self, tmp_path):
        def _sanitized(recorder):
            snapshot = json.loads(json.dumps(recorder.snapshot()))
            for section in snapshot.values():
                for name in [key for key in section if key.startswith("harness.")]:
                    del section[name]
            return snapshot

        uninterrupted = MetricsRecorder()
        with obs.use_recorder(uninterrupted):
            full = run_checkpointed_sweep(
                "fig6c",
                tiny_points(),
                checkpoint_path=tmp_path / "full.ckpt",
                workers=2,
            )
        journal = tmp_path / "kill.ckpt"
        with obs.use_recorder(MetricsRecorder()):
            run_checkpointed_sweep(
                "fig6c", tiny_points(), checkpoint_path=journal, workers=2
            )
        lines = journal.read_bytes().split(b"\n")
        journal.write_bytes(b"\n".join(lines[:3]) + b"\n")
        resumed_recorder = MetricsRecorder()
        with obs.use_recorder(resumed_recorder):
            resumed = run_checkpointed_sweep(
                "fig6c",
                tiny_points(),
                checkpoint_path=journal,
                resume=True,
                workers=2,
            )
        assert resumed.cached_items == 2
        assert _sanitized(resumed_recorder) == _sanitized(uninterrupted)
        assert _artifact_bytes(
            tmp_path, "resumed", "fig6c", resumed.points
        ) == _artifact_bytes(tmp_path, "full", "fig6c", full.points)


# --------------------------------------------------------------------- #
# Graceful degradation: quarantined items and partial artifacts         #
# --------------------------------------------------------------------- #


class TestPartialSweeps:
    def _poisoned_run(self, tmp_path, monkeypatch, allow=True):
        import repro.perf.executor as executor_module

        real = executor_module.execute_work_item

        def poisoned(item):
            if item.point_index == 1 and item.repetition == 0:
                raise ValueError("deterministic poison")
            return real(item)

        monkeypatch.setattr(executor_module, "execute_work_item", poisoned)
        return run_checkpointed_sweep(
            "fig6c",
            tiny_points(),
            checkpoint_path=tmp_path / "sweep.ckpt",
            workers=1,
            policy=RetryPolicy(
                max_attempts=2, backoff_base_s=0.0, inline_retry=False
            ),
        )

    def test_partial_status_failures_and_survivors(self, tmp_path, monkeypatch):
        result = self._poisoned_run(tmp_path, monkeypatch)
        assert result.status == "partial"
        assert not result.complete
        assert len(result.failures) == 1
        record = result.failures[0]
        assert (record.point_index, record.repetition) == (1, 0)
        assert record.attempts == 2
        # The poisoned point survives on its remaining repetition.
        assert len(result.points) == 2
        assert len(result.points[1][1].addc_delays) == 1
        # The journal carries the quarantine record for the audit trail.
        state = load_checkpoint(tmp_path / "sweep.ckpt")
        assert len(state.failures) == 1
        assert state.failures[0]["kind"] == "error"

    def test_partial_artifact_refused_without_opt_in(
        self, tmp_path, monkeypatch
    ):
        result = self._poisoned_run(tmp_path, monkeypatch)
        artifact = tmp_path / "sweep.json"
        save_sweep(
            artifact,
            "fig6c",
            result.points,
            status=result.status,
            failures=[record.to_dict() for record in result.failures],
        )
        payload = json.loads(artifact.read_text())
        assert payload["status"] == "partial"
        assert payload["failures"][0]["point"] == 1
        with pytest.raises(PartialSweepError, match="allow_partial"):
            load_sweep(artifact)
        name, points = load_sweep(artifact, allow_partial=True)
        assert name == "fig6c"
        assert len(points) == 2

    def test_complete_artifact_has_no_new_keys(self, tmp_path, plain_points):
        artifact = tmp_path / "sweep.json"
        save_sweep(artifact, "fig6c", plain_points, status="complete")
        assert sorted(json.loads(artifact.read_text())) == ["name", "points"]
        with pytest.raises(ConfigurationError):
            save_sweep(artifact, "fig6c", plain_points, status="mostly-done")

    def test_run_fig6_sweep_raises_on_partial_without_opt_in(
        self, tmp_path, monkeypatch
    ):
        import repro.perf.executor as executor_module

        real = executor_module.execute_work_item

        def poisoned(item):
            if item.point_index == 0 and item.repetition == 1:
                raise ValueError("deterministic poison")
            return real(item)

        monkeypatch.setattr(executor_module, "execute_work_item", poisoned)
        policy = RetryPolicy(
            max_attempts=1, backoff_base_s=0.0, inline_retry=False
        )
        with pytest.raises(PartialSweepError, match="allow_partial"):
            run_fig6_sweep(
                tiny_sweep(),
                tiny_config(),
                checkpoint_path=tmp_path / "a.ckpt",
                policy=policy,
            )
        points = run_fig6_sweep(
            tiny_sweep(),
            tiny_config(),
            checkpoint_path=tmp_path / "b.ckpt",
            policy=policy,
            allow_partial=True,
        )
        assert len(points) == 2


# --------------------------------------------------------------------- #
# Real signals: SIGINT flush and SIGKILL crash-resume, in subprocesses  #
# --------------------------------------------------------------------- #

_DRIVER = textwrap.dedent(
    """
    import dataclasses
    import os
    import signal
    import sys
    import threading
    import time

    sys.path.insert(0, {src!r})

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.fig6 import FIG6_SWEEPS, sweep_point_configs
    from repro.harness import run_checkpointed_sweep

    def records(journal):
        try:
            with open(journal, "rb") as handle:
                return max(handle.read().count(b"\\n") - 1, 0)
        except OSError:
            return 0

    # The __main__ guard is load-bearing: spawn pool workers re-import
    # this module, and without it each worker would re-run the sweep.
    if __name__ == "__main__":
        journal = sys.argv[1]
        mode = sys.argv[2]

        config = ExperimentConfig.quick_scale().with_overrides(
            area=2500.0,
            num_pus=12,
            num_sus=60,
            repetitions=4,
            max_slots=2_000_000,
            seed=20120612,
        )
        sweep = dataclasses.replace(FIG6_SWEEPS["fig6c"], values=(0.1, 0.2))
        points = sweep_point_configs(sweep, config)

        if mode == "sigint":
            def killer():
                while records(journal) < 2:
                    time.sleep(0.002)
                os.kill(os.getpid(), signal.SIGINT)

            threading.Thread(target=killer, daemon=True).start()

        try:
            run_checkpointed_sweep(
                "driver", points, checkpoint_path=journal, workers=2
            )
        except KeyboardInterrupt:
            sys.exit(130)
        sys.exit(0)
    """
)


def _driver_points():
    config = ExperimentConfig.quick_scale().with_overrides(
        area=2500.0,
        num_pus=12,
        num_sus=60,
        repetitions=4,
        max_slots=2_000_000,
        seed=20120612,
    )
    sweep = dataclasses.replace(FIG6_SWEEPS["fig6c"], values=(0.1, 0.2))
    return sweep_point_configs(sweep, config)


@pytest.fixture(scope="module")
def driver_reference(tmp_path_factory):
    """The uninterrupted artifact the killed-and-resumed runs must match."""
    tmp = tmp_path_factory.mktemp("driver-reference")
    points = run_checkpointed_sweep(
        "driver", _driver_points(), checkpoint_path=tmp / "ref.ckpt", workers=2
    ).points
    target = tmp / "reference.json"
    save_sweep(target, "driver", points)
    return target.read_bytes()


def _journal_records(path) -> int:
    try:
        return max(path.read_bytes().count(b"\n") - 1, 0)
    except OSError:
        return 0


class TestSignals:
    def _write_driver(self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text(_DRIVER.format(src=SRC_DIR))
        return script

    def _resume_and_compare(self, tmp_path, journal, reference_bytes):
        resumed = run_checkpointed_sweep(
            "driver",
            _driver_points(),
            checkpoint_path=journal,
            resume=True,
            workers=2,
        )
        assert resumed.resumed
        assert resumed.cached_items >= 2
        assert resumed.status == "complete"
        target = tmp_path / "resumed.json"
        save_sweep(target, "driver", resumed.points)
        assert target.read_bytes() == reference_bytes
        return resumed

    def test_sigint_flushes_journal_and_resumes(
        self, tmp_path, driver_reference
    ):
        journal = tmp_path / "sigint.ckpt"
        process = subprocess.run(
            [sys.executable, str(self._write_driver(tmp_path)), str(journal), "sigint"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert process.returncode == 130, process.stderr
        # The journal survived the interrupt with every acknowledged
        # record intact and loadable.
        state = load_checkpoint(journal, repair=True)
        assert len(state.entries) >= 2
        assert len(state.entries) < 8, "interrupt arrived after completion"
        self._resume_and_compare(tmp_path, journal, driver_reference)

    def test_sigkill_mid_sweep_resumes_byte_identical(
        self, tmp_path, driver_reference
    ):
        journal = tmp_path / "sigkill.ckpt"
        process = subprocess.Popen(
            [sys.executable, str(self._write_driver(tmp_path)), str(journal), "plain"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 300.0
            while _journal_records(journal) < 2:
                if time.monotonic() > deadline:
                    raise AssertionError("driver never journalled 2 records")
                if process.poll() is not None:
                    raise AssertionError(
                        f"driver exited early ({process.returncode})"
                    )
                time.sleep(0.002)
            # SIGKILL the whole session: the parent and its pool workers
            # die with no chance to flush anything.
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == -signal.SIGKILL
        assert _journal_records(journal) >= 2
        resumed = self._resume_and_compare(tmp_path, journal, driver_reference)
        assert resumed.cached_items < 8
