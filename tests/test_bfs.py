"""Tests for BFS layering, parents and rank order."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.bfs import UNREACHED, bfs_layers, bfs_order, bfs_parents
from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


class TestLayers:
    def test_path(self):
        assert bfs_layers(path_graph(4), 0) == [0, 1, 2, 3]

    def test_unreachable(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert bfs_layers(graph, 0) == [0, 1, UNREACHED]

    def test_root_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_layers(Graph(2), 5)

    def test_layers_differ_by_at_most_one_on_edges(self):
        graph = Graph(6)
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        for u, v in edges:
            graph.add_edge(u, v)
        layers = bfs_layers(graph, 0)
        for u, v in edges:
            assert abs(layers[u] - layers[v]) <= 1


class TestParents:
    def test_root_is_own_parent(self):
        assert bfs_parents(path_graph(3), 0)[0] == 0

    def test_parent_is_one_layer_up(self):
        graph = Graph(5)
        for u, v in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]:
            graph.add_edge(u, v)
        layers = bfs_layers(graph, 0)
        parents = bfs_parents(graph, 0)
        for node in range(1, 5):
            assert layers[parents[node]] == layers[node] - 1

    def test_unreachable_parent(self):
        graph = Graph(2)
        assert bfs_parents(graph, 0)[1] == UNREACHED


class TestOrder:
    def test_sorted_by_layer_then_id(self):
        graph = Graph(5)
        for u, v in [(0, 2), (0, 4), (2, 1), (4, 3)]:
            graph.add_edge(u, v)
        order = bfs_order(graph, 0)
        assert order == [0, 2, 4, 1, 3]

    def test_excludes_unreachable(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert bfs_order(graph, 0) == [0, 1]
