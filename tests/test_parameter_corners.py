"""Corner-of-parameter-space tests that no other file pins down."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pcr import PcrParameters, compute_pcr
from repro.errors import PcrDomainError
from repro.routing.coolest import run_coolest_collection
from repro.routing.unicast import UnicastPolicy


class TestPcrDomainFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=2.05, max_value=8.0),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=-10.0, max_value=20.0),
        st.floats(min_value=-10.0, max_value=20.0),
    )
    def test_corrected_bounds_always_valid(
        self, alpha, pu_power, su_power, eta_p_db, eta_s_db
    ):
        """The safe and exact zeta bounds never leave their domain and
        always produce kappa >= 1 with the primary/secondary structure of
        Eq. 16 intact."""
        for variant in ("safe", "exact"):
            result = compute_pcr(
                PcrParameters(
                    alpha=alpha,
                    pu_power=pu_power,
                    su_power=su_power,
                    pu_radius=10.0,
                    su_radius=10.0,
                    eta_p_db=eta_p_db,
                    eta_s_db=eta_s_db,
                    zeta_bound=variant,
                )
            )
            assert result.kappa >= 1.0
            assert result.kappa == max(
                result.primary_term, result.secondary_term
            )
            assert result.pcr == pytest.approx(result.kappa * 10.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=2.05, max_value=8.0))
    def test_paper_bound_raises_exactly_where_c2_dies(self, alpha):
        from repro.core.pcr import zeta_series_bound
        import math

        c2 = 6.0 + 6.0 * (math.sqrt(3.0) / 2.0) ** (-alpha) * zeta_series_bound(
            alpha, "paper"
        )
        params = PcrParameters(alpha=alpha, zeta_bound="paper")
        if c2 <= 0:
            with pytest.raises(PcrDomainError):
                compute_pcr(params)
        else:
            assert compute_pcr(params).kappa >= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=2.1, max_value=4.1),
        st.floats(min_value=0.0, max_value=15.0),
    )
    def test_paper_pcr_below_corrected_pcr(self, alpha, eta_db):
        """The flawed bound always *under*-sizes the sensing range."""
        base = dict(
            alpha=alpha,
            pu_radius=10.0,
            su_radius=10.0,
            eta_p_db=eta_db,
            eta_s_db=eta_db,
        )
        paper = compute_pcr(PcrParameters(zeta_bound="paper", **base)).pcr
        exact = compute_pcr(PcrParameters(zeta_bound="exact", **base)).pcr
        safe = compute_pcr(PcrParameters(zeta_bound="safe", **base)).pcr
        assert paper < exact < safe


class TestCoolestCsmaRange:
    def test_pcr_csma_baseline_is_collision_light(self, quick_topology, streams):
        """Giving Coolest the PCR for SU sensing (the pure-routing
        comparison) removes nearly all its hidden-terminal losses."""
        r_csma = run_coolest_collection(
            quick_topology, streams.spawn("cr-r"), blocking="homogeneous"
        )
        pcr_csma = run_coolest_collection(
            quick_topology,
            streams.spawn("cr-pcr"),
            blocking="homogeneous",
            csma_range=r_csma.pcr.pcr,
        )
        assert pcr_csma.result.completed
        assert pcr_csma.result.collisions <= r_csma.result.collisions
        assert pcr_csma.sense_map.su_csma_range == pytest.approx(r_csma.pcr.pcr)


class TestUnicastSameSource:
    def test_one_source_many_destinations(self, tiny_topology, streams):
        from tests.test_unicast import run_unicast as run_unicast_engine

        flows = [(5, 10), (5, 20), (5, 3)]
        policy, result = run_unicast_engine(
            tiny_topology, streams.spawn("multi-dest"), flows
        )
        assert result.completed
        assert result.delivered == 3
        for index, (source, destination) in enumerate(flows):
            route = policy.route_of(index)
            assert route[0] == source and route[-1] == destination
