"""Tests for the named random-stream factory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import StreamFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "pu-activity") == derive_seed(7, "pu-activity")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_returns_64_bit_value(self):
        value = derive_seed(123456789, "stream")
        assert 0 <= value < 2**64

    @given(st.integers(), st.text(max_size=50))
    def test_stable_under_any_inputs(self, seed, name):
        assert derive_seed(seed, name) == derive_seed(seed, name)


class TestStreamFactory:
    def test_same_name_same_state(self):
        factory = StreamFactory(42)
        a = factory.stream("x").random(5)
        b = factory.stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        factory = StreamFactory(42)
        a = factory.stream("x").random(5)
        b = factory.stream("y").random(5)
        assert not np.allclose(a, b)

    def test_request_order_irrelevant(self):
        first = StreamFactory(1)
        second = StreamFactory(1)
        a1 = first.stream("a").random()
        _ = second.stream("b").random()
        a2 = second.stream("a").random()
        assert a1 == a2

    def test_spawn_changes_streams(self):
        factory = StreamFactory(5)
        child = factory.spawn("rep-0")
        assert factory.stream("x").random() != child.stream("x").random()

    def test_spawn_deterministic(self):
        a = StreamFactory(5).spawn("rep-1").stream("x").random()
        b = StreamFactory(5).spawn("rep-1").stream("x").random()
        assert a == b

    def test_seed_property_and_repr(self):
        factory = StreamFactory(9)
        assert factory.seed == 9
        assert "9" in repr(factory)


@pytest.mark.parametrize("seed", [0, 1, 2**63, -5])
def test_factory_accepts_any_integer_seed(seed):
    StreamFactory(seed).stream("s").random()
