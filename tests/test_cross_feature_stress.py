"""Cross-feature stress matrix.

Hypothesis draws random *combinations* of engine features — blocking
model, channel count and strategy, packet length, fairness, routing
structure — and every drawn combination must still satisfy the core
invariants: the run completes, packets are conserved, and the accounting
adds up.  This is where feature-interaction bugs (like the
transmit-and-receive-in-one-slot deactivation race the multi-channel work
uncovered) get caught.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.collector import run_addc_collection
from repro.experiments.config import ExperimentConfig
from repro.network.deployment import deploy_crn
from repro.rng import StreamFactory


@pytest.fixture(scope="module")
def stress_topology():
    config = ExperimentConfig(
        area=35.0 * 35.0, num_pus=8, num_sus=40, repetitions=1
    )
    return deploy_crn(config.deployment_spec(), StreamFactory(77).spawn("stress"))


feature_combo = st.fixed_dictionaries(
    {
        "blocking": st.sampled_from(["geometric", "homogeneous"]),
        "num_channels": st.sampled_from([1, 2, 3]),
        "channel_strategy": st.sampled_from(
            ["random-idle", "sticky", "least-blocked", "adaptive"]
        ),
        "packet_slots": st.sampled_from([1, 2]),
        "fairness_wait": st.booleans(),
        "use_cds_tree": st.booleans(),
        "seed": st.integers(0, 2**31 - 1),
    }
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(feature_combo)
def test_any_feature_combination_upholds_invariants(stress_topology, combo):
    seed = combo.pop("seed")
    # Multi-slot packets under geometric p_t = 0.3 can starve; give those
    # combos the mean-field model where the math stays mild.
    if combo["packet_slots"] > 1 and combo["num_channels"] == 1:
        combo["blocking"] = "homogeneous"
    outcome = run_addc_collection(
        stress_topology,
        StreamFactory(seed).spawn("combo"),
        with_bounds=False,
        max_slots=400_000,
        **combo,
    )
    result = outcome.result
    assert result.completed, combo
    # Conservation.
    assert sorted(r.source for r in result.deliveries) == list(
        stress_topology.secondary.su_ids()
    )
    total_hops = sum(r.hops for r in result.deliveries)
    assert sum(result.tx_successes.values()) == total_hops
    assert result.total_transmissions == total_hops + result.collisions
    # Peak backlog is bounded by the subtree sizes of the routing tree.
    sizes = outcome.tree.subtree_sizes()
    for node, peak in result.peak_queue_lengths.items():
        assert peak <= sizes[node]
    # Accounting sanity.
    assert result.handoffs >= 0 and result.pu_violations >= 0
    assert result.delay_slots >= max(outcome.tree.depth)
