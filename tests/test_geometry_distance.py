"""Tests for Euclidean distance helpers."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.geometry.distance import (
    distances_from,
    euclidean,
    pairwise_distances,
    within_radius_mask,
)

coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
point = st.tuples(coordinate, coordinate)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_zero_distance(self):
        assert euclidean((1.5, -2.0), (1.5, -2.0)) == 0.0

    @given(point, point)
    def test_symmetry(self, a, b):
        assert euclidean(a, b) == euclidean(b, a)

    @given(point, point)
    def test_non_negative(self, a, b):
        assert euclidean(a, b) >= 0.0

    @given(point, point, point)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


class TestDistancesFrom:
    def test_matches_scalar_function(self):
        positions = np.array([[0.0, 0.0], [1.0, 1.0], [-3.0, 4.0]])
        result = distances_from((1.0, 0.0), positions)
        expected = [euclidean((1.0, 0.0), p) for p in positions]
        assert np.allclose(result, expected)

    def test_empty_positions(self):
        assert distances_from((0.0, 0.0), np.empty((0, 2))).shape == (0,)


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        positions = rng.random((10, 2)) * 100
        matrix = pairwise_distances(positions)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matches_scalar(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert pairwise_distances(positions)[0, 1] == 5.0


class TestWithinRadiusMask:
    def test_inclusive_boundary(self):
        positions = np.array([[3.0, 4.0], [6.0, 8.0]])
        mask = within_radius_mask((0.0, 0.0), positions, 5.0)
        assert mask.tolist() == [True, False]

    def test_zero_radius_only_self(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0]])
        mask = within_radius_mask((0.0, 0.0), positions, 0.0)
        assert mask.tolist() == [True, False]
