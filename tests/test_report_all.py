"""Tests for the one-call report generator."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report_all import generate_report


@pytest.fixture(scope="module")
def small_report(tmp_path_factory):
    base = ExperimentConfig.quick_scale().with_overrides(
        repetitions=1, num_sus=50, num_pus=10, area=40.0 * 40.0
    )
    path = tmp_path_factory.mktemp("report") / "report.md"
    document = generate_report(base, sweeps=["fig6c"], output_path=path)
    return document, path


class TestGenerateReport:
    def test_contains_every_section(self, small_report):
        document, _ = small_report
        assert "# Reproduction report" in document
        assert "Figure 4" in document
        assert "Figure 6 (c)" in document
        assert "Theorem-2 bound" in document

    def test_written_file_matches(self, small_report):
        document, path = small_report
        assert path.read_text() == document

    def test_tables_carry_numbers(self, small_report):
        document, _ = small_report
        assert "mean reduction" in document
        assert "ADDC" in document and "Coolest" in document
