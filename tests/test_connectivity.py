"""Tests for connectivity predicates."""

from __future__ import annotations

from repro.graphs.connectivity import (
    connected_component,
    connected_subgraph_nodes,
    is_connected,
)
from repro.graphs.graph import Graph


class TestIsConnected:
    def test_trivial_cases(self):
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))

    def test_two_isolated_nodes(self):
        assert not is_connected(Graph(2))

    def test_connected_path(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert is_connected(graph)

    def test_two_components(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        assert not is_connected(graph)


class TestConnectedComponent:
    def test_component_content(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        assert connected_component(graph, 0) == {0, 1}
        assert connected_component(graph, 3) == {2, 3}


class TestConnectedSubgraph:
    def test_empty_is_connected(self):
        assert connected_subgraph_nodes(Graph(3), [])

    def test_induced_subgraph(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert connected_subgraph_nodes(graph, [0, 1, 2])
        # 0 and 3 are connected in the graph but not within the subset.
        assert not connected_subgraph_nodes(graph, [0, 3])
