"""Tests for the scenario and save-sweep CLI surfaces."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestScenarioCommand:
    def test_listing(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "paper-default" in out
        assert "whitespace-4ch" in out

    def test_run_quiet_rural(self, capsys):
        assert main(["scenario", "quiet-rural"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_unknown_scenario(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["scenario", "atlantis"])


class TestFig6Save:
    def test_save_round_trip(self, capsys, tmp_path):
        from repro.experiments.io import load_sweep

        target = tmp_path / "fig6c.json"
        code = main(
            [
                "fig6",
                "c",
                "--scale",
                "quick",
                "--repetitions",
                "1",
                "--save",
                str(target),
            ]
        )
        assert code == 0
        assert "saved to" in capsys.readouterr().out
        name, points = load_sweep(target)
        assert name == "fig6c"
        assert len(points) == 4
        for _, point in points:
            assert point.addc_delay_ms.mean > 0
