"""Tests for fairness accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.fairness import jain_index, per_source_delay_spread, transmission_share
from repro.errors import ConfigurationError


class TestJainIndex:
    def test_perfectly_even(self):
        assert jain_index([2.0, 2.0, 2.0, 2.0]) == 1.0

    def test_single_user_monopoly(self):
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_all_zero_is_even(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_single_value(self):
        assert jain_index([5.0]) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_scale_invariance(self):
        values = [1.0, 2.0, 3.0]
        assert jain_index(values) == pytest.approx(
            jain_index([10 * v for v in values])
        )

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([-1.0])


class TestTransmissionShare:
    def test_monopoly(self):
        assert transmission_share({1: 10, 2: 0}) == 1.0

    def test_even_split(self):
        assert transmission_share({1: 5, 2: 5}) == 0.5

    def test_empty(self):
        assert transmission_share({}) == 0.0


class TestDelaySpread:
    def test_uniform(self):
        assert per_source_delay_spread([3.0, 3.0, 3.0]) == 1.0

    def test_skewed(self):
        assert per_source_delay_spread([1.0, 1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            per_source_delay_spread([])
