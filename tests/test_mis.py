"""Tests for the maximal-independent-set dominator selection."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.graphs.mis import maximal_independent_set


def random_connected_graph(num_nodes: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    graph = Graph(num_nodes)
    # Random spanning tree first (guarantees connectivity) ...
    for node in range(1, num_nodes):
        graph.add_edge(node, int(rng.integers(0, node)))
    # ... plus random extra edges.
    for _ in range(num_nodes):
        u, v = rng.integers(0, num_nodes, size=2)
        if u != v and not graph.has_edge(int(u), int(v)):
            graph.add_edge(int(u), int(v))
    return graph


class TestMisProperties:
    def test_root_always_selected_first(self):
        graph = random_connected_graph(20, 1)
        assert maximal_independent_set(graph, 0)[0] == 0

    def test_path_graph(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert maximal_independent_set(graph, 0) == [0, 2]

    def test_star_graph(self):
        graph = Graph(5)
        for leaf in range(1, 5):
            graph.add_edge(0, leaf)
        assert maximal_independent_set(graph, 0) == [0]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(0, 2**31 - 1))
    def test_independence_and_maximality(self, num_nodes, seed):
        graph = random_connected_graph(num_nodes, seed)
        selected = set(maximal_independent_set(graph, 0))
        # Independence: no two selected nodes are adjacent.
        for node in selected:
            assert not any(nbr in selected for nbr in graph.neighbors(node))
        # Maximality (= domination): every node is selected or has a
        # selected neighbor.
        for node in graph.nodes():
            assert node in selected or any(
                nbr in selected for nbr in graph.neighbors(node)
            )

    def test_deterministic(self):
        graph = random_connected_graph(30, 7)
        assert maximal_independent_set(graph, 0) == maximal_independent_set(graph, 0)
