"""Tests for centrally scheduled aggregation (the MLAS setting)."""

from __future__ import annotations

import pytest

from repro.core.aggregation import run_aggregation
from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.scheduling.centralized import run_centralized_collection


class TestCentralizedAggregation:
    def test_one_transmission_per_node(self, tiny_topology, streams):
        result = run_centralized_collection(
            tiny_topology, streams.spawn("cagg-1"), aggregation=True
        )
        assert result.completed
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        assert result.delivered == tree.root_degree()
        assert all(count == 1 for count in result.tx_successes.values())
        assert len(result.tx_successes) == tree.num_nodes - 1

    def test_faster_than_centralized_collection(self, quick_topology, streams):
        aggregate = run_centralized_collection(
            quick_topology, streams.spawn("cagg-2"), aggregation=True
        )
        collect = run_centralized_collection(
            quick_topology, streams.spawn("cagg-3"), aggregation=False
        )
        assert aggregate.completed and collect.completed
        assert aggregate.delay_slots < collect.delay_slots

    def test_scheduled_beats_or_matches_async_aggregation(
        self, quick_topology, streams
    ):
        scheduled = run_centralized_collection(
            quick_topology, streams.spawn("cagg-4"), aggregation=True
        )
        distributed = run_aggregation(quick_topology, streams.spawn("cagg-5"))
        assert scheduled.completed and distributed.completed
        # The oracle schedule can only help (same seed-family PU noise
        # differs, so allow a thin noise margin).
        assert scheduled.delay_slots <= distributed.delay_slots * 1.15

    def test_multiple_packets_rejected(self, tiny_topology, streams):
        from repro.core.pcr import PcrParameters, compute_pcr
        from repro.scheduling.centralized import CentralizedScheduler
        from repro.spectrum.sensing import CarrierSenseMap

        pcr = compute_pcr(PcrParameters(pu_radius=10.0))
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        scheduler = CentralizedScheduler(
            tiny_topology,
            tree,
            sense_map,
            streams.spawn("cagg-6"),
            aggregation=True,
        )
        with pytest.raises(ConfigurationError):
            scheduler.load_snapshot(packets_per_su=2)
