"""Tests for multi-slot transmissions and the spectrum-handoff rule."""

from __future__ import annotations

import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.graphs.tree import build_collection_tree
from repro.network.deployment import deploy_crn
from repro.network.primary import MarkovActivity
from repro.sim.engine import SlottedEngine
from repro.spectrum.sensing import CarrierSenseMap


def make_engine(topology, streams, packet_slots, max_slots=500_000, **kwargs):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        packet_slots=packet_slots,
        max_slots=max_slots,
        **kwargs,
    )
    engine.load_snapshot()
    return engine


class TestMultiSlotBasics:
    def test_completes_with_two_slot_packets(self, tiny_topology, streams):
        result = make_engine(tiny_topology, streams.spawn("ms-1"), 2).run()
        assert result.completed
        assert result.delivered == tiny_topology.secondary.num_sus

    def test_single_slot_never_hands_off(self, tiny_topology, streams):
        result = make_engine(tiny_topology, streams.spawn("ms-2"), 1).run()
        assert result.handoffs == 0

    def test_handoffs_occur_with_long_packets(self, tiny_topology, streams):
        result = make_engine(tiny_topology, streams.spawn("ms-3"), 2).run()
        assert result.completed
        assert result.handoffs > 0

    def test_longer_packets_cost_more(self, tiny_topology, streams):
        short = make_engine(tiny_topology, streams.spawn("ms-4"), 1).run()
        long = make_engine(tiny_topology, streams.spawn("ms-5"), 2).run()
        assert long.delay_slots > short.delay_slots

    def test_stand_alone_network_needs_no_handoff(
        self, standalone_topology, streams
    ):
        # No PUs: long packets are free (only the channel-holding time).
        result = make_engine(standalone_topology, streams.spawn("ms-6"), 3).run()
        assert result.completed
        assert result.handoffs == 0
        assert result.collisions == 0

    def test_invalid_length(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            make_engine(tiny_topology, streams.spawn("ms-7"), 0)

    def test_deterministic(self, tiny_topology, streams):
        delays = [
            make_engine(tiny_topology, streams.spawn("ms-8"), 2).run().delay_slots
            for _ in range(2)
        ]
        assert delays[0] == delays[1]


class TestBurstinessInteraction:
    def test_bursty_pus_rescue_long_packets(self, streams):
        """With the same stationary activity, bursty (Markov) PU traffic
        leaves long free windows, so multi-slot packets hand off less per
        delivered packet than under i.i.d. activity."""
        config = ExperimentConfig(
            area=30.0 * 30.0, num_pus=6, num_sus=25, p_t=0.3, repetitions=1
        )
        iid_topology = deploy_crn(
            config.deployment_spec(), streams.spawn("burst-iid")
        )
        bursty_topology = deploy_crn(
            config.deployment_spec(),
            streams.spawn("burst-markov"),
            activity=MarkovActivity(p_t=0.3, burstiness=12.0),
        )
        iid = make_engine(iid_topology, streams.spawn("burst-run-iid"), 3).run()
        bursty = make_engine(
            bursty_topology, streams.spawn("burst-run-markov"), 3
        ).run()
        assert bursty.completed
        assert iid.completed
        per_packet_iid = iid.handoffs / iid.delivered
        per_packet_bursty = bursty.handoffs / bursty.delivered
        assert per_packet_bursty < per_packet_iid
