"""Tests for statistical inference helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.metrics.stats import (
    bootstrap_confidence_interval,
    comparison_significant,
    t_confidence_interval,
)
from repro.rng import StreamFactory


class TestTInterval:
    def test_contains_sample_mean(self):
        ci = t_confidence_interval([10.0, 12.0, 11.0, 13.0])
        assert ci.contains(ci.mean)
        assert ci.lower < ci.mean < ci.upper

    def test_known_value(self):
        # n=4, mean 11.5, s = sqrt(5/3), t(0.975, 3) = 3.1824.
        ci = t_confidence_interval([10.0, 12.0, 11.0, 13.0])
        stderr = np.std([10, 12, 11, 13], ddof=1) / 2.0
        assert ci.half_width == pytest.approx(3.1824 * stderr, rel=1e-3)

    def test_wider_at_higher_confidence(self):
        values = [10.0, 12.0, 11.0, 13.0, 9.5]
        assert (
            t_confidence_interval(values, 0.99).half_width
            > t_confidence_interval(values, 0.90).half_width
        )

    def test_coverage_simulation(self):
        # ~95% of intervals over N(0,1) samples should contain 0.
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(0.0, 1.0, size=10)
            if t_confidence_interval(sample.tolist()).contains(0.0):
                hits += 1
        assert 0.90 <= hits / trials <= 0.99

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            t_confidence_interval([1.0])
        with pytest.raises(ConfigurationError):
            t_confidence_interval([1.0, float("nan")])
        with pytest.raises(ConfigurationError):
            t_confidence_interval([1.0, 2.0], confidence=1.5)


class TestBootstrap:
    def test_contains_mean_for_tight_sample(self):
        ci = bootstrap_confidence_interval([5.0, 5.1, 4.9, 5.05, 4.95])
        assert ci.contains(5.0)
        assert ci.half_width < 0.2

    def test_deterministic_given_injected_rng(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        factory = StreamFactory(seed=7)
        a = bootstrap_confidence_interval(values, rng=factory.stream("bootstrap"))
        b = bootstrap_confidence_interval(values, rng=factory.stream("bootstrap"))
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_seed_fallback_is_deprecated_but_reproducible(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        with pytest.warns(DeprecationWarning):
            a = bootstrap_confidence_interval(values, seed=7)
        with pytest.warns(DeprecationWarning):
            b = bootstrap_confidence_interval(values, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_seed_fallback_matches_equivalent_generator(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        with pytest.warns(DeprecationWarning):
            legacy = bootstrap_confidence_interval(values, seed=7)
        injected = bootstrap_confidence_interval(
            values, rng=np.random.default_rng(7)
        )
        assert (legacy.lower, legacy.upper) == (injected.lower, injected.upper)

    def test_default_path_matches_legacy_seed_zero(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        default = bootstrap_confidence_interval(values)
        explicit = bootstrap_confidence_interval(
            values, rng=np.random.default_rng(0)
        )
        assert (default.lower, default.upper) == (explicit.lower, explicit.upper)

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([1.0, 2.0], resamples=10)
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval(
                [1.0, 2.0], seed=1, rng=np.random.default_rng(1)
            )

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3),
            min_size=3,
            max_size=20,
        )
    )
    def test_interval_brackets_ordered(self, values):
        ci = bootstrap_confidence_interval(values)
        assert ci.lower <= ci.upper
        assert min(values) - 1e-9 <= ci.lower
        assert ci.upper <= max(values) + 1e-9


class TestComparison:
    def test_clear_gap_is_significant(self):
        significant, p_value = comparison_significant(
            [10.0, 11.0, 10.5, 10.2], [30.0, 32.0, 31.0, 29.5]
        )
        assert significant
        assert p_value < 0.01

    def test_noise_is_not(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10, 1, size=5).tolist()
        b = rng.normal(10, 1, size=5).tolist()
        significant, p_value = comparison_significant(a, b)
        assert not significant
        assert p_value > 0.05

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            comparison_significant([1.0], [2.0, 3.0])
        with pytest.raises(ConfigurationError):
            comparison_significant([1.0, 2.0], [2.0, 3.0], alpha=0.0)
