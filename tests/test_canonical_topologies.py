"""Tree construction on canonical (adversarial) topologies.

Random unit-disk graphs exercise the average case; these hand-built
shapes — chains, stars, cliques, grids — pin the corner cases the greedy
constructions must survive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.cds import build_cds
from repro.graphs.connectivity import connected_subgraph_nodes
from repro.graphs.graph import Graph
from repro.graphs.tree import NodeRole, build_collection_tree


def chain(n):
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def star(n):
    graph = Graph(n)
    for leaf in range(1, n):
        graph.add_edge(0, leaf)
    return graph


def clique(n):
    graph = Graph(n)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def grid(rows, cols):
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def assert_valid_tree(graph, tree):
    assert tree.parent[0] == 0
    for node in range(1, graph.num_nodes):
        assert graph.has_edge(node, tree.parent[node])
        assert tree.depth[node] == tree.depth[tree.parent[node]] + 1
        path = tree.path_to_root(node)
        assert path[-1] == 0


class TestChain:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 20])
    def test_chain(self, n):
        graph = chain(n)
        tree = build_collection_tree(graph, 0)
        assert_valid_tree(graph, tree)
        # A chain's MIS from node 0 takes every other node.
        cds = build_cds(graph, 0)
        assert cds.dominators == list(range(0, n, 2))

    def test_chain_depth_is_linear(self):
        tree = build_collection_tree(chain(21), 0)
        assert max(tree.depth) == 20


class TestStar:
    def test_star_from_center(self):
        graph = star(12)
        tree = build_collection_tree(graph, 0)
        assert_valid_tree(graph, tree)
        # Center dominates everything: no connectors, depth 1.
        assert max(tree.depth) == 1
        assert all(
            tree.roles[leaf] is NodeRole.DOMINATEE for leaf in range(1, 12)
        )

    def test_star_from_leaf(self):
        # Rooting at a leaf: the leaf dominates the center; other leaves
        # need the center as a connector.
        graph = star(8)
        # Relabel so the root (node 0) is a leaf: build star at node 3.
        relabeled = Graph(8)
        for leaf in [0, 1, 2, 4, 5, 6, 7]:
            relabeled.add_edge(3, leaf)
        tree = build_collection_tree(relabeled, 0)
        assert_valid_tree(relabeled, tree)
        assert tree.roles[3] is NodeRole.CONNECTOR
        assert max(tree.depth) == 2


class TestClique:
    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_clique(self, n):
        graph = clique(n)
        tree = build_collection_tree(graph, 0)
        assert_valid_tree(graph, tree)
        # The root dominates everyone directly.
        assert max(tree.depth) == 1
        cds = build_cds(graph, 0)
        assert cds.dominators == [0]
        assert cds.connectors == []


class TestGrid:
    def test_grid_tree_valid_and_dominating(self):
        graph = grid(6, 7)
        tree = build_collection_tree(graph, 0)
        assert_valid_tree(graph, tree)
        cds = build_cds(graph, 0)
        backbone = set(cds.backbone)
        dominators = set(cds.dominators)
        for node in graph.nodes():
            assert node in backbone or any(
                neighbor in dominators for neighbor in graph.neighbors(node)
            )
        assert connected_subgraph_nodes(graph, sorted(backbone))

    def test_grid_mis_is_independent(self):
        graph = grid(5, 5)
        cds = build_cds(graph, 0)
        dominators = set(cds.dominators)
        for node in dominators:
            assert not any(
                neighbor in dominators for neighbor in graph.neighbors(node)
            )


class TestValidatorNegativeControl:
    def test_r_csma_produces_real_sir_violations(self, quick_topology, streams):
        """Negative control for the Lemma 3 check: with carrier sensing at
        r instead of the PCR, the validator must catch hidden-terminal SIR
        violations (otherwise the positive test proves nothing)."""
        from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
        from repro.routing.coolest import CoolestPolicy
        from repro.sim.engine import SlottedEngine
        from repro.spectrum.sensing import CarrierSenseMap
        from repro.spectrum.sir import SirValidator

        pcr = compute_pcr(
            PcrParameters(
                alpha=4.0,
                pu_power=10.0,
                su_power=10.0,
                pu_radius=10.0,
                su_radius=10.0,
                eta_p_db=8.0,
                eta_s_db=8.0,
            )
        )
        sense_map = CarrierSenseMap(
            quick_topology,
            pu_protection_range=pcr.pcr,
            su_csma_range=quick_topology.secondary.radius,
        )
        validator = SirValidator(
            alpha=4.0,
            eta_p=db_to_linear(8.0),
            eta_s=db_to_linear(8.0),
            pu_power=10.0,
            su_power=10.0,
        )
        positions = quick_topology.secondary.positions
        violations = [0]

        def hook(engine):
            links = [
                (positions[tx], positions[rx])
                for tx, rx in engine.last_slot_su_links
            ]
            if len(links) < 2:
                return
            report = validator.validate(pu_links=[], su_links=links)
            if not report.su_ok:
                violations[0] += 1

        policy = CoolestPolicy(quick_topology, 0.3, route_discovery=False)
        engine = SlottedEngine(
            topology=quick_topology,
            sense_map=sense_map,
            policy=policy,
            streams=streams.spawn("negative-control"),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            slot_hook=hook,
            max_slots=200_000,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert violations[0] > 0
        assert result.collisions > 0
