"""Tests for the centralized oracle scheduler baseline."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import SimulationError
from repro.scheduling.centralized import run_centralized_collection


class TestCentralizedScheduler:
    def test_collects_everything(self, tiny_topology, streams):
        result = run_centralized_collection(
            tiny_topology, streams.spawn("central-1")
        )
        assert result.completed
        assert result.delivered == tiny_topology.secondary.num_sus
        assert sorted(r.source for r in result.deliveries) == list(
            tiny_topology.secondary.su_ids()
        )

    def test_oracle_never_wastes_transmissions(self, tiny_topology, streams):
        result = run_centralized_collection(
            tiny_topology, streams.spawn("central-2")
        )
        # Coordinated scheduling is loss-free: attempts equal successes.
        assert result.collisions == 0
        assert result.total_transmissions == sum(result.tx_successes.values())
        assert result.total_transmissions == sum(
            r.hops for r in result.deliveries
        )

    def test_at_least_as_fast_as_addc(self, quick_topology, streams):
        central = run_centralized_collection(
            quick_topology, streams.spawn("central-3")
        )
        addc = run_addc_collection(
            quick_topology, streams.spawn("central-3-addc"), with_bounds=False
        )
        assert central.completed and addc.result.completed
        # Global knowledge and synchronization can only help; allow a thin
        # noise margin (different PU activity draws).
        assert central.delay_slots <= addc.result.delay_slots * 1.1

    def test_addc_within_constant_factor(self, quick_topology, streams):
        """The practical meaning of Theorem 2: distributed asynchronous
        operation costs a constant factor over the centralized optimum."""
        central = run_centralized_collection(
            quick_topology, streams.spawn("central-4")
        )
        addc = run_addc_collection(
            quick_topology, streams.spawn("central-4-addc"), with_bounds=False
        )
        assert addc.result.delay_slots <= 20 * central.delay_slots

    def test_deterministic(self, tiny_topology, streams):
        results = [
            run_centralized_collection(
                tiny_topology, streams.spawn("central-5")
            ).delay_slots
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_single_use_and_workload_required(self, tiny_topology, streams):
        from repro.core.pcr import PcrParameters, compute_pcr
        from repro.graphs.tree import build_collection_tree
        from repro.scheduling.centralized import CentralizedScheduler
        from repro.spectrum.sensing import CarrierSenseMap

        pcr = compute_pcr(PcrParameters(pu_radius=10.0))
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        scheduler = CentralizedScheduler(
            tiny_topology, tree, sense_map, streams.spawn("central-6")
        )
        with pytest.raises(SimulationError):
            scheduler.run()
        scheduler.load_snapshot()
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.run()
