"""Tests for runtime node departures (mid-run churn with live repair)."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError, SimulationError


class TestRuntimeDepartures:
    def test_run_completes_with_losses_accounted(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("dep-1"),
            blocking="homogeneous",
            departure_schedule={50: [5], 300: [9, 14]},
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        # A scheduled leaver may already have been partitioned away by an
        # earlier departure, in which case its departure is a no-op.
        assert 1 <= result.nodes_departed <= 3
        # A departed source's packet survives if it escaped up the tree
        # before the departure, so losses count *stranded* packets — at
        # least one here, and the books must balance exactly.
        assert result.packets_lost >= 1
        n = quick_topology.secondary.num_sus
        assert result.delivered + result.packets_lost == n

    def test_departure_before_any_slot(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("dep-2"),
            blocking="homogeneous",
            departure_schedule={0: [7]},
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        assert result.packets_lost >= 1

    def test_no_departures_is_lossless(self, quick_topology, streams):
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("dep-3"),
            blocking="homogeneous",
            with_bounds=False,
        )
        assert outcome.result.packets_lost == 0
        assert outcome.result.nodes_departed == 0

    def test_relay_departure_loses_queued_traffic(self, quick_topology, streams):
        """Killing a busy relay mid-run loses more packets than killing a
        leaf: whatever sat in its queue dies with it."""
        tree_probe = run_addc_collection(
            quick_topology,
            streams.spawn("dep-4"),
            blocking="homogeneous",
            with_bounds=False,
        )
        sizes = tree_probe.tree.subtree_sizes()
        relay = max(
            range(1, tree_probe.tree.num_nodes), key=lambda node: sizes[node]
        )
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("dep-5"),
            blocking="homogeneous",
            departure_schedule={200: [relay]},
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        assert result.packets_lost >= 1
        n = quick_topology.secondary.num_sus
        assert result.delivered + result.packets_lost == n

    def test_survivors_reroute_around_departure(self, quick_topology, streams):
        """A departed relay's children keep delivering through their new
        parents whenever the repair finds one."""
        probe = run_addc_collection(
            quick_topology,
            streams.spawn("dep-6"),
            blocking="homogeneous",
            with_bounds=False,
        )
        children = probe.tree.children()
        relay = next(
            node
            for node in range(1, probe.tree.num_nodes)
            if len(children[node]) >= 2
        )
        outcome = run_addc_collection(
            quick_topology,
            streams.spawn("dep-7"),
            blocking="homogeneous",
            departure_schedule={1: [relay]},
            with_bounds=False,
        )
        result = outcome.result
        assert result.completed
        delivered_sources = {record.source for record in result.deliveries}
        rerouted = [
            child for child in children[relay] if child in delivered_sources
        ]
        # In this dense deployment at least one child finds a new parent.
        assert rerouted

    def test_bad_schedules_rejected(self, quick_topology, streams):
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                quick_topology,
                streams.spawn("dep-8"),
                departure_schedule={10: [0]},  # the base station
                with_bounds=False,
            )
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                quick_topology,
                streams.spawn("dep-9"),
                departure_schedule={-3: [5]},
                with_bounds=False,
            )

    def test_policy_without_hook_rejected(self, quick_topology, streams):
        # Coolest grew departure hooks with the fault subsystem, so a
        # bare stub stands in for a policy that lacks them.
        from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
        from repro.graphs.tree import build_collection_tree
        from repro.sim.engine import SlottedEngine
        from repro.spectrum.sensing import CarrierSenseMap

        class HooklessPolicy:
            fairness_wait = False

            def __init__(self, tree):
                self._tree = tree

            def next_hop(self, node, packet):
                return self._tree.parent[node]

            def describe(self):
                return "hookless"

        pcr = compute_pcr(PcrParameters(pu_radius=10.0))
        sense_map = CarrierSenseMap(quick_topology, pcr.pcr)
        tree = build_collection_tree(
            quick_topology.secondary.graph,
            quick_topology.secondary.base_station,
        )
        policy = HooklessPolicy(tree)
        engine = SlottedEngine(
            topology=quick_topology,
            sense_map=sense_map,
            policy=policy,
            streams=streams.spawn("dep-10"),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            departure_schedule={5: [3]},
            max_slots=100_000,
        )
        engine.load_snapshot()
        with pytest.raises(SimulationError):
            engine.run()

    def test_deterministic_with_departures(self, quick_topology, streams):
        results = [
            run_addc_collection(
                quick_topology,
                streams.spawn("dep-11"),
                blocking="homogeneous",
                departure_schedule={100: [4]},
                with_bounds=False,
            ).result
            for _ in range(2)
        ]
        assert results[0].delay_slots == results[1].delay_slots
        assert results[0].packets_lost == results[1].packets_lost
