"""Tests for the multi-channel extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError
from repro.geometry.distance import euclidean
from repro.network.channels import ChannelPlan


class TestChannelPlan:
    def test_single(self):
        plan = ChannelPlan.single(5)
        assert plan.num_channels == 1
        assert plan.num_pus == 5
        assert plan.channel_loads().tolist() == [5]

    def test_balanced(self):
        plan = ChannelPlan.balanced(10, 3)
        assert plan.channel_loads().tolist() == [4, 3, 3]

    def test_uniform_covers_channels(self):
        rng = np.random.default_rng(0)
        plan = ChannelPlan.uniform(500, 4, rng)
        loads = plan.channel_loads()
        assert loads.sum() == 500
        assert (loads > 80).all()  # roughly even

    def test_pus_on_channel(self):
        plan = ChannelPlan(2, np.array([0, 1, 0, 1, 1]))
        assert plan.pus_on_channel(0).tolist() == [0, 2]
        assert plan.pus_on_channel(1).tolist() == [1, 3, 4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelPlan(0, np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            ChannelPlan(2, np.array([0, 2]))
        with pytest.raises(ConfigurationError):
            ChannelPlan(2, np.zeros((2, 2), dtype=int))
        with pytest.raises(ConfigurationError):
            ChannelPlan(2, np.array([0])).pus_on_channel(5)


class TestMultiChannelCollection:
    def test_completes_on_every_channel_count(self, tiny_topology, streams):
        for channels in (1, 2, 4):
            outcome = run_addc_collection(
                tiny_topology,
                streams.spawn(f"mc-{channels}"),
                num_channels=channels,
                with_bounds=False,
            )
            assert outcome.result.completed
            assert outcome.result.delivered == tiny_topology.secondary.num_sus

    def test_more_channels_reduce_delay(self, quick_topology, streams):
        delays = {}
        for channels in (1, 4):
            outcome = run_addc_collection(
                quick_topology,
                streams.spawn(f"mc-delay-{channels}"),
                num_channels=channels,
                with_bounds=False,
            )
            delays[channels] = outcome.result.delay_slots
        # Splitting the PUs over 4 channels raises the per-channel
        # opportunity probability exponentially; the delay drop is large.
        assert delays[4] < delays[1] / 2

    def test_deterministic(self, tiny_topology, streams):
        results = [
            run_addc_collection(
                tiny_topology,
                streams.spawn("mc-det"),
                num_channels=3,
                with_bounds=False,
            ).result.delay_slots
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_no_same_channel_csma_violations(self, tiny_topology, streams):
        """Concurrent same-channel transmitters stay outside each other's
        CSMA range; different channels may overlap freely."""
        from repro.core.addc import AddcPolicy
        from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
        from repro.graphs.tree import build_collection_tree
        from repro.network.channels import ChannelPlan
        from repro.sim.engine import SlottedEngine
        from repro.spectrum.sensing import CarrierSenseMap

        pcr = compute_pcr(
            PcrParameters(
                alpha=4.0,
                pu_power=10.0,
                su_power=10.0,
                pu_radius=10.0,
                su_radius=10.0,
                eta_p_db=8.0,
                eta_s_db=8.0,
            )
        )
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        plan = ChannelPlan.balanced(tiny_topology.primary.num_pus, 3)
        positions = tiny_topology.secondary.positions
        violations = []
        cross_channel_overlaps = 0

        def hook(engine):
            nonlocal cross_channel_overlaps
            links = engine.last_slot_su_links
            channels = engine.last_slot_su_channels
            for i in range(len(links)):
                for j in range(i + 1, len(links)):
                    close = (
                        euclidean(positions[links[i][0]], positions[links[j][0]])
                        <= sense_map.su_csma_range
                    )
                    if not close:
                        continue
                    if channels[i] == channels[j]:
                        violations.append(engine.slot)
                    else:
                        cross_channel_overlaps += 1

        engine = SlottedEngine(
            topology=tiny_topology,
            sense_map=sense_map,
            policy=AddcPolicy(tree),
            streams=streams.spawn("mc-inv"),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            channel_plan=plan,
            slot_hook=hook,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert violations == []
        # Multi-channel concurrency actually happened.
        assert cross_channel_overlaps > 0

    def test_plan_size_mismatch_rejected(self, tiny_topology, streams):
        from repro.core.addc import AddcPolicy
        from repro.core.pcr import PcrParameters, compute_pcr
        from repro.graphs.tree import build_collection_tree
        from repro.sim.engine import SlottedEngine
        from repro.spectrum.sensing import CarrierSenseMap

        pcr = compute_pcr(PcrParameters(pu_radius=10.0))
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        with pytest.raises(ConfigurationError):
            SlottedEngine(
                topology=tiny_topology,
                sense_map=sense_map,
                policy=AddcPolicy(tree),
                streams=streams.spawn("mc-bad"),
                channel_plan=ChannelPlan.balanced(
                    tiny_topology.primary.num_pus + 3, 2
                ),
            )
