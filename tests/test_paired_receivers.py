"""Tests for the fixed-partner PU receiver model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.primary import BernoulliActivity, PrimaryNetwork


def make_network(paired=None):
    rng = np.random.default_rng(0)
    positions = rng.random((8, 2)) * 50.0
    return PrimaryNetwork(
        positions=positions,
        power=10.0,
        radius=10.0,
        activity=BernoulliActivity(0.3),
        paired_receivers=paired,
    )


class TestPairedReceivers:
    def test_fixed_partners_returned(self):
        rng = np.random.default_rng(1)
        positions = rng.random((8, 2)) * 50.0
        partners = positions + rng.uniform(-5, 5, size=(8, 2)) / np.sqrt(2)
        network = PrimaryNetwork(
            positions=positions,
            power=10.0,
            radius=10.0,
            activity=BernoulliActivity(0.3),
            paired_receivers=partners,
        )
        out = network.sample_receivers(np.array([2, 5]), rng)
        assert np.allclose(out, partners[[2, 5]])
        # Calls are idempotent — fixed partners, no randomness consumed.
        again = network.sample_receivers(np.array([2, 5]), rng)
        assert np.allclose(out, again)

    def test_random_model_varies(self):
        network = make_network()
        rng = np.random.default_rng(2)
        first = network.sample_receivers(np.array([0]), rng)
        second = network.sample_receivers(np.array([0]), rng)
        assert not np.allclose(first, second)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_network(paired=np.zeros((3, 2)))

    def test_out_of_radius_partner_rejected(self):
        rng = np.random.default_rng(3)
        positions = rng.random((8, 2)) * 50.0
        partners = positions.copy()
        partners[0, 0] += 25.0  # far beyond R = 10
        with pytest.raises(ConfigurationError):
            make_network(paired=partners)

    def test_probe_works_with_paired_receivers(self, streams):
        """The Lemma-2 probe runs identically over fixed PU links."""
        from repro.core.collector import run_addc_collection
        from repro.experiments.config import ExperimentConfig
        from repro.geometry.region import SquareRegion
        from repro.network.secondary import SecondaryNetwork
        from repro.network.topology import CrnTopology
        from repro.network.deployment import deploy_crn

        config = ExperimentConfig(
            area=30.0 * 30.0, num_pus=6, num_sus=25, repetitions=1
        )
        base = deploy_crn(config.deployment_spec(), streams.spawn("paired"))
        rng = np.random.default_rng(4)
        offsets = rng.uniform(-4.0, 4.0, size=base.primary.positions.shape)
        paired = PrimaryNetwork(
            positions=base.primary.positions,
            power=base.primary.power,
            radius=base.primary.radius,
            activity=BernoulliActivity(0.3),
            paired_receivers=base.primary.positions + offsets / np.sqrt(2),
        )
        topology = CrnTopology(
            region=base.region, primary=paired, secondary=base.secondary
        )
        outcome = run_addc_collection(
            topology, streams.spawn("paired-run"), with_bounds=False
        )
        assert outcome.result.completed
