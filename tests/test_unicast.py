"""Tests for unicast flows over the ADDC MAC."""

from __future__ import annotations

import pytest

from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError
from repro.routing.unicast import UnicastPolicy
from repro.sim.engine import SlottedEngine
from repro.spectrum.sensing import CarrierSenseMap


def run_unicast(topology, streams, flows, routing="min-hop", **engine_kwargs):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    policy = UnicastPolicy(topology, flows, routing=routing)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=policy,
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        max_slots=engine_kwargs.pop("max_slots", 200_000),
        **engine_kwargs,
    )
    engine.load_packets(policy.build_workload())
    return policy, engine.run()


class TestRoutes:
    def test_min_hop_routes_are_shortest(self, quick_topology):
        from repro.graphs.bfs import bfs_layers

        flows = [(5, 12), (3, 20), (7, 1)]
        policy = UnicastPolicy(quick_topology, flows)
        graph = quick_topology.secondary.graph
        for index, (source, destination) in enumerate(flows):
            route = policy.route_of(index)
            assert route[0] == source and route[-1] == destination
            layers = bfs_layers(graph, source)
            assert len(route) - 1 == layers[destination]
            for a, b in zip(route, route[1:]):
                assert graph.has_edge(a, b)

    def test_coolest_routes_valid(self, quick_topology):
        policy = UnicastPolicy(quick_topology, [(5, 12)], routing="coolest")
        route = policy.route_of(0)
        assert route[0] == 5 and route[-1] == 12

    def test_validation(self, quick_topology):
        with pytest.raises(ConfigurationError):
            UnicastPolicy(quick_topology, [])
        with pytest.raises(ConfigurationError):
            UnicastPolicy(quick_topology, [(5, 5)])
        with pytest.raises(ConfigurationError):
            UnicastPolicy(quick_topology, [(0, 5)])
        with pytest.raises(ConfigurationError):
            UnicastPolicy(quick_topology, [(5, 9999)])
        with pytest.raises(ConfigurationError):
            UnicastPolicy(quick_topology, [(5, 6)], routing="wormhole")


class TestUnicastRuns:
    def test_all_flows_delivered(self, tiny_topology, streams):
        flows = [(1, 10), (5, 20), (7, 3), (12, 25)]
        policy, result = run_unicast(
            tiny_topology, streams.spawn("uni-1"), flows
        )
        assert result.completed
        assert result.delivered == len(flows)
        # Delivery records carry the flow sources.
        assert sorted(r.source for r in result.deliveries) == sorted(
            s for s, _ in flows
        )

    def test_hops_match_route_length(self, tiny_topology, streams):
        flows = [(1, 10), (5, 20)]
        policy, result = run_unicast(
            tiny_topology, streams.spawn("uni-2"), flows
        )
        for record in result.deliveries:
            assert record.hops == len(policy.route_of(record.packet_id)) - 1

    def test_flow_through_base_station_is_relayed(self, tiny_topology, streams):
        """A route passing through the base station must not be recorded as
        delivered there — the BS relays it onward."""
        from repro.graphs.bfs import bfs_layers, bfs_parents

        graph = tiny_topology.secondary.graph
        # Find a pair whose shortest path runs through node 0.
        parents = bfs_parents(graph, 0)
        layers = bfs_layers(graph, 0)
        neighbors = sorted(graph.neighbors(0))
        chosen = None
        for a in neighbors:
            for b in neighbors:
                if a != b and not graph.has_edge(a, b):
                    chosen = (a, b)
                    break
            if chosen:
                break
        if chosen is None:
            pytest.skip("no BS-through pair in this topology")
        policy = UnicastPolicy(tiny_topology, [chosen])
        if 0 not in policy.route_of(0):
            pytest.skip("shortest path avoided the base station")
        _, result = run_unicast(tiny_topology, streams.spawn("uni-3"), [chosen])
        assert result.completed
        record = result.deliveries[0]
        assert record.hops == len(policy.route_of(0)) - 1

    def test_bidirectional_flows(self, tiny_topology, streams):
        _, result = run_unicast(
            tiny_topology, streams.spawn("uni-4"), [(1, 9), (9, 1)]
        )
        assert result.completed
        assert result.delivered == 2
