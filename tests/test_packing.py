"""Tests for the disk-packing bounds (Lemmas 4-6)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packing import (
    beta,
    lemma4_max_points,
    lemma5_backbone_bound,
    lemma6_delta_bound,
    lemma6_neighborhood_bound,
)
from repro.errors import ConfigurationError


class TestBeta:
    def test_at_zero(self):
        assert beta(0.0) == 1.0

    def test_known_value(self):
        # beta(1) = 2 pi / sqrt(3) + pi + 1
        expected = 2 * math.pi / math.sqrt(3) + math.pi + 1
        assert beta(1.0) == pytest.approx(expected)

    @given(st.floats(min_value=0.0, max_value=1e3))
    def test_monotone(self, x):
        assert beta(x + 0.5) > beta(x)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            beta(-1.0)


class TestLemma4:
    def test_reduces_to_beta(self):
        assert lemma4_max_points(3.0) == beta(3.0)

    def test_rescaling(self):
        assert lemma4_max_points(6.0, 2.0) == beta(3.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(min_value=1.0, max_value=8.0))
    def test_empirical_packing_respects_bound(self, seed, disk_radius):
        # Greedily pack points with mutual distance >= 1 inside the disk;
        # the count must respect Lemma 4.
        rng = np.random.default_rng(seed)
        accepted: list = []
        for _ in range(400):
            angle = rng.uniform(0, 2 * math.pi)
            radius = disk_radius * math.sqrt(rng.random())
            candidate = np.array([radius * math.cos(angle), radius * math.sin(angle)])
            if all(np.hypot(*(candidate - p)) >= 1.0 for p in accepted):
                accepted.append(candidate)
        assert len(accepted) <= lemma4_max_points(disk_radius)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            lemma4_max_points(-1.0)
        with pytest.raises(ConfigurationError):
            lemma4_max_points(1.0, 0.0)


class TestNeighborhoodBounds:
    def test_lemma5_formula(self):
        kappa = 2.5
        assert lemma5_backbone_bound(kappa) == pytest.approx(
            beta(kappa) + 12 * beta(kappa + 1)
        )

    def test_lemma6_formula(self):
        kappa, delta = 2.5, 10.0
        assert lemma6_neighborhood_bound(kappa, delta) == pytest.approx(
            delta * beta(kappa) + 12 * beta(kappa + 1)
        )

    def test_lemma6_at_least_lemma5_for_delta_ge_1(self):
        assert lemma6_neighborhood_bound(3.0, 5.0) >= lemma5_backbone_bound(3.0)

    def test_delta_bound_grows_with_n(self):
        small = lemma6_delta_bound(100, 10.0, 31.25)
        large = lemma6_delta_bound(10_000, 10.0, 31.25)
        assert large > small

    def test_delta_bound_value(self):
        # log n + pi r^2 (e^2 - 1) / (2 c0)
        expected = math.log(2000) + math.pi * 100 * (math.e**2 - 1) / (2 * 31.25)
        assert lemma6_delta_bound(2000, 10.0, 31.25) == pytest.approx(expected)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            lemma5_backbone_bound(0.5)
        with pytest.raises(ConfigurationError):
            lemma6_neighborhood_bound(2.0, 0.5)
        with pytest.raises(ConfigurationError):
            lemma6_delta_bound(0, 10.0, 1.0)


class TestTreeDegreeAgainstLemma6:
    def test_quick_topology_tree_degree_within_bound(self, quick_topology):
        from repro.graphs.tree import build_collection_tree

        tree = build_collection_tree(
            quick_topology.secondary.graph, quick_topology.secondary.base_station
        )
        n = quick_topology.secondary.num_sus
        c0 = quick_topology.region.area / n
        bound = lemma6_delta_bound(n, quick_topology.secondary.radius, c0)
        assert tree.max_degree() <= bound
