"""Tests for the experiment harness: config, runner, figure drivers, report."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import FIG4_SWEEPS, Fig4Row, figure4_rows
from repro.experiments.fig6 import FIG6_SWEEPS, run_fig6_sweep, sweep_point_configs
from repro.experiments.report import (
    render_ablation_table,
    render_fig4_table,
    render_fig6_table,
)
from repro.experiments.runner import run_addc_only, run_comparison_point


class TestExperimentConfig:
    def test_paper_scale_defaults(self):
        config = ExperimentConfig.paper_scale()
        assert config.area == 62500.0
        assert config.num_pus == 400
        assert config.num_sus == 2000
        assert config.p_t == 0.3
        assert config.eta_p_db == 8.0
        assert config.repetitions == 10

    def test_scaled_configs_preserve_densities(self):
        paper = ExperimentConfig.paper_scale()
        for scaled in (ExperimentConfig.bench_scale(), ExperimentConfig.quick_scale()):
            assert scaled.pu_density == pytest.approx(paper.pu_density, rel=0.01)
            assert scaled.su_density == pytest.approx(paper.su_density, rel=0.01)

    def test_with_overrides(self):
        config = ExperimentConfig.quick_scale().with_overrides(p_t=0.1)
        assert config.p_t == 0.1
        assert config.num_sus == ExperimentConfig.quick_scale().num_sus

    def test_deployment_spec_mirrors_fields(self):
        config = ExperimentConfig.quick_scale()
        spec = config.deployment_spec()
        assert spec.area == config.area
        assert spec.num_pus == config.num_pus
        assert spec.p_t == config.p_t

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(repetitions=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(p_t=1.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(blocking="nope")


class TestFig4:
    def test_rows_cover_sweeps_and_alphas(self):
        rows = figure4_rows()
        expected = sum(len(values) for values in FIG4_SWEEPS.values()) * 2
        assert len(rows) == expected

    def test_alpha3_always_larger(self):
        rows = figure4_rows()
        by_key = {(r.parameter, r.value, r.alpha): r.pcr for r in rows}
        for parameter, values in FIG4_SWEEPS.items():
            for value in values:
                assert by_key[(parameter, value, 3.0)] > by_key[
                    (parameter, value, 4.0)
                ]

    def test_pcr_nondecreasing_in_each_parameter(self):
        # The paper states the PCR is non-decreasing in P_p, P_s, eta_p and
        # eta_s.  For the powers this holds once the varied power reaches
        # the other network's power (below it, c1 or c3 shrinks and the
        # corresponding term actually grows — a quirk of Eq. 16 the sweep
        # keeps visible); the threshold sweeps are monotone throughout.
        rows = figure4_rows()
        for parameter, values in FIG4_SWEEPS.items():
            for alpha in (3.0, 4.0):
                series = [
                    (r.value, r.pcr)
                    for r in rows
                    if r.parameter == parameter and r.alpha == alpha
                ]
                if parameter in ("pu_power", "su_power"):
                    series = [(v, p) for v, p in series if v >= 10.0]
                pcrs = [p for _, p in series]
                assert pcrs == sorted(pcrs)

    def test_render_table(self):
        text = render_fig4_table(figure4_rows())
        assert "Figure 4" in text
        assert "pu_power" in text and "eta_s_db" in text


class TestFig6Machinery:
    def test_all_six_sweeps_defined(self):
        assert set(FIG6_SWEEPS) == {
            "fig6a",
            "fig6b",
            "fig6c",
            "fig6d",
            "fig6e",
            "fig6f",
        }

    def test_scaled_sweep_values(self):
        base = ExperimentConfig.quick_scale()
        points = sweep_point_configs(FIG6_SWEEPS["fig6b"], base)
        for (x_value, config), multiplier in zip(points, FIG6_SWEEPS["fig6b"].values):
            assert config.num_sus == max(int(round(base.num_sus * multiplier)), 1)
            assert x_value == config.num_sus

    def test_absolute_sweep_values(self):
        base = ExperimentConfig.quick_scale()
        points = sweep_point_configs(FIG6_SWEEPS["fig6c"], base)
        assert [x for x, _ in points] == list(FIG6_SWEEPS["fig6c"].values)

    def test_invalid_sweep_kind(self):
        from repro.experiments.fig6 import Fig6Sweep

        with pytest.raises(ConfigurationError):
            Fig6Sweep("x", "p_t", "weird", (0.1,), "desc")
        with pytest.raises(ConfigurationError):
            Fig6Sweep("x", "p_t", "absolute", (), "desc")


class TestRunner:
    @pytest.fixture(scope="class")
    def point(self):
        config = ExperimentConfig.quick_scale().with_overrides(
            repetitions=1, num_sus=50, num_pus=10, area=40.0 * 40.0
        )
        return run_comparison_point(config)

    def test_comparison_point_completes(self, point):
        assert point.addc_delay_ms.mean > 0
        assert point.coolest_delay_ms.mean > 0
        assert point.addc_delay_ms.count == 1
        assert point.skipped_repetitions == 0

    def test_reduction_and_speedup_consistent(self, point):
        assert point.speedup == pytest.approx(
            1.0 + point.reduction_percent / 100.0
        )

    def test_run_addc_only_ablations(self):
        config = ExperimentConfig.quick_scale().with_overrides(
            repetitions=1, num_sus=50, num_pus=10, area=40.0 * 40.0
        )
        stats = run_addc_only(config, fairness_wait=False, use_cds_tree=False)
        assert stats.mean > 0
        assert stats.count == 1

    def test_on_incomplete_value_validated(self):
        config = ExperimentConfig.quick_scale().with_overrides(repetitions=1)
        with pytest.raises(ConfigurationError):
            run_comparison_point(config, on_incomplete="ignore")

    def test_on_incomplete_modes_when_max_slots_too_small(self):
        # Five slots cannot complete any collection, so "raise" aborts on
        # the first repetition and "skip" drops them all — which is itself
        # an error (a point with no surviving repetitions has no average).
        config = ExperimentConfig.quick_scale().with_overrides(
            repetitions=1, num_sus=50, num_pus=10, area=40.0 * 40.0,
            max_slots=5,
        )
        with pytest.raises(SimulationError):
            run_comparison_point(config)
        with pytest.raises(SimulationError) as excinfo:
            run_comparison_point(config, on_incomplete="skip")
        assert "all 1 repetitions" in str(excinfo.value)


class TestRenderers:
    def test_fig6_table(self):
        config = ExperimentConfig.quick_scale().with_overrides(
            repetitions=1, num_sus=40, num_pus=8, area=36.0 * 36.0
        )
        points = run_fig6_sweep(
            FIG6_SWEEPS["fig6c"], config, values=(0.1, 0.2)
        )
        text = render_fig6_table("fig6c", "delay vs p_t", points)
        assert "ADDC" in text and "Coolest" in text
        assert "mean reduction" in text

    def test_ablation_table(self):
        text = render_ablation_table(
            "Ablation", [("with", 10.0, 1.0), ("without", 12.0, 2.0)]
        )
        assert "with" in text and "without" in text
