"""Tests for the connected-dominating-set construction (Wan et al. [25])."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs.cds import build_cds
from repro.graphs.connectivity import connected_subgraph_nodes
from repro.graphs.graph import Graph


def random_udg(num_nodes: int, seed: int) -> Graph:
    """Random unit-disk graph, regenerated until connected."""
    from repro.graphs.connectivity import is_connected

    rng = np.random.default_rng(seed)
    for _ in range(50):
        positions = rng.random((num_nodes, 2)) * 25.0
        graph = Graph.from_positions(positions, 10.0)
        if is_connected(graph):
            return graph
    raise AssertionError("could not generate a connected unit-disk graph")


class TestCdsProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    def test_cds_dominates_and_connects(self, num_nodes, seed):
        graph = random_udg(num_nodes, seed)
        cds = build_cds(graph, 0)
        backbone = set(cds.backbone)
        # Domination: every node is in the CDS or adjacent to a dominator.
        dominators = set(cds.dominators)
        for node in graph.nodes():
            assert node in backbone or any(
                nbr in dominators for nbr in graph.neighbors(node)
            )
        # Connectivity of the induced backbone subgraph.
        assert connected_subgraph_nodes(graph, sorted(backbone))

    def test_root_is_dominator(self):
        graph = random_udg(20, 3)
        cds = build_cds(graph, 0)
        assert cds.dominators[0] == 0
        assert cds.is_dominator(0)

    def test_parents_are_adjacent(self):
        graph = random_udg(30, 4)
        cds = build_cds(graph, 0)
        for dominator, connector in cds.dominator_parent.items():
            assert graph.has_edge(dominator, connector)
        for connector, dominator in cds.connector_parent.items():
            assert graph.has_edge(connector, dominator)

    def test_connectors_are_not_dominators(self):
        graph = random_udg(30, 5)
        cds = build_cds(graph, 0)
        assert not set(cds.connectors) & set(cds.dominators)

    def test_layers_decrease_along_backbone_chain(self):
        graph = random_udg(35, 6)
        cds = build_cds(graph, 0)
        for dominator, connector in cds.dominator_parent.items():
            # The connector sits one layer above its dominator ...
            assert cds.layers[connector] == cds.layers[dominator] - 1
            # ... and the connector's own parent is at or above that layer.
            grandparent = cds.connector_parent[connector]
            assert cds.layers[grandparent] <= cds.layers[connector]

    def test_disconnected_rejected(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            build_cds(graph, 0)

    def test_single_node(self):
        cds = build_cds(Graph(1), 0)
        assert cds.dominators == [0]
        assert cds.connectors == []
