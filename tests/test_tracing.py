"""Tests for repro.obs.tracing: the ``trace/v2`` job-span layer.

The acceptance contract:

* **identity** — every id in a trace is deterministic: the trace id is
  the job fingerprint, span ids walk the name path, and no clock or
  randomness participates;
* **merging** — shards fold in submission order, so the merged trace is
  invariant under any worker completion order;
* **resume** — a job replayed from its checkpoint journal re-derives a
  trace structurally identical to the uninterrupted run;
* **schema hygiene** — loading a ``trace/v1`` file with the v2 loader
  (or vice versa) fails loudly, naming both versions.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.errors import ObservabilityError
from repro.obs.tracing import (
    TIMING_FIELDS,
    TRACE_V2_SCHEMA,
    SpanIdAllocator,
    SpanRecord,
    TraceContext,
    build_repetition_spans,
    load_spans,
    merge_shards,
    render_tree,
    shard_filename,
    span_stats,
    structural_form,
    structure_digest,
    write_shard,
    write_trace,
)
from repro.service.jobs import JobSpec, execute_job


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


TINY = {"area": 900.0, "num_pus": 4, "num_sus": 20, "max_slots": 200_000}


def tiny_spec(**kwargs) -> JobSpec:
    base = dict(
        kind="compare", seed=20120612, repetitions=2, overrides=dict(TINY)
    )
    base.update(kwargs)
    return JobSpec(**base)


def _profile(slot_ms: float) -> dict:
    """A minimal worker span profile, parameterized for distinct shards."""
    return {
        "sweep.repetition": {
            "count": 1,
            "total_ms": 10 * slot_ms,
            "mean_ms": 10 * slot_ms,
            "min_ms": 10 * slot_ms,
            "max_ms": 10 * slot_ms,
        },
        "engine.slot": {
            "count": 100,
            "total_ms": slot_ms,
            "mean_ms": slot_ms / 100,
            "min_ms": 0.001,
            "max_ms": slot_ms / 10,
        },
        "engine.phase.sensing": {
            "count": 100,
            "total_ms": slot_ms / 2,
            "mean_ms": slot_ms / 200,
            "min_ms": 0.0005,
            "max_ms": slot_ms / 20,
        },
    }


# --------------------------------------------------------------------------- #
# deterministic identity
# --------------------------------------------------------------------------- #


class TestTraceContext:
    def test_trace_id_is_the_fingerprint(self):
        spec = tiny_spec()
        context = TraceContext.for_job(spec.fingerprint())
        assert context.trace_id == spec.fingerprint()
        assert context.span_id == "job"
        assert context.parent_id is None

    def test_child_walks_the_name_path(self):
        root = TraceContext.for_job("abc")
        rep = root.child("point-3").child("rep-1")
        assert rep.span_id == "job/point-3/rep-1"
        assert rep.parent_id == "job/point-3"
        assert rep.trace_id == "abc"

    def test_context_is_picklable_for_spawn_workers(self):
        context = TraceContext.for_job("abc").child("point-0")
        clone = pickle.loads(pickle.dumps(context))
        assert clone == context

    def test_allocator_numbers_repeats(self):
        allocator = SpanIdAllocator()
        assert allocator.allocate("sensing") == "sensing"
        assert allocator.allocate("sensing") == "sensing:1"
        assert allocator.allocate("sensing") == "sensing:2"
        assert allocator.allocate("backoff") == "backoff"

    def test_repetition_spans_are_a_pure_function(self):
        context = TraceContext.for_job("abc")
        first = build_repetition_spans(context, 0, 1, _profile(3.0))
        second = build_repetition_spans(context, 0, 1, _profile(3.0))
        assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
        assert first[0].span_id == "job/point-0/rep-1"
        names = [span.name for span in first[1:]]
        assert names == sorted(names)


# --------------------------------------------------------------------------- #
# shard io
# --------------------------------------------------------------------------- #


class TestShardIO:
    def test_round_trip(self, tmp_path):
        context = TraceContext.for_job("abc")
        spans = build_repetition_spans(context, 0, 0, _profile(2.0))
        path = tmp_path / shard_filename(0, 0)
        write_shard(path, "abc", 0, 0, spans)
        header, loaded = load_spans(path)
        assert header["schema"] == TRACE_V2_SCHEMA
        assert header["trace_id"] == "abc"
        assert header["shard"] == "point-0.rep-0"
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_shard_filename_is_sort_stable(self):
        names = [shard_filename(p, r) for p in (0, 2, 10) for r in (0, 3)]
        assert names == sorted(names)

    def test_declared_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        header = {"schema": TRACE_V2_SCHEMA, "trace_id": "x", "spans": 5}
        span = {"span_id": "job", "parent_id": None, "name": "job", "count": 1}
        path.write_text(
            json.dumps(header) + "\n" + json.dumps(span) + "\n"
        )
        with pytest.raises(ObservabilityError, match="declares 5 spans"):
            load_spans(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no header line"):
            load_spans(path)

    def test_loading_v1_file_names_both_schemas(self, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text(
            json.dumps(
                {"schema": "trace/v1", "events": 0, "dropped": 0}
            )
            + "\n"
        )
        with pytest.raises(ObservabilityError) as excinfo:
            load_spans(path)
        message = str(excinfo.value)
        assert "trace/v1" in message
        assert "trace/v2" in message
        assert "load_trace" in message  # points at the right loader

    def test_loading_v2_file_with_v1_loader_names_both_schemas(
        self, tmp_path
    ):
        path = tmp_path / "spans.ndjson"
        write_trace(path, "abc", [SpanRecord("job", None, "job")])
        with pytest.raises(ObservabilityError) as excinfo:
            obs.load_trace(path)
        message = str(excinfo.value)
        assert "trace/v2" in message
        assert "trace/v1" in message
        assert "load_spans" in message

    def test_trace_stats_dispatches_on_schema(self, tmp_path):
        """The stats scanner serves both eras from one entry point."""
        path = tmp_path / "trace.ndjson"
        context = TraceContext.for_job("abc")
        write_trace(
            path,
            "abc",
            merge_shards(
                "abc",
                [self._shard(tmp_path, context, 0, 0)],
                job_name="demo",
            ),
        )
        stats = obs.trace_stats(path, top=2)
        assert stats["schema"] == TRACE_V2_SCHEMA
        assert stats["trace_id"] == "abc"
        assert "engine.slot" in stats["names"]
        assert len(stats["slowest"]) == 2

    @staticmethod
    def _shard(tmp_path, context, point, rep, slot_ms=2.0):
        path = tmp_path / shard_filename(point, rep)
        write_shard(
            path,
            context.trace_id,
            point,
            rep,
            build_repetition_spans(context, point, rep, _profile(slot_ms)),
        )
        return path


# --------------------------------------------------------------------------- #
# merging: submission order, not completion order
# --------------------------------------------------------------------------- #


class TestMergeShards:
    def _shards(self, tmp_path, context):
        paths = []
        slot_ms = 1.0
        for point in range(3):
            for rep in range(2):
                paths.append(
                    TestShardIO._shard(
                        tmp_path, context, point, rep, slot_ms=slot_ms
                    )
                )
                slot_ms += 0.5
        return paths

    def test_merge_is_invariant_under_shard_order(self, tmp_path):
        """Any worker completion order merges to the same trace."""
        context = TraceContext.for_job("abc")
        paths = self._shards(tmp_path, context)
        reference = merge_shards("abc", paths, job_name="demo")
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(paths)
            rng.shuffle(shuffled)
            merged = merge_shards("abc", shuffled, job_name="demo")
            assert [s.to_dict() for s in merged] == [
                s.to_dict() for s in reference
            ]
            assert structure_digest(merged) == structure_digest(reference)

    def test_point_spans_fold_repetition_timing(self, tmp_path):
        context = TraceContext.for_job("abc")
        paths = self._shards(tmp_path, context)
        merged = merge_shards("abc", paths, job_name="demo")
        assert merged[0].span_id == "job"
        assert merged[0].name == "demo"
        by_id = {span.span_id: span for span in merged}
        point0 = by_id["job/point-0"]
        rep0 = by_id["job/point-0/rep-0"]
        rep1 = by_id["job/point-0/rep-1"]
        assert point0.count == 2
        assert point0.total_ms == pytest.approx(
            rep0.total_ms + rep1.total_ms
        )
        assert merged[0].total_ms == pytest.approx(
            sum(by_id[f"job/point-{p}"].total_ms for p in range(3))
        )

    def test_foreign_shard_is_a_hard_error(self, tmp_path):
        ours = TraceContext.for_job("abc")
        theirs = TraceContext.for_job("def")
        paths = [
            TestShardIO._shard(tmp_path, ours, 0, 0),
            TestShardIO._shard(tmp_path, theirs, 0, 1),
        ]
        with pytest.raises(ObservabilityError, match="belongs to trace"):
            merge_shards("abc", paths)

    def test_structural_form_strips_only_timing(self):
        span = SpanRecord(
            "job", None, "job", count=3, total_ms=1.0, mean_ms=0.3
        )
        (structural,) = structural_form([span])
        for field in TIMING_FIELDS:
            assert field not in structural
        assert structural == {
            "span_id": "job",
            "parent_id": None,
            "name": "job",
            "count": 3,
        }

    def test_render_tree_indents_by_parentage(self, tmp_path):
        context = TraceContext.for_job("abc")
        merged = merge_shards(
            "abc",
            [TestShardIO._shard(tmp_path, context, 0, 0)],
            job_name="demo",
        )
        text = render_tree("abc", merged)
        lines = text.splitlines()
        assert lines[0].startswith("trace abc")
        assert lines[1].strip().startswith("demo")
        # point under job, rep under point, phases under rep
        assert "    point-0" in lines[2]
        assert "      rep-0" in lines[3]
        assert any("engine.phase.sensing" in line for line in lines[4:])


# --------------------------------------------------------------------------- #
# span stats
# --------------------------------------------------------------------------- #


class TestSpanStats:
    def test_percentiles_interpolate(self):
        spans = [
            SpanRecord(f"job/rep-{i}", "job", "rep", total_ms=float(i))
            for i in range(1, 5)  # durations 1, 2, 3, 4
        ]
        stats = span_stats(spans)
        rep = stats["names"]["rep"]
        assert rep["spans"] == 4
        assert rep["total_ms"] == pytest.approx(10.0)
        assert rep["p50_ms"] == pytest.approx(2.5)
        assert rep["p95_ms"] == pytest.approx(3.85)
        assert rep["p99_ms"] == pytest.approx(3.97)

    def test_untimed_spans_still_counted(self):
        stats = span_stats([SpanRecord("job", None, "job")])
        assert stats["names"]["job"]["spans"] == 1
        assert stats["names"]["job"]["total_ms"] == 0.0

    def test_top_lists_slowest_spans(self):
        spans = [
            SpanRecord(f"job/rep-{i}", "job", "rep", total_ms=float(i))
            for i in range(6)
        ]
        stats = span_stats(spans, top=3)
        slowest = stats["slowest"]
        assert [entry["total_ms"] for entry in slowest] == [5.0, 4.0, 3.0]
        assert slowest[0]["span_id"] == "job/rep-5"

    def test_summary_is_json_serializable(self):
        stats = span_stats(
            [SpanRecord("job", None, "job", total_ms=1.0)], top=1
        )
        assert json.loads(json.dumps(stats)) == stats


# --------------------------------------------------------------------------- #
# the acceptance contract: resume merges to the same structure
# --------------------------------------------------------------------------- #


class TestJobTraceLifecycle:
    def test_executed_job_writes_a_merged_trace(self, tmp_path):
        spec = tiny_spec()
        execute_job(
            spec,
            tmp_path / "artifact.json",
            checkpoint_path=tmp_path / "journal.ndjson",
        )
        header, spans = load_spans(tmp_path / "trace.ndjson")
        assert header["trace_id"] == spec.fingerprint()
        assert header["merged"] is True
        span_ids = {span.span_id for span in spans}
        assert "job" in span_ids
        assert "job/point-0/rep-0" in span_ids
        assert "job/point-0/rep-1" in span_ids
        names = {span.name for span in spans}
        assert "engine.slot" in names
        assert "engine.phase.sensing" in names

    def test_resumed_job_recreates_the_same_trace_structure(self, tmp_path):
        """Kill-and-resume merges to the uninterrupted trace, bit for bit
        in structure: the journal replays re-derive identical shards."""
        spec = tiny_spec()
        execute_job(
            spec,
            tmp_path / "artifact.json",
            checkpoint_path=tmp_path / "journal.ndjson",
        )
        _header, reference = load_spans(tmp_path / "trace.ndjson")

        # SIGKILL aftermath: the merged trace and every shard are gone,
        # only the durable journal survives.
        (tmp_path / "trace.ndjson").unlink()
        for shard in (tmp_path / "trace").glob("*.ndjson"):
            shard.unlink()
        (tmp_path / "artifact.json").unlink()

        execute_job(
            spec,
            tmp_path / "artifact.json",
            checkpoint_path=tmp_path / "journal.ndjson",
            resume=True,
        )
        header, resumed = load_spans(tmp_path / "trace.ndjson")
        assert header["trace_id"] == spec.fingerprint()
        assert structural_form(resumed) == structural_form(reference)
        assert structure_digest(resumed) == structure_digest(reference)

    def test_trace_cli_tree_and_stats(self, tmp_path, capsys):
        """``trace tree`` renders the merged file; ``trace stats --top``
        summarizes it with percentiles and the slowest spans."""
        spec = tiny_spec(repetitions=1)
        execute_job(
            spec,
            tmp_path / "jobs" / spec.fingerprint() / "artifact.json",
            checkpoint_path=(
                tmp_path / "jobs" / spec.fingerprint() / "journal.ndjson"
            ),
        )
        trace_path = tmp_path / "jobs" / spec.fingerprint() / "trace.ndjson"
        assert cli_main(["trace", "tree", str(trace_path)]) == 0
        tree = capsys.readouterr().out
        assert f"trace {spec.fingerprint()}" in tree
        assert "rep-0" in tree and "engine.slot" in tree
        # Fingerprint resolution against a service state directory.
        assert (
            cli_main(
                [
                    "trace",
                    "tree",
                    spec.fingerprint(),
                    "--state-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            cli_main(["trace", "stats", str(trace_path), "--top", "3"]) == 0
        )
        text = capsys.readouterr().out
        assert "trace/v2" in text
        assert "p50=" in text and "p99=" in text
        assert text.count("slow  ") == 3
        assert cli_main(["trace", "tree", str(tmp_path / "nope")]) == 2

    def test_chaos_jobs_are_not_traced(self, tmp_path):
        spec = JobSpec(
            kind="chaos", seed=3, repetitions=1, overrides=dict(TINY)
        )
        execute_job(
            spec,
            tmp_path / "artifact.json",
            checkpoint_path=tmp_path / "journal.ndjson",
        )
        assert not (tmp_path / "trace.ndjson").exists()
