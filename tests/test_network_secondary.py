"""Tests for the secondary network and deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DisconnectedNetworkError
from repro.geometry.distance import pairwise_distances
from repro.network.deployment import DeploymentSpec, deploy_crn
from repro.network.secondary import BASE_STATION, SecondaryNetwork
from repro.rng import StreamFactory


class TestSecondaryNetwork:
    def make(self, count=10):
        rng = np.random.default_rng(8)
        return SecondaryNetwork(
            positions=rng.random((count + 1, 2)) * 30, power=10.0, radius=10.0
        )

    def test_counts(self):
        network = self.make(12)
        assert network.num_sus == 12
        assert network.num_nodes == 13
        assert network.base_station == BASE_STATION
        assert list(network.su_ids()) == list(range(1, 13))

    def test_graph_matches_radius(self):
        network = self.make(15)
        matrix = pairwise_distances(network.positions)
        for u in range(network.num_nodes):
            for v in range(u + 1, network.num_nodes):
                assert network.graph.has_edge(u, v) == (matrix[u, v] <= 10.0)

    def test_graph_cached(self):
        network = self.make(5)
        assert network.graph is network.graph

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SecondaryNetwork(np.zeros((1, 2)), 10.0, 10.0)  # no SUs
        with pytest.raises(ConfigurationError):
            SecondaryNetwork(np.zeros((3, 2)), -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            SecondaryNetwork(np.zeros((3, 2)), 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            SecondaryNetwork(np.zeros((3, 3)), 10.0, 10.0)


class TestDeploymentSpec:
    def test_defaults_match_paper(self):
        spec = DeploymentSpec()
        assert spec.area == 62500.0
        assert spec.num_pus == 400
        assert spec.num_sus == 2000
        assert spec.p_t == 0.3

    def test_densities(self):
        spec = DeploymentSpec(area=100.0, num_pus=5, num_sus=20)
        assert spec.pu_density == 0.05
        assert spec.su_density == 0.20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"area": -1.0},
            {"num_pus": -1},
            {"num_sus": 0},
            {"p_t": 1.5},
            {"pu_power": 0.0},
            {"su_radius": -2.0},
            {"max_attempts": 0},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(**kwargs)


class TestDeployCrn:
    def spec(self):
        return DeploymentSpec(area=40.0 * 40.0, num_pus=10, num_sus=60)

    def test_produces_connected_graph(self):
        from repro.graphs.connectivity import is_connected

        topology = deploy_crn(self.spec(), StreamFactory(1))
        assert is_connected(topology.secondary.graph)

    def test_deterministic_per_seed(self):
        a = deploy_crn(self.spec(), StreamFactory(2))
        b = deploy_crn(self.spec(), StreamFactory(2))
        assert np.allclose(a.secondary.positions, b.secondary.positions)
        assert np.allclose(a.primary.positions, b.primary.positions)

    def test_different_seeds_differ(self):
        a = deploy_crn(self.spec(), StreamFactory(3))
        b = deploy_crn(self.spec(), StreamFactory(4))
        assert not np.allclose(a.secondary.positions, b.secondary.positions)

    def test_base_station_at_center(self):
        topology = deploy_crn(self.spec(), StreamFactory(5))
        assert np.allclose(topology.secondary.positions[0], [20.0, 20.0])

    def test_nodes_inside_region(self):
        topology = deploy_crn(self.spec(), StreamFactory(6))
        for positions in (topology.secondary.positions, topology.primary.positions):
            assert (positions >= 0.0).all()
            assert (positions <= 40.0).all()

    def test_impossible_density_raises(self):
        sparse = DeploymentSpec(
            area=500.0 * 500.0, num_pus=1, num_sus=3, max_attempts=3
        )
        with pytest.raises(DisconnectedNetworkError):
            deploy_crn(sparse, StreamFactory(7))
