"""Tests for repro.chaos.gate: manifest, ratchet, and CLI wiring.

These tests build synthetic :class:`GateReport` objects instead of
running the scenario grid, so they pin the gate's *mechanics*: the
manifest round-trips through the perf-ratchet differ, a gated figure
moving the wrong way is a regression, ungated figures never gate, and
the synthetic-violation canary actually fails a contract.  The grid
itself is exercised by ``test_chaos_scenarios`` and the CI smoke run.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ContractCheck,
    GateReport,
    apply_synthetic_violation,
    diff_against_baseline,
    evaluate_contracts,
    gate_manifest,
    render_gate,
    require_passed,
    write_gate_baseline,
)
from repro.chaos.scenarios import figure
from repro.errors import ObservabilityError, ResilienceContractError
from repro.obs.manifest import build_manifest, write_manifest


def make_report(
    delivery: float = 0.9,
    repair: float = 140.0,
    fault_events: float = 4.0,
    passed: bool = True,
) -> GateReport:
    figures = {
        "delivery_ratio_heaviest": figure(delivery, higher_better=True),
        "availability_heaviest": figure(0.95, higher_better=True),
        "repair_worst_slots": figure(repair, higher_better=False),
        "fault_events_heaviest": figure(
            fault_events, higher_better=False, gated=False
        ),
    }
    checks = [
        ContractCheck(
            "empty-schedule-purity", "degradation", passed, "synthetic"
        )
    ]
    return GateReport(
        figures=figures,
        evidence={},
        checks=checks,
        seed=101,
        smoke=True,
        include_service=False,
        wall_time_s=12.5,
    )


class TestGateManifest:
    def test_resilience_block_carries_figures_and_verdicts(self):
        manifest = gate_manifest(make_report()).to_dict()
        resilience = manifest["extra"]["resilience"]
        assert resilience["figures"]["delivery_ratio_heaviest"] == {
            "value": 0.9,
            "higher_better": True,
            "gated": True,
        }
        assert resilience["contracts"] == [
            {
                "contract": "empty-schedule-purity",
                "scenario": "degradation",
                "passed": True,
                "detail": "synthetic",
            }
        ]
        assert resilience["grid"]["smoke"] is True
        # Wall time is recorded for humans but lives outside the figures,
        # so the ratchet stays machine-independent.
        assert resilience["grid"]["wall_time_s"] == 12.5
        assert "wall_time_s" not in resilience["figures"]


class TestRatchet:
    def test_identical_run_has_zero_deltas(self, tmp_path):
        baseline = tmp_path / "BENCH_resilience.json"
        write_gate_baseline(baseline, make_report())
        report = make_report()
        rows = diff_against_baseline(report, baseline, tolerance_pct=5.0)
        assert rows and all(row.name.startswith("resilience.") for row in rows)
        assert all(row.delta_pct == 0.0 for row in rows)
        assert report.regressions == 0
        assert report.passed
        require_passed(report)  # no raise

    def test_gated_figure_dropping_is_a_regression(self, tmp_path):
        baseline = tmp_path / "BENCH_resilience.json"
        write_gate_baseline(baseline, make_report(delivery=0.9))
        report = make_report(delivery=0.7)
        diff_against_baseline(report, baseline, tolerance_pct=5.0)
        regressed = [row for row in report.diff_rows if row.regression]
        assert [row.name for row in regressed] == [
            "resilience.delivery_ratio_heaviest"
        ]
        assert not report.passed
        with pytest.raises(ResilienceContractError, match="regressed"):
            require_passed(report)

    def test_direction_respects_higher_better(self, tmp_path):
        baseline = tmp_path / "BENCH_resilience.json"
        write_gate_baseline(baseline, make_report(repair=140.0))
        # Repair latency shrinking is an improvement, never a regression.
        better = make_report(repair=90.0)
        diff_against_baseline(better, baseline, tolerance_pct=5.0)
        assert better.regressions == 0
        # Repair latency growing past tolerance regresses.
        worse = make_report(repair=300.0)
        diff_against_baseline(worse, baseline, tolerance_pct=5.0)
        assert [row.name for row in worse.diff_rows if row.regression] == [
            "resilience.repair_worst_slots"
        ]

    def test_ungated_figures_report_but_never_gate(self, tmp_path):
        baseline = tmp_path / "BENCH_resilience.json"
        write_gate_baseline(baseline, make_report(fault_events=4.0))
        report = make_report(fault_events=40.0)
        diff_against_baseline(report, baseline, tolerance_pct=5.0)
        assert report.regressions == 0
        assert report.passed

    def test_foreign_baseline_is_refused(self, tmp_path):
        baseline = tmp_path / "BENCH_perf.json"
        # A perfectly valid manifest -- but not one the gate wrote.
        write_manifest(
            baseline, build_manifest(seed=1, config={"name": "perf"})
        )
        with pytest.raises(ObservabilityError, match="no resilience figures"):
            diff_against_baseline(make_report(), baseline, tolerance_pct=5.0)


class TestVerdicts:
    def test_contract_failure_fails_the_gate(self):
        report = make_report(passed=False)
        assert report.contract_failures == 1
        assert not report.passed
        with pytest.raises(ResilienceContractError, match="empty-schedule"):
            require_passed(report)

    def test_synthetic_violation_poisons_exactly_the_purity_contract(self):
        evidence = apply_synthetic_violation({})
        checks = evaluate_contracts(evidence)
        purity = [
            check
            for check in checks
            if check.contract == "empty-schedule-purity"
        ]
        assert purity and not purity[0].passed
        assert "synthetic violation" in purity[0].detail

    def test_render_states_the_verdict(self, tmp_path):
        passing = make_report()
        assert "CHAOS GATE: PASS" in render_gate(passing, tolerance_pct=5.0)
        baseline = tmp_path / "BENCH_resilience.json"
        write_gate_baseline(baseline, make_report(delivery=0.9))
        failing = make_report(delivery=0.5, passed=False)
        diff_against_baseline(failing, baseline, tolerance_pct=5.0)
        text = render_gate(failing, tolerance_pct=5.0)
        assert "CHAOS GATE: FAIL (1 contract failures, 1 ratchet" in text
        assert "FAIL" in text.splitlines()[0]


class TestCliWiring:
    def test_chaos_gate_dispatches_to_its_own_handler(self):
        from repro.cli import _cmd_chaos, _cmd_chaos_gate, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["chaos", "gate", "--smoke", "--synthetic-violation"]
        )
        assert args.handler is _cmd_chaos_gate
        assert args.smoke and args.synthetic_violation
        assert args.baseline == "BENCH_resilience.json"
        # The legacy flat `chaos` sweep keeps its handler.
        legacy = parser.parse_args(["chaos", "--smoke"])
        assert legacy.handler is _cmd_chaos
