"""Regression tests for bugs found during development.

Each test pins a specific defect that once existed, with the scenario that
exposed it; see the docstrings for the failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.repair import detach_node, orphaned_subtree
from repro.graphs.tree import build_collection_tree

from tests.test_cds import random_udg


class TestDetachedParentAliasing:
    """``children()`` once treated ``parent == -1`` as index -1, making the
    last node appear to parent every detached node — including itself,
    which sent ``orphaned_subtree`` into an unbounded walk (OOM)."""

    def test_children_skip_detached_nodes(self):
        graph = random_udg(12, 3)
        tree = build_collection_tree(graph, 0)
        last = tree.num_nodes - 1
        victim = 5 if last != 5 else 6
        tree.parent[victim] = -1
        kids = tree.children()
        assert victim not in kids[last]
        assert all(victim not in bucket for bucket in kids)

    def test_orphaned_subtree_terminates_with_detached_last_node(self):
        graph = random_udg(12, 4)
        tree = build_collection_tree(graph, 0)
        last = tree.num_nodes - 1
        tree.parent[last] = -1
        # Before the fix this looped forever whenever `last` was detached
        # (it became its own phantom child).
        orphans = orphaned_subtree(tree, last)
        assert last not in orphans

    def test_subtree_sizes_ignore_detached(self):
        graph = random_udg(12, 5)
        tree = build_collection_tree(graph, 0)
        victim = next(
            node for node in range(1, tree.num_nodes)
            if not tree.children()[node]
        )
        before = tree.subtree_sizes()[tree.root]
        tree.parent[victim] = -1
        after = tree.subtree_sizes()[tree.root]
        assert after == before - 1


class TestRepairNeverAdoptsDetachedBackbone:
    """``detach_node`` once re-parented children onto backbone nodes that
    were themselves detached (their roles still said dominator/connector),
    silently wiring traffic into a dead branch."""

    def test_reparenting_avoids_detached_candidates(self):
        rng = np.random.default_rng(9)
        for seed in range(6):
            graph = random_udg(30, 100 + seed)
            tree = build_collection_tree(graph, 0)
            # Detach a couple of backbone nodes first.
            from repro.graphs.tree import NodeRole

            backbone = [
                node
                for node in range(1, 30)
                if tree.roles[node] is not NodeRole.DOMINATEE
            ]
            downed = set()
            for node in backbone[:2]:
                for child in detach_node(tree, graph, node):
                    for orphan in [child, *orphaned_subtree(tree, child)]:
                        tree.parent[orphan] = -1
                        downed.add(orphan)
                downed.add(node)
            # Now detach more nodes; no survivor may point at a downed node.
            survivors = [
                node
                for node in range(1, 30)
                if node not in downed and tree.parent[node] != -1
            ]
            if len(survivors) > 3:
                extra = int(rng.choice(survivors))
                for child in detach_node(tree, graph, extra):
                    for orphan in [child, *orphaned_subtree(tree, child)]:
                        tree.parent[orphan] = -1
                        downed.add(orphan)
                downed.add(extra)
            for node in range(1, 30):
                if node in downed or tree.parent[node] == -1:
                    continue
                assert tree.parent[node] not in downed
