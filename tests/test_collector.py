"""Tests for the one-call ADDC collection runner."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.graphs.tree import NodeRole


class TestRunAddcCollection:
    def test_outcome_contents(self, tiny_topology, streams):
        outcome = run_addc_collection(tiny_topology, streams.spawn("c1"))
        assert outcome.result.completed
        assert outcome.tree.num_nodes == tiny_topology.secondary.num_nodes
        assert outcome.pcr.pcr == pytest.approx(outcome.pcr.kappa * 10.0)
        assert outcome.sense_map.pu_protection_range == outcome.pcr.pcr
        # ADDC senses SUs at the PCR too.
        assert outcome.sense_map.su_csma_range == outcome.pcr.pcr
        assert outcome.bounds is not None

    def test_delay_within_theorem2_bound(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology, streams.spawn("c2"), blocking="homogeneous"
        )
        assert outcome.result.completed
        assert outcome.result.delay_slots <= outcome.bounds.theorem2_delay_slots

    def test_capacity_within_upper_bound(self, tiny_topology, streams):
        outcome = run_addc_collection(tiny_topology, streams.spawn("c3"))
        # The base station receives at most one packet per slot (W).
        assert outcome.result.capacity_packets_per_slot <= 1.0

    def test_bfs_tree_ablation(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology, streams.spawn("c4"), use_cds_tree=False
        )
        assert outcome.result.completed
        roles = set(outcome.tree.roles[1:])
        assert roles == {NodeRole.DOMINATEE}

    def test_no_bounds_option(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology, streams.spawn("c5"), with_bounds=False
        )
        assert outcome.bounds is None

    def test_fairness_ablation_completes(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology, streams.spawn("c6"), fairness_wait=False
        )
        assert outcome.result.completed

    def test_zeta_bound_changes_pcr(self, tiny_topology, streams):
        paper = run_addc_collection(
            tiny_topology, streams.spawn("c7"), zeta_bound="paper", with_bounds=False
        )
        safe = run_addc_collection(
            tiny_topology, streams.spawn("c8"), zeta_bound="safe", with_bounds=False
        )
        assert safe.pcr.pcr > paper.pcr.pcr

    def test_p_t_override_affects_bounds(self, tiny_topology, streams):
        high = run_addc_collection(tiny_topology, streams.spawn("c9"), p_t=0.6)
        low = run_addc_collection(tiny_topology, streams.spawn("c10"), p_t=0.1)
        assert high.bounds.p_o < low.bounds.p_o
