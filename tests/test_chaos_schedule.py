"""Tests for repro.chaos.schedule: kill/hang-at-point worker chaos.

The wrapper must be invisible when the schedule is empty, misbehave on
exactly the first attempt of scheduled items (marker files, not process
memory — the crash is the point), and refuse to ``os._exit`` the main
process when the supervisor runs inline.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

import repro.chaos.schedule as schedule_module
from repro.chaos import ChaosSchedule, ChaosWorker, item_key
from repro.errors import ChaosError
from repro.rng import StreamFactory


def _double(item):
    return item * 2


def _describe(item):
    return repr(item)


@dataclass(frozen=True)
class _Item:
    repetition: int
    payload: str = "x"


class TestItemKey:
    def test_repetition_attribute_is_the_natural_key(self):
        assert item_key(_Item(repetition=7)) == 7

    def test_fallback_digest_is_stable_and_distinct(self):
        assert item_key("abc") == item_key("abc")
        assert item_key("abc") != item_key("abd")
        assert item_key(5) >= 0


class TestChaosSchedule:
    def test_kill_and_hang_must_not_overlap(self):
        with pytest.raises(ChaosError, match="both kill and hang"):
            ChaosSchedule(
                kill_first_attempt=(1, 2), hang_first_attempt=(2, 3)
            )

    def test_hang_duration_must_be_positive(self):
        with pytest.raises(ChaosError, match="hang_s"):
            ChaosSchedule(hang_s=0.0)

    def test_fraction_validation(self):
        keys = tuple(range(10))
        with pytest.raises(ChaosError, match=">= 0"):
            ChaosSchedule.from_stream(
                StreamFactory(1), keys, kill_fraction=-0.1
            )
        with pytest.raises(ChaosError, match="exceed 1"):
            ChaosSchedule.from_stream(
                StreamFactory(1), keys, kill_fraction=0.6, hang_fraction=0.6
            )

    def test_zero_fractions_yield_an_empty_schedule(self):
        schedule = ChaosSchedule.from_stream(
            StreamFactory(9), tuple(range(8))
        )
        assert schedule.empty

    def test_same_seed_same_victims(self):
        keys = tuple(range(20))
        draw = lambda: ChaosSchedule.from_stream(  # noqa: E731
            StreamFactory(42), keys, kill_fraction=0.2, hang_fraction=0.1
        )
        first, second = draw(), draw()
        assert first == second
        assert len(first.kill_first_attempt) == 4
        assert len(first.hang_first_attempt) == 2
        victims = set(first.kill_first_attempt) | set(
            first.hang_first_attempt
        )
        assert victims <= set(keys)


class TestChaosWorker:
    def test_empty_schedule_is_a_pure_passthrough(self, tmp_path):
        worker = ChaosWorker(_double, ChaosSchedule(), str(tmp_path))
        assert worker(21) == 42
        assert list(tmp_path.iterdir()) == []  # no markers written

    def test_kill_in_the_main_process_is_refused_loudly(self, tmp_path):
        schedule = ChaosSchedule(kill_first_attempt=(3,))
        worker = ChaosWorker(_describe, schedule, str(tmp_path))
        # Inline execution (workers=1) must never os._exit the run.
        with pytest.raises(ChaosError, match="main process"):
            worker(_Item(repetition=3))

    def test_second_attempt_behaves(self, tmp_path):
        item = _Item(repetition=5)
        schedule = ChaosSchedule(kill_first_attempt=(5,))
        worker = ChaosWorker(_describe, schedule, str(tmp_path))
        with pytest.raises(ChaosError):
            worker(item)  # first attempt misbehaves (refused inline)
        # The marker survives the "crash"; the retry runs clean.
        assert (tmp_path / "chaos-item-5.attempted").exists()
        assert worker(item) == repr(item)

    def test_hang_sleeps_once_then_proceeds(self, tmp_path, monkeypatch):
        naps = []
        monkeypatch.setattr(schedule_module, "sleep_s", naps.append)
        schedule = ChaosSchedule(hang_first_attempt=(7,), hang_s=3.0)
        worker = ChaosWorker(_describe, schedule, str(tmp_path))
        item = _Item(repetition=7)
        assert worker(item) == repr(item)
        assert worker(item) == repr(item)
        assert naps == [3.0]  # slept exactly once, on the first attempt
        assert (tmp_path / "chaos-item-7.attempted").exists()

    def test_labels_keep_marker_namespaces_apart(self, tmp_path, monkeypatch):
        monkeypatch.setattr(schedule_module, "sleep_s", lambda _s: None)
        schedule = ChaosSchedule(hang_first_attempt=(1,), hang_s=0.001)
        first = ChaosWorker(_describe, schedule, str(tmp_path), label="run-a")
        second = ChaosWorker(_describe, schedule, str(tmp_path), label="run-b")
        first(_Item(repetition=1))
        # run-b has its own first-attempt ledger: its marker is fresh.
        assert (tmp_path / "run-a-item-1.attempted").exists()
        assert not (tmp_path / "run-b-item-1.attempted").exists()
        second(_Item(repetition=1))
        assert (tmp_path / "run-b-item-1.attempted").exists()
