"""Tests for the in-network aggregation convergecast."""

from __future__ import annotations

import pytest

from repro.core.aggregation import AggregationPolicy, run_aggregation
from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.tree import build_collection_tree
from repro.sim.packet import Packet


class TestAggregationPolicy:
    @pytest.fixture()
    def tree(self, quick_topology):
        return build_collection_tree(
            quick_topology.secondary.graph, quick_topology.secondary.base_station
        )

    def test_workload_is_exactly_the_leaves(self, tree):
        policy = AggregationPolicy(tree)
        packets = policy.build_workload()
        children = tree.children()
        leaves = {
            node
            for node in range(tree.num_nodes)
            if not children[node] and node != tree.root
        }
        assert {p.source for p in packets} == leaves

    def test_interior_releases_after_last_child(self, tree):
        policy = AggregationPolicy(tree)
        policy.build_workload()
        children = tree.children()
        interior = next(
            node
            for node in range(1, tree.num_nodes)
            if len(children[node]) >= 2
        )
        kids = children[interior]
        for kid in kids[:-1]:
            assert policy.on_data_arrival(
                Packet(packet_id=kid, source=kid), interior
            ) == []
        released = policy.on_data_arrival(
            Packet(packet_id=kids[-1], source=kids[-1]), interior
        )
        assert len(released) == 1
        assert released[0].source == interior

    def test_leaf_receiving_is_an_error(self, tree):
        policy = AggregationPolicy(tree)
        policy.build_workload()
        children = tree.children()
        leaf = next(
            node
            for node in range(1, tree.num_nodes)
            if not children[node]
        )
        with pytest.raises(SimulationError):
            policy.on_data_arrival(Packet(packet_id=0, source=1), leaf)

    def test_base_station_never_transmits(self, tree):
        policy = AggregationPolicy(tree)
        with pytest.raises(ConfigurationError):
            policy.next_hop(tree.root, Packet(packet_id=0, source=1))


class TestRunAggregation:
    def test_completes_with_one_report_per_bs_child(self, tiny_topology, streams):
        result = run_aggregation(tiny_topology, streams.spawn("agg-1"))
        assert result.completed
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        assert result.delivered == tree.root_degree()
        # Every node transmits exactly once (the defining property of
        # aggregation scheduling).
        assert set(result.tx_successes) <= set(range(1, tree.num_nodes))
        assert all(count == 1 for count in result.tx_successes.values())
        assert len(result.tx_successes) == tree.num_nodes - 1

    def test_aggregation_is_much_faster_than_collection(
        self, quick_topology, streams
    ):
        aggregation = run_aggregation(
            quick_topology, streams.spawn("agg-2"), blocking="homogeneous"
        )
        collection = run_addc_collection(
            quick_topology,
            streams.spawn("agg-2-collect"),
            blocking="homogeneous",
            with_bounds=False,
        )
        assert aggregation.completed and collection.result.completed
        # Collection pushes n packets through the base station; aggregation
        # needs one transmission per node with no root bottleneck.
        assert aggregation.delay_slots * 2 < collection.result.delay_slots

    def test_deterministic(self, tiny_topology, streams):
        delays = [
            run_aggregation(tiny_topology, streams.spawn("agg-3")).delay_slots
            for _ in range(2)
        ]
        assert delays[0] == delays[1]

    def test_bfs_tree_variant(self, tiny_topology, streams):
        result = run_aggregation(
            tiny_topology, streams.spawn("agg-4"), use_cds_tree=False
        )
        assert result.completed
