"""Integration tests for repro.chaos.scenarios: the evidence grid, live.

Only the two in-process scenarios run here (degradation and storage);
the worker and service scenarios need real subprocesses and are covered
by the CI ``chaos gate --smoke`` step.  What these tests pin is that the
scenarios produce *passing* evidence on a healthy tree — most
importantly the empty-schedule purity comparison, which is the
determinism contract for the entire chaos layer.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.chaos.contracts import (
    CacheNeverServesStaleContract,
    DeliveryBooksBalanceContract,
    EmptySchedulePurityContract,
    MonotoneDegradationContract,
    ResumeIdentityContract,
)
from repro.chaos.scenarios import (
    GATE_SEED,
    run_degradation_scenario,
    run_storage_scenario,
    scenario_config,
)


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


def test_scenario_config_is_tiny_and_seeded():
    config = scenario_config(101)
    assert config.seed == 101
    assert config.num_sus == 20  # the fast fixture, not the paper scale


def test_degradation_scenario_produces_passing_evidence():
    figures, evidence = run_degradation_scenario(
        seed=GATE_SEED, intensities=(0.0, 0.5), horizon_slots=800
    )
    degradation = evidence["degradation"]
    rows = degradation["rows"]
    assert [row["intensity"] for row in rows] == [0.0, 0.5]
    # The purity comparison ran and held: empty-schedule chaos is the
    # plain path, bit for bit, RNG positions included.
    assert degradation["empty_schedule"]["identical"], degradation[
        "empty_schedule"
    ]["detail"]
    assert rows[0]["delivery_ratio"] == 1.0
    assert rows[0]["fault_events"] == 0
    for name in (
        "delivery_ratio_heaviest",
        "availability_heaviest",
        "fault_events_heaviest",
    ):
        assert name in figures
    # The degradation-facing contracts accept this evidence as-is.
    for contract in (
        MonotoneDegradationContract(),
        DeliveryBooksBalanceContract(),
        EmptySchedulePurityContract(),
    ):
        for check in contract.evaluate(evidence):
            assert check.passed, f"{contract.id}: {check.detail}"


def test_storage_scenario_produces_passing_evidence(tmp_path):
    figures, evidence = run_storage_scenario(tmp_path, seed=GATE_SEED)
    storage = evidence["storage"]
    assert storage["write_failures_loud"]
    assert storage["faults_injected"] >= 1
    assert "storage_faults_injected" in figures
    # The storage-facing contracts accept this evidence as-is.
    for contract in (
        ResumeIdentityContract(),
        CacheNeverServesStaleContract(),
    ):
        for check in contract.evaluate(evidence):
            assert check.passed, f"{contract.id}: {check.detail}"
