"""Tests for JSON persistence of experiment results."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ExperimentIOError
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import (
    comparison_point_from_dict,
    comparison_point_to_dict,
    load_sweep,
    save_sweep,
)
from repro.experiments.runner import ComparisonPoint
from repro.metrics.aggregate import summarize_delays


def make_point(p_t: float = 0.3) -> ComparisonPoint:
    return ComparisonPoint(
        config=ExperimentConfig.quick_scale().with_overrides(p_t=p_t),
        addc_delay_ms=summarize_delays([100.0, 110.0]),
        coolest_delay_ms=summarize_delays([320.0, 350.0]),
        addc_delays=[100.0, 110.0],
        coolest_delays=[320.0, 350.0],
    )


class TestRoundTrip:
    def test_point_round_trip(self):
        original = make_point()
        rebuilt = comparison_point_from_dict(
            comparison_point_to_dict(original)
        )
        assert rebuilt.config == original.config
        assert rebuilt.addc_delays == original.addc_delays
        assert rebuilt.coolest_delays == original.coolest_delays
        assert rebuilt.addc_delay_ms.mean == original.addc_delay_ms.mean
        assert rebuilt.speedup == pytest.approx(original.speedup)

    def test_sweep_round_trip(self, tmp_path):
        path = tmp_path / "fig6c.json"
        points = [(0.1, make_point(0.1)), (0.3, make_point(0.3))]
        save_sweep(path, "fig6c", points)
        name, loaded = load_sweep(path)
        assert name == "fig6c"
        assert [x for x, _ in loaded] == [0.1, 0.3]
        assert loaded[1][1].config.p_t == 0.3

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(path, "demo", [(1.0, make_point())])
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert payload["points"][0]["x"] == 1.0


class TestErrors:
    def test_missing_keys(self):
        with pytest.raises(ConfigurationError):
            comparison_point_from_dict({"config": {}})

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ExperimentIOError) as excinfo:
            load_sweep(tmp_path / "missing.json")
        assert "missing.json" in str(excinfo.value)

    def test_not_a_sweep(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"something": 1}))
        with pytest.raises(ExperimentIOError) as excinfo:
            load_sweep(path)
        assert "bad.json" in str(excinfo.value)

    def test_corrupt_point_names_path(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text(
            json.dumps({"name": "fig6c", "points": [{"x": 0.1}]})
        )
        with pytest.raises(ExperimentIOError) as excinfo:
            load_sweep(path)
        assert "corrupt.json" in str(excinfo.value)

    def test_truncated_json_names_path(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text('{"name": "fig6c", "points": [')
        with pytest.raises(ExperimentIOError) as excinfo:
            load_sweep(path)
        assert "truncated.json" in str(excinfo.value)

    def test_atomic_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(path, "fig6c", [(0.1, make_point(0.1))])
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_save_overwrites_previous_artifact(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(path, "fig6c", [(0.1, make_point(0.1))])
        save_sweep(path, "fig6c", [(0.2, make_point(0.2))])
        name, points = load_sweep(path)
        assert name == "fig6c"
        assert [x for x, _ in points] == [0.2]

    def test_save_fsyncs_the_parent_directory(self, tmp_path, monkeypatch):
        """Regression: ``os.replace`` alone can be undone by a power loss
        unless the parent directory entry is flushed too — every saved
        artifact must be sealed with a directory fsync."""
        import os
        import stat

        dir_fsyncs = []
        real_fsync = os.fsync

        def spying_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                dir_fsyncs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        save_sweep(tmp_path / "sweep.json", "fig6c", [(0.1, make_point(0.1))])
        assert dir_fsyncs, "save_sweep never fsynced the parent directory"
