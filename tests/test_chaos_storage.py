"""Tests for repro.chaos.storage: scheduled durable-write faults.

The contract under test: fault schedules are drawn once from a *named*
chaos stream (deterministic, replayable), an empty schedule leaves the
write path untouched, and an injected fault looks exactly like the real
failure — ``ENOSPC``/``EIO`` errno, torn debris in the target file —
so the recovery code exercised is the code production would run.
"""

from __future__ import annotations

import errno
import json

import pytest

import repro.obs as obs
from repro.chaos import (
    FAULT_KINDS,
    StorageChaos,
    StorageFault,
    StorageFaultPlan,
    storage_fault_plan,
    tear_ndjson_tail,
)
from repro.errors import ChaosError
from repro.obs.recorder import MetricsRecorder
from repro.rng import StreamFactory
from repro.storage import atomic_write_text


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


class TestPlanValidation:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ChaosError, match="unknown storage fault kind"):
            StorageFault(0, "cosmic-ray")

    def test_negative_index_is_rejected(self):
        with pytest.raises(ChaosError, match="write_index"):
            StorageFault(-1, "eio")

    def test_payload_fraction_bounds(self):
        with pytest.raises(ChaosError, match="payload_fraction"):
            StorageFault(0, "torn", payload_fraction=1.0)
        StorageFault(0, "torn", payload_fraction=0.0)  # legal edge

    def test_duplicate_index_is_rejected(self):
        with pytest.raises(ChaosError, match="more than once"):
            StorageFaultPlan(
                (StorageFault(2, "eio"), StorageFault(2, "enospc"))
            )

    def test_plan_round_trips_to_dict(self):
        plan = StorageFaultPlan(
            (StorageFault(1, "torn", 0.25),), match="artifact"
        )
        payload = plan.to_dict()
        assert payload["match"] == "artifact"
        assert payload["faults"] == [
            {"write_index": 1, "kind": "torn", "payload_fraction": 0.25}
        ]


class TestPlanGeneration:
    def test_zero_intensity_yields_empty_plan(self):
        plan = storage_fault_plan(StreamFactory(7), 100, 0.0)
        assert plan.empty
        assert plan.fault_at(0) is None

    def test_zero_writes_yields_empty_plan(self):
        assert storage_fault_plan(StreamFactory(7), 0, 1.0).empty

    def test_same_seed_same_plan(self):
        draw = lambda: storage_fault_plan(  # noqa: E731
            StreamFactory(42), 50, 0.3
        )
        assert draw().to_dict() == draw().to_dict()

    def test_plan_shape_respects_the_menu(self):
        plan = storage_fault_plan(StreamFactory(3), 40, 0.25)
        assert len(plan.faults) == 10
        indices = [fault.write_index for fault in plan.faults]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        for fault in plan.faults:
            assert 0 <= fault.write_index < 40
            assert fault.kind in FAULT_KINDS
            assert 0.1 <= fault.payload_fraction < 0.9

    def test_validation_errors(self):
        with pytest.raises(ChaosError, match="writes_expected"):
            storage_fault_plan(StreamFactory(1), -1, 0.5)
        with pytest.raises(ChaosError, match="intensity"):
            storage_fault_plan(StreamFactory(1), 10, -0.1)
        with pytest.raises(ChaosError, match="unknown storage fault kind"):
            storage_fault_plan(StreamFactory(1), 10, 0.5, kinds=("gamma",))


class TestStorageChaos:
    def test_enospc_fires_at_the_scheduled_write_only(self, tmp_path):
        recorder = MetricsRecorder()
        obs.set_recorder(recorder)
        plan = StorageFaultPlan((StorageFault(1, "enospc"),))
        with StorageChaos(plan) as chaos:
            atomic_write_text(tmp_path / "a.json", "{}")
            with pytest.raises(OSError) as caught:
                atomic_write_text(tmp_path / "b.json", "{}")
            atomic_write_text(tmp_path / "c.json", "{}")
        assert caught.value.errno == errno.ENOSPC
        assert "chaos: injected enospc" in str(caught.value)
        assert (tmp_path / "a.json").exists()
        assert not (tmp_path / "b.json").exists()  # atomicity held
        assert (tmp_path / "c.json").exists()
        assert chaos.writes_seen == 3
        assert chaos.injected == [(1, "enospc", str(tmp_path / "b.json"))]
        assert recorder.counters["chaos.storage.injected"] == 1

    def test_torn_fault_leaves_unparseable_debris_in_the_target(
        self, tmp_path
    ):
        payload = json.dumps({"name": "comparison", "rows": list(range(40))})
        plan = StorageFaultPlan(
            (StorageFault(0, "torn", payload_fraction=0.5),)
        )
        target = tmp_path / "artifact.json"
        with StorageChaos(plan):
            with pytest.raises(OSError) as caught:
                atomic_write_text(target, payload)
        assert caught.value.errno == errno.EIO
        # The killed-writer debris: a strict payload prefix, not valid JSON.
        debris = target.read_text()
        assert debris == payload[: len(debris)]
        assert 0 < len(debris) < len(payload)
        with pytest.raises(json.JSONDecodeError):
            json.loads(debris)

    def test_match_filter_does_not_advance_the_counter(self, tmp_path):
        plan = StorageFaultPlan(
            (StorageFault(0, "eio"),), match="artifact"
        )
        with StorageChaos(plan) as chaos:
            atomic_write_text(tmp_path / "manifest.json", "{}")
            atomic_write_text(tmp_path / "other.json", "{}")
            with pytest.raises(OSError):
                atomic_write_text(tmp_path / "artifact.json", "{}")
        assert chaos.writes_seen == 1
        assert chaos.injected == [(0, "eio", str(tmp_path / "artifact.json"))]

    def test_empty_plan_is_invisible(self, tmp_path):
        with StorageChaos(StorageFaultPlan()) as chaos:
            atomic_write_text(tmp_path / "a.json", "{}")
        assert chaos.writes_seen == 1
        assert chaos.injected == []
        assert (tmp_path / "a.json").read_text() == "{}"

    def test_hook_is_restored_on_exit(self, tmp_path):
        plan = StorageFaultPlan((StorageFault(0, "enospc"),))
        with StorageChaos(plan):
            with pytest.raises(OSError):
                atomic_write_text(tmp_path / "a.json", "{}")
        atomic_write_text(tmp_path / "a.json", "{}")  # hook gone
        assert (tmp_path / "a.json").read_text() == "{}"

    def test_not_reentrant(self):
        chaos = StorageChaos(StorageFaultPlan())
        with chaos:
            with pytest.raises(ChaosError, match="not re-entrant"):
                chaos.__enter__()

    def test_nested_scopes_restore_the_outer_hook(self, tmp_path):
        outer = StorageFaultPlan((StorageFault(2, "eio"),))
        with StorageChaos(outer) as outer_chaos:
            with StorageChaos(StorageFaultPlan()) as inner:
                atomic_write_text(tmp_path / "inner.json", "{}")
            assert inner.writes_seen == 1
            # Back on the outer plan: its counter resumes from where the
            # inner scope shadowed it.
            atomic_write_text(tmp_path / "after.json", "{}")
            assert outer_chaos.writes_seen == 1


class TestTearNdjsonTail:
    def test_tears_only_the_final_line(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        lines = [json.dumps({"record": index}) for index in range(3)]
        path.write_text("\n".join(lines) + "\n")
        removed = tear_ndjson_tail(path)
        assert removed > 0
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")
        kept = raw.split(b"\n")
        # The first two records survive intact; the last is a torn prefix.
        assert [json.loads(line) for line in kept[:2]] == [
            {"record": 0},
            {"record": 1},
        ]
        assert kept[2] == lines[2].encode()[: len(kept[2])]
        with pytest.raises(json.JSONDecodeError):
            json.loads(kept[2])

    def test_single_line_file_can_be_torn_to_nothing(self, tmp_path):
        path = tmp_path / "one.ndjson"
        path.write_text('{"only": 1}\n')
        removed = tear_ndjson_tail(path, keep_fraction=0.0)
        assert removed == 12
        assert path.read_bytes() == b""

    def test_empty_file_has_nothing_to_tear(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        with pytest.raises(ChaosError, match="no record line"):
            tear_ndjson_tail(path)

    def test_keep_fraction_bounds(self, tmp_path):
        path = tmp_path / "j.ndjson"
        path.write_text('{"a": 1}\n')
        with pytest.raises(ChaosError, match="keep_fraction"):
            tear_ndjson_tail(path, keep_fraction=1.0)
