"""Tests for workload generation and cross-run metric aggregation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.config import ExperimentConfig
from repro.metrics.aggregate import (
    relative_delay_reduction_percent,
    summarize_delays,
)
from repro.workloads.snapshot import partial_snapshot_workload, snapshot_workload
from repro.workloads.sweep import sweep_configs


class TestSnapshotWorkload:
    def test_one_packet_per_su(self, quick_topology):
        packets = snapshot_workload(quick_topology.secondary)
        assert len(packets) == quick_topology.secondary.num_sus
        assert sorted(p.source for p in packets) == list(
            quick_topology.secondary.su_ids()
        )
        assert len({p.packet_id for p in packets}) == len(packets)

    def test_multiple_packets(self, quick_topology):
        packets = snapshot_workload(quick_topology.secondary, packets_per_su=3)
        assert len(packets) == 3 * quick_topology.secondary.num_sus

    def test_invalid_count(self, quick_topology):
        with pytest.raises(WorkloadError):
            snapshot_workload(quick_topology.secondary, packets_per_su=0)

    def test_partial_sources(self, quick_topology):
        packets = partial_snapshot_workload(quick_topology.secondary, [1, 5, 9])
        assert [p.source for p in packets] == [1, 5, 9]

    def test_partial_rejects_base_station(self, quick_topology):
        with pytest.raises(WorkloadError):
            partial_snapshot_workload(quick_topology.secondary, [0])


class TestSweepConfigs:
    def test_replaces_field(self):
        base = ExperimentConfig.quick_scale()
        points = sweep_configs(base, "p_t", [0.1, 0.2])
        assert [p.value for p in points] == [0.1, 0.2]
        assert points[0].config.p_t == 0.1
        assert points[0].config.num_sus == base.num_sus

    def test_unknown_field(self):
        with pytest.raises(ConfigurationError):
            sweep_configs(ExperimentConfig.quick_scale(), "nope", [1])

    def test_empty_values(self):
        with pytest.raises(ConfigurationError):
            sweep_configs(ExperimentConfig.quick_scale(), "p_t", [])

    def test_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            sweep_configs({"p_t": 0.3}, "p_t", [0.1])


class TestAggregation:
    def test_summary_statistics(self):
        stats = summarize_delays([10.0, 20.0, 30.0])
        assert stats.mean == 20.0
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0
        assert stats.std == pytest.approx(10.0)
        assert stats.stderr == pytest.approx(10.0 / 3**0.5)

    def test_single_repetition(self):
        stats = summarize_delays([5.0])
        assert stats.std == 0.0
        assert stats.stderr == 0.0

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ConfigurationError):
            summarize_delays([])
        with pytest.raises(ConfigurationError):
            summarize_delays([1.0, float("inf")])

    def test_reduction_percent(self):
        # Coolest taking 3.66x ADDC's time = "266% less delay".
        assert relative_delay_reduction_percent(100.0, 366.0) == pytest.approx(266.0)

    def test_reduction_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            relative_delay_reduction_percent(0.0, 10.0)
