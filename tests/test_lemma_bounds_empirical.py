"""Empirical checks of the paper's counting lemmas on real deployments.

The delay analysis rests on Lemmas 1, 5 and 6 — deterministic or
high-probability bounds on how crowded an SU's PCR neighbourhood can be.
These tests evaluate the measured quantities on deployed topologies and
compare them against the bounds.
"""

from __future__ import annotations

import pytest

from repro.core.packing import (
    lemma5_backbone_bound,
    lemma6_delta_bound,
    lemma6_neighborhood_bound,
)
from repro.core.pcr import PcrParameters, compute_pcr
from repro.geometry.distance import distances_from
from repro.graphs.cds import build_cds
from repro.graphs.tree import NodeRole, build_collection_tree


@pytest.fixture(scope="module")
def deployment(quick_topology):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=quick_topology.primary.power,
            su_power=quick_topology.secondary.power,
            pu_radius=quick_topology.primary.radius,
            su_radius=quick_topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    tree = build_collection_tree(
        quick_topology.secondary.graph, quick_topology.secondary.base_station
    )
    return quick_topology, pcr, tree


class TestLemma1:
    def test_dominators_touch_at_most_12_connectors(self, quick_topology):
        cds = build_cds(
            quick_topology.secondary.graph, quick_topology.secondary.base_station
        )
        graph = quick_topology.secondary.graph
        connectors = set(cds.connectors)
        for dominator in cds.dominators:
            adjacent = sum(
                1 for nbr in graph.neighbors(dominator) if nbr in connectors
            )
            assert adjacent <= 12


class TestLemma5:
    def test_backbone_count_within_pcr_bounded(self, deployment):
        topology, pcr, tree = deployment
        positions = topology.secondary.positions
        backbone = [
            node
            for node in range(tree.num_nodes)
            if tree.roles[node] in (NodeRole.DOMINATOR, NodeRole.CONNECTOR)
        ]
        bound = lemma5_backbone_bound(pcr.kappa)
        for node in range(tree.num_nodes):
            distances = distances_from(positions[node], positions[backbone])
            count = int((distances <= pcr.pcr).sum())
            assert count <= bound


class TestLemma6:
    def test_su_count_within_pcr_bounded(self, deployment):
        topology, pcr, tree = deployment
        positions = topology.secondary.positions
        delta = tree.max_degree()
        bound = lemma6_neighborhood_bound(pcr.kappa, delta)
        for node in range(topology.secondary.num_nodes):
            distances = distances_from(positions[node], positions)
            count = int((distances <= pcr.pcr).sum()) - 1
            assert count <= bound

    def test_tree_degree_within_high_probability_bound(self, deployment):
        topology, _, tree = deployment
        n = topology.secondary.num_sus
        c0 = topology.region.area / n
        assert tree.max_degree() <= lemma6_delta_bound(
            n, topology.secondary.radius, c0
        )
