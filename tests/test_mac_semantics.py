"""Slot-by-slot MAC semantics under scripted randomness.

These tests replace the RNG with scripted streams so every backoff value
is chosen by the test, then assert the exact contention outcome the
MODEL.md semantics prescribe: who wins each slot, what remainder a frozen
node keeps, and how the fairness wait shifts the next round.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import db_to_linear
from repro.geometry.region import SquareRegion
from repro.graphs.tree import build_collection_tree
from repro.network.primary import BernoulliActivity, PrimaryNetwork
from repro.network.secondary import SecondaryNetwork
from repro.network.topology import CrnTopology
from repro.sim.engine import SlottedEngine
from repro.sim.trace import TraceKind, TraceLog
from repro.spectrum.sensing import CarrierSenseMap


class ScriptedRng:
    """Minimal numpy-Generator stand-in replaying scripted values.

    ``random()`` pops from the script (cycling its last value when
    exhausted); the vector forms return constants sized to match.
    """

    def __init__(self, script: List[float]):
        self._script = list(script)
        self._cursor = 0

    def _next(self) -> float:
        if self._cursor < len(self._script):
            value = self._script[self._cursor]
            self._cursor += 1
            return value
        return self._script[-1] if self._script else 0.5

    def random(self, size=None):
        if size is None:
            return self._next()
        return np.full(size, self._next())

    def integers(self, low, high=None, size=None):
        if high is None:
            low, high = 0, low
        span = max(int(high) - int(low), 1)
        if size is None:
            return int(low) + int(self._next() * span)
        return np.full(size, int(low) + int(self._next() * span), dtype=int)


class ScriptedStreams:
    """StreamFactory stand-in dispensing scripted per-name streams."""

    def __init__(self, scripts: Dict[str, List[float]]):
        self._scripts = scripts

    def stream(self, name: str) -> ScriptedRng:
        return ScriptedRng(self._scripts.get(name, [0.5]))

    def spawn(self, name: str) -> "ScriptedStreams":
        return self


def two_su_topology() -> CrnTopology:
    """Base station plus two SUs, everyone inside one contention domain."""
    secondary = SecondaryNetwork(
        positions=np.array([[15.0, 15.0], [11.0, 12.0], [19.0, 12.0]]),
        power=10.0,
        radius=10.0,
    )
    primary = PrimaryNetwork(
        positions=np.empty((0, 2)),
        power=10.0,
        radius=10.0,
        activity=BernoulliActivity(0.0),
    )
    return CrnTopology(
        region=SquareRegion(30.0), primary=primary, secondary=secondary
    )


def make_engine(backoff_script: List[float], fairness=True, packets=1):
    """Engine over the 2-SU topology with scripted backoff draws.

    The engine converts a draw ``u`` into the timer ``tau_c * (1 - u)``,
    so a script value of e.g. 0.6 yields a 0.2 ms timer (tau_c = 0.5).
    """
    topology = two_su_topology()
    sense_map = CarrierSenseMap(topology, 24.0)
    tree = build_collection_tree(topology.secondary.graph, 0)
    trace = TraceLog()
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree, fairness_wait=fairness),
        streams=ScriptedStreams({"backoff": backoff_script}),
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        max_slots=1000,
        trace=trace,
    )
    engine.load_snapshot(packets_per_su=packets)
    return engine, trace


def winners_by_slot(trace: TraceLog) -> List[int]:
    return [event.node for event in trace.of_kind(TraceKind.TX_SUCCESS)]


class TestContentionOrder:
    def test_smaller_timer_wins_the_first_slot(self):
        # Draws: node 1 gets u=0.2 -> timer 0.4; node 2 gets u=0.8 ->
        # timer 0.1.  Node 2 must transmit first.
        engine, trace = make_engine([0.2, 0.8])
        engine.run()
        assert winners_by_slot(trace)[0] == 2

    def test_frozen_node_keeps_remainder_and_wins_next_slot(self):
        engine, trace = make_engine([0.2, 0.8, 0.5, 0.5])
        engine.run()
        # Slot 0: node 2 wins at 0.1; node 1 freezes having counted 0.1 of
        # its 0.4 timer (remainder 0.3).  Node 2 is done (single packet),
        # so slot 1 belongs to node 1.
        assert winners_by_slot(trace) == [2, 1]
        freeze = trace.of_kind(TraceKind.FREEZE)[0]
        assert freeze.node == 1
        assert freeze.time_in_slot == pytest.approx(0.1)

    def test_exact_freeze_consumption(self):
        engine, trace = make_engine([0.0, 0.9, 0.5, 0.5], packets=1)
        engine.run()
        # Node 1 timer 0.5, node 2 timer 0.05: node 2 wins at 0.05 and
        # node 1's remainder is 0.45 — visible as its slot-1 start time.
        starts = {
            (event.node, event.slot): event.time_in_slot
            for event in trace.of_kind(TraceKind.TX_START)
        }
        assert starts[(2, 0)] == pytest.approx(0.05)
        assert starts[(1, 1)] == pytest.approx(0.45)


class TestFairnessWait:
    def test_wait_plus_fresh_draw_delays_second_packet(self):
        # Both nodes hold 2 packets.  Node 2 draws timer 0.1 (u=0.8) and
        # wins slot 0; its next-round expiry is wait (0.5 - 0.1 = 0.4)
        # plus a fresh 0.25 timer (u=0.5) = 0.65... but expiries are
        # within-slot: node 1's frozen remainder 0.3 beats it in slot 1.
        engine, trace = make_engine([0.2, 0.8, 0.5, 0.5, 0.5, 0.5], packets=2)
        engine.run()
        assert winners_by_slot(trace)[:3] == [2, 1, 2]

    def test_without_wait_winner_can_repeat(self):
        # Same draws, fairness off: node 2's next expiry is just the fresh
        # 0.25 timer vs node 1's 0.3 remainder -> node 2 wins again.
        engine, trace = make_engine(
            [0.2, 0.8, 0.5, 0.5, 0.5, 0.5], fairness=False, packets=2
        )
        engine.run()
        assert winners_by_slot(trace)[:2] == [2, 2]


class TestDeliveryBookkeeping:
    def test_all_packets_delivered_in_order(self):
        engine, trace = make_engine([0.2, 0.8, 0.5, 0.5], packets=1)
        result = engine.run()
        assert result.completed
        assert result.delay_slots == 2
        deliveries = trace.of_kind(TraceKind.DELIVERY)
        assert [event.peer for event in deliveries] == [2, 1]
