"""End-to-end integration tests: the paper's headline claims at test scale."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.core.fairness import jain_index
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison_point
from repro.network.deployment import deploy_crn
from repro.routing.coolest import run_coolest_collection
from repro.rng import StreamFactory


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig.quick_scale().with_overrides(repetitions=2)


class TestHeadlineComparison:
    def test_addc_beats_coolest_in_paper_mode(self, small_config):
        """The paper's central claim, reproduced under its own mean-field
        blocking model: ADDC finishes the collection task faster than the
        Coolest baseline."""
        point = run_comparison_point(small_config)
        assert point.speedup > 1.0
        # The paper reports 171%-314% less delay; at test scale we accept a
        # broad band around it but require a clear win.
        assert point.reduction_percent > 30.0

    def test_ordering_survives_geometric_blocking(self, small_config):
        point = run_comparison_point(
            small_config.with_overrides(blocking="geometric", repetitions=1)
        )
        assert point.speedup > 0.8  # never catastrophically inverted

    def test_delay_grows_with_pu_activity(self, small_config):
        """Fig. 6(c)'s shape at test scale: higher p_t, higher delay."""
        low = run_comparison_point(
            small_config.with_overrides(p_t=0.1, repetitions=1)
        )
        high = run_comparison_point(
            small_config.with_overrides(p_t=0.4, repetitions=1)
        )
        assert high.addc_delay_ms.mean > low.addc_delay_ms.mean
        assert high.coolest_delay_ms.mean > low.coolest_delay_ms.mean


class TestSingleRunProperties:
    @pytest.fixture(scope="class")
    def deployed(self, small_config):
        factory = StreamFactory(99).spawn("integration")
        topology = deploy_crn(small_config.deployment_spec(), factory)
        return topology, factory

    def test_addc_complete_and_within_bounds(self, deployed):
        topology, factory = deployed
        outcome = run_addc_collection(
            topology, factory.spawn("addc"), blocking="homogeneous"
        )
        result = outcome.result
        assert result.completed
        assert result.delivered == topology.secondary.num_sus
        assert result.delay_slots <= outcome.bounds.theorem2_delay_slots
        assert 0 < result.capacity_packets_per_slot <= 1.0

    def test_addc_service_is_reasonably_fair(self, deployed):
        topology, factory = deployed
        outcome = run_addc_collection(
            topology, factory.spawn("addc-fair"), blocking="homogeneous"
        )
        # Jain index over per-source end-to-end delays: with the fairness
        # wait no source should be starved by orders of magnitude.
        delays = [r.delay_slots for r in outcome.result.deliveries]
        assert jain_index(delays) > 0.5

    def test_coolest_complete(self, deployed):
        topology, factory = deployed
        outcome = run_coolest_collection(
            topology, factory.spawn("coolest"), blocking="homogeneous"
        )
        assert outcome.result.completed
        assert outcome.result.delivered == topology.secondary.num_sus

    def test_same_deployment_same_results(self, small_config):
        points = [
            run_comparison_point(small_config.with_overrides(repetitions=1))
            for _ in range(2)
        ]
        assert points[0].addc_delays == points[1].addc_delays
        assert points[0].coolest_delays == points[1].coolest_delays
