"""Tests for repro.chaos.proxy: the fault-injecting AF_UNIX proxy.

A real in-process daemon sits behind the proxy, so every assertion is
about actual ``service/v1`` bytes crossing an actual socket: partial
frames must reassemble, a dropped response must surface a typed error
(never a hang), and a stalled response must be bounded by the client's
timeout.  The backpressure property test at the bottom is the
determinism half: replaying the same proxy schedule against the same
offer sequence reproduces the same ``retry_after`` ladder, byte for
byte, run after run.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.chaos import (
    PROXY_FAULT_KINDS,
    ChaosSocketProxy,
    ConnectionFault,
    ProxySchedule,
)
from repro.errors import ChaosError, ServiceError
from repro.rng import StreamFactory
from repro.service.client import ServiceClient
from repro.service.daemon import ExperimentService
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue
from repro.service.server import ServiceServer

TINY = {"area": 900.0, "num_pus": 4, "num_sus": 20, "max_slots": 200_000}


def _spec(seed: int = 20120612) -> JobSpec:
    return JobSpec(
        kind="compare", seed=seed, repetitions=1, overrides=dict(TINY)
    )


class TestProxySchedule:
    def test_fault_validation(self):
        with pytest.raises(ChaosError, match="unknown proxy fault kind"):
            ConnectionFault(0, "teleport")
        with pytest.raises(ChaosError, match="connection"):
            ConnectionFault(-1, "stall")
        with pytest.raises(ChaosError, match=">= 1"):
            ConnectionFault(0, "partial_frames", chunk=0)

    def test_duplicate_connection_is_rejected(self):
        with pytest.raises(ChaosError, match="twice"):
            ProxySchedule(
                (ConnectionFault(1, "stall"), ConnectionFault(1, "stall"))
            )

    def test_zero_intensity_yields_empty_schedule(self):
        schedule = ProxySchedule.from_stream(StreamFactory(5), 20, 0.0)
        assert schedule.empty
        assert schedule.fault_for(0) is None

    def test_same_seed_same_schedule(self):
        draw = lambda: ProxySchedule.from_stream(  # noqa: E731
            StreamFactory(11), 20, 0.4
        )
        first, second = draw(), draw()
        assert first.to_dict() == second.to_dict()
        assert len(first.faults) == 8
        for fault in first.faults:
            assert 0 <= fault.connection < 20
            assert fault.kind in PROXY_FAULT_KINDS


class TestProxyAgainstLiveDaemon:
    @pytest.fixture()
    def server(self, tmp_path):
        service = ExperimentService(tmp_path / "state", queue_capacity=2)
        server = ServiceServer(
            service,
            tmp_path / "service.sock",
            heartbeat_s=0.2,
            poll_s=0.05,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        probe = ServiceClient(tmp_path / "service.sock", timeout_s=30.0)
        for _ in range(200):
            try:
                probe.ping()
                break
            except ServiceError:
                obs.clock.sleep_s(0.01)
        else:
            pytest.fail("server never came up")
        yield tmp_path / "service.sock"
        server.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_clean_proxy_is_a_transparent_passthrough(self, server, tmp_path):
        proxy_path = tmp_path / "proxy.sock"
        with ChaosSocketProxy(server, proxy_path) as proxy:
            client = ServiceClient(proxy_path, timeout_s=30.0)
            assert client.ping()["type"] == "pong"
            status = client.status()
            assert status["type"] == "status_report"
        assert proxy.connections_served == 2
        assert proxy.faults_applied == []

    def test_partial_frames_reassemble_into_one_message(
        self, server, tmp_path
    ):
        schedule = ProxySchedule(
            (
                ConnectionFault(
                    0, "partial_frames", chunk=4, stall_s=0.01
                ),
            )
        )
        proxy_path = tmp_path / "proxy.sock"
        with ChaosSocketProxy(server, proxy_path, schedule) as proxy:
            client = ServiceClient(proxy_path, timeout_s=30.0)
            # One NDJSON line arrives across many 4-byte recvs; the framed
            # reader must reassemble it into exactly the daemon's answer.
            status = client.status()
            assert status["type"] == "status_report"
            assert status["capacity"] == 2
        assert proxy.faults_applied == [(0, "partial_frames")]

    def test_dropped_response_raises_typed_error_not_hang(
        self, server, tmp_path
    ):
        schedule = ProxySchedule(
            (ConnectionFault(0, "drop_mid_response", after_bytes=10),)
        )
        proxy_path = tmp_path / "proxy.sock"
        with ChaosSocketProxy(server, proxy_path, schedule) as proxy:
            client = ServiceClient(proxy_path, timeout_s=30.0)
            with pytest.raises(ServiceError, match="mid-response"):
                client.ping()
            assert proxy.faults_applied == [(0, "drop_mid_response")]

    def test_stalled_response_is_bounded_by_the_socket_timeout(
        self, server, tmp_path
    ):
        schedule = ProxySchedule((ConnectionFault(0, "stall", stall_s=5.0),))
        proxy_path = tmp_path / "proxy.sock"
        naps = []

        def fake_sleep(seconds):
            naps.append(seconds)

        proxy = ChaosSocketProxy(
            server, proxy_path, schedule, sleep=fake_sleep
        )
        with proxy:
            client = ServiceClient(proxy_path, timeout_s=0.2)
            # With the stall neutered to a no-op sleep the answer arrives;
            # the point here is the fault *was* routed through the sleep
            # hook (a real stall would eat the whole stall_s).
            assert client.ping()["type"] == "pong"
        assert 5.0 in naps

    def test_double_start_is_refused(self, server, tmp_path):
        proxy = ChaosSocketProxy(server, tmp_path / "proxy.sock")
        with proxy:
            with pytest.raises(ChaosError, match="already running"):
                proxy.start()


# --------------------------------------------------------------------------- #
# backpressure determinism: same drop schedule -> same retry_after ladder
# --------------------------------------------------------------------------- #


def _retry_ladder(seed: int) -> list:
    """One simulated client/queue session under a proxy drop schedule.

    The queue starts full, so every offer is shed with a backoff; every
    connection the schedule drops makes the client re-offer (it never saw
    the answer).  The observable is the exact (decision, retry_after_s)
    sequence.
    """
    schedule = ProxySchedule.from_stream(
        StreamFactory(seed), connections_expected=12, intensity=0.5
    )
    queue = JobQueue(
        capacity=1, backoff_base_s=0.5, backoff_factor=2.0, backoff_max_s=4.0
    )
    assert queue.offer(_spec(), "occupier").decision == "queued"
    ladder = []
    for connection in range(12):
        admission = queue.offer(_spec(seed=connection), f"fp-{connection}")
        ladder.append((admission.decision, admission.retry_after_s))
        fault = schedule.fault_for(connection)
        if fault is not None and fault.kind == "drop_mid_response":
            retry = queue.offer(_spec(seed=connection), f"fp-{connection}")
            ladder.append((retry.decision, retry.retry_after_s))
    return ladder


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_retry_after_ladder_is_identical_across_runs(seed):
    first = _retry_ladder(seed)
    second = _retry_ladder(seed)
    assert first == second
    # Every offer against the full queue sheds, and the backoff ladder
    # escalates monotonically up to its cap.
    delays = [delay for decision, delay in first if decision == "shed"]
    assert len(delays) == len(first)
    assert delays[0] == 0.5
    for previous, current in zip(delays, delays[1:]):
        assert current >= previous
        assert current <= 4.0
