"""Statistical validation of the stochastic processes the analysis assumes.

Lemma 7 models a node's spectrum wait as geometric with parameter p_o;
these tests observe actual per-slot blocking sequences and check the
distributional claims (mean, independence-ish via run lengths) with
scipy's goodness-of-fit machinery.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.graphs.tree import build_collection_tree
from repro.sim.engine import SlottedEngine
from repro.spectrum.opportunity import per_node_opportunity_probability
from repro.spectrum.sensing import CarrierSenseMap


def observe_blocking(topology, streams, blocking, p_o=None, slots=4000):
    """Record each node's PU-blocked indicator for `slots` slots."""
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    history = []

    def hook(engine):
        if engine.slot < slots:
            history.append(list(engine._pu_busy))

    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        blocking=blocking,
        homogeneous_p_o=p_o,
        slot_hook=hook,
        max_slots=slots + 10,
    )
    # A heavy workload keeps the run alive for the whole observation.
    engine.load_snapshot(packets_per_su=50)
    engine.run()
    return sense_map, np.array(history[:slots]) > 0


class TestGeometricBlocking:
    def test_mean_field_blocking_rate_matches_p_o(self, tiny_topology, streams):
        p_o = 0.2
        _, blocked = observe_blocking(
            tiny_topology, streams.spawn("sv-1"), "homogeneous", p_o=p_o
        )
        rate = blocked.mean()
        assert rate == pytest.approx(1.0 - p_o, abs=0.02)

    def test_mean_field_free_runs_are_geometric(self, tiny_topology, streams):
        """Free-period lengths under the mean field must be Geometric(1-p_o):
        compare the observed run-length histogram by chi-square."""
        p_o = 0.3
        _, blocked = observe_blocking(
            tiny_topology, streams.spawn("sv-2"), "homogeneous", p_o=p_o
        )
        series = blocked[:, 1]  # one node's indicator
        # Lengths of consecutive free runs.
        runs = []
        current = 0
        for value in series:
            if not value:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        runs = np.array(runs)
        assert runs.size > 50
        # Geometric(q) with q = P(blocked) = 1 - p_o terminates a free run.
        q = 1.0 - p_o
        observed = np.array(
            [np.sum(runs == k) for k in range(1, 6)]
            + [np.sum(runs >= 6)],
            dtype=float,
        )
        probabilities = np.array(
            [q * (1 - q) ** (k - 1) for k in range(1, 6)]
            + [(1 - q) ** 5],
            dtype=float,
        )
        expected = probabilities / probabilities.sum() * observed.sum()
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > 0.01

    def test_geometric_mode_rate_matches_per_node_formula(
        self, tiny_topology, streams
    ):
        sense_map, blocked = observe_blocking(
            tiny_topology, streams.spawn("sv-3"), "geometric"
        )
        p_o = per_node_opportunity_probability(sense_map, 0.3)
        observed_free = 1.0 - blocked.mean(axis=0)
        # Per-node empirical free rates track the exact per-node formula.
        for node in range(len(p_o)):
            assert observed_free[node] == pytest.approx(p_o[node], abs=0.05)

    def test_geometric_mode_is_spatially_correlated(self, tiny_topology, streams):
        """Unlike the mean field, geometric blocking is correlated across
        nearby nodes (one PU blocks a whole disk)."""
        _, blocked_geo = observe_blocking(
            tiny_topology, streams.spawn("sv-4"), "geometric"
        )
        _, blocked_mf = observe_blocking(
            tiny_topology, streams.spawn("sv-5"), "homogeneous", p_o=0.12
        )

        def mean_pairwise_correlation(matrix):
            sample = matrix[:, 1:8].astype(float)
            correlations = np.corrcoef(sample.T)
            upper = correlations[np.triu_indices_from(correlations, k=1)]
            return np.nanmean(upper)

        assert mean_pairwise_correlation(blocked_geo) > 0.3
        assert abs(mean_pairwise_correlation(blocked_mf)) < 0.1
