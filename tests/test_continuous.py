"""Tests for periodic (continuous) collection and per-round metrics."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError, WorkloadError
from repro.metrics.rounds import per_round_delays, sustainable_period_estimate
from repro.sim.results import PacketRecord
from repro.workloads.periodic import periodic_snapshot_workload


class TestPeriodicWorkload:
    def test_round_structure(self, quick_topology):
        packets = periodic_snapshot_workload(
            quick_topology.secondary, rounds=3, period_slots=100
        )
        n = quick_topology.secondary.num_sus
        assert len(packets) == 3 * n
        assert {p.birth_slot for p in packets} == {0, 100, 200}
        assert len({p.packet_id for p in packets}) == 3 * n

    def test_invalid_arguments(self, quick_topology):
        with pytest.raises(WorkloadError):
            periodic_snapshot_workload(quick_topology.secondary, 0, 100)
        with pytest.raises(WorkloadError):
            periodic_snapshot_workload(quick_topology.secondary, 2, 0)


class TestPerRoundMetrics:
    def records(self):
        return [
            PacketRecord(0, 1, 0, 40, 2),
            PacketRecord(1, 2, 0, 55, 3),
            PacketRecord(2, 1, 100, 160, 2),
            PacketRecord(3, 2, 100, 150, 3),
        ]

    def test_per_round_delays(self):
        delays = per_round_delays(self.records())
        assert delays == {0: 56, 100: 61}

    def test_sustainable_period(self):
        assert sustainable_period_estimate(self.records()) == 61.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            per_round_delays([])


class TestContinuousCollection:
    def test_all_rounds_delivered(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology,
            streams.spawn("cont-1"),
            blocking="homogeneous",
            rounds=3,
            period_slots=600,
        )
        result = outcome.result
        assert result.completed
        n = tiny_topology.secondary.num_sus
        assert result.delivered == 3 * n
        delays = per_round_delays(result.deliveries)
        assert set(delays) == {0, 600, 1200}

    def test_no_delivery_before_birth(self, tiny_topology, streams):
        outcome = run_addc_collection(
            tiny_topology,
            streams.spawn("cont-2"),
            blocking="homogeneous",
            rounds=2,
            period_slots=500,
        )
        for record in outcome.result.deliveries:
            assert record.delivered_slot >= record.birth_slot

    def test_short_period_backlogs_rounds(self, tiny_topology, streams):
        """A period far below the single-round service time makes later
        rounds finish progressively later (queueing), while a long period
        keeps per-round delays flat."""
        crowded = run_addc_collection(
            tiny_topology,
            streams.spawn("cont-3"),
            blocking="homogeneous",
            rounds=4,
            period_slots=50,
        )
        relaxed = run_addc_collection(
            tiny_topology,
            streams.spawn("cont-4"),
            blocking="homogeneous",
            rounds=4,
            period_slots=4000,
        )
        crowded_delays = per_round_delays(crowded.result.deliveries)
        relaxed_delays = per_round_delays(relaxed.result.deliveries)
        assert max(crowded_delays.values()) > max(relaxed_delays.values())
        # With a generous period, rounds do not interact: delays stay within
        # a small factor of each other.
        values = sorted(relaxed_delays.values())
        assert values[-1] < 5 * values[0]

    def test_periodic_needs_period(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                tiny_topology, streams.spawn("cont-5"), rounds=3
            )
