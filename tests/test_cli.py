"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pcr_defaults(self):
        args = build_parser().parse_args(["pcr"])
        assert args.alpha == 4.0
        assert args.zeta_bound == "paper"

    def test_fig6_subfigure_choices(self):
        args = build_parser().parse_args(["fig6", "c"])
        assert args.subfigure == "c"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "z"])


class TestCommands:
    def test_pcr_output(self, capsys):
        assert main(["pcr"]) == 0
        out = capsys.readouterr().out
        assert "kappa" in out and "3.1282" in out

    def test_pcr_safe_bound(self, capsys):
        assert main(["pcr", "--zeta-bound", "safe"]) == 0
        out = capsys.readouterr().out
        assert "kappa" in out

    def test_fig4_output(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_bounds_output(self, capsys):
        assert main(["bounds", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out and "p_o" in out

    def test_collect_runs(self, capsys):
        assert main(["collect", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

    def test_collect_ablation_flags(self, capsys):
        code = main(["collect", "--scale", "quick", "--no-fairness", "--bfs-tree"])
        assert code == 0
        assert "completed" in capsys.readouterr().out

    def test_compare_runs(self, capsys):
        assert main(["compare", "--scale", "quick", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "ADDC" in out and "Coolest" in out and "less delay" in out
