"""Tests for the analytic Figure 6 counterpart curves."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.theory_curves import theory_curve


class TestTheoryCurves:
    def test_paper_scale_evaluates_instantly(self):
        points = theory_curve("fig6c")
        assert len(points) == 4
        assert all(p.delay_bound_slots > 0 for p in points)

    def test_trends_match_the_paper(self):
        # Delay bound grows in N, n, p_t, P_p, P_s; falls in alpha.
        for name in ("fig6a", "fig6b", "fig6c", "fig6e", "fig6f"):
            series = [p.delay_bound_slots for p in theory_curve(name)]
            assert series == sorted(series), name
            assert series[-1] > series[0], name
        alpha_series = [p.delay_bound_slots for p in theory_curve("fig6d")]
        assert alpha_series == sorted(alpha_series, reverse=True)

    def test_p_o_consistency(self):
        for point in theory_curve("fig6c"):
            assert 0 < point.p_o < 1
            assert point.kappa >= 1

    def test_custom_base_config(self):
        base = ExperimentConfig.quick_scale()
        points = theory_curve("fig6b", base)
        assert [p.x for p in points] == [40, 60, 80, 100, 120]

    def test_unknown_sweep(self):
        with pytest.raises(ConfigurationError):
            theory_curve("fig9z")
