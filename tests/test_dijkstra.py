"""Tests for node-weighted Dijkstra (cross-checked against networkx)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.dijkstra import dijkstra_node_weighted, extract_path
from repro.graphs.graph import Graph

from tests.test_cds import random_udg

networkx = pytest.importorskip("networkx")


def to_networkx(graph: Graph, weights):
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    # Node-weighted shortest paths reduce to edge weights
    # w(u, v) = (w_u + w_v) / 2 plus endpoint halves; equivalently compare
    # via edge weight = w_v for directed expansion.  Simplest faithful
    # check: build a directed graph with edge weight = head node weight.
    directed = networkx.DiGraph()
    directed.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        directed.add_edge(u, v, weight=weights[v])
        directed.add_edge(v, u, weight=weights[u])
    return directed


class TestCorrectness:
    def test_simple_path(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        distances, parents = dijkstra_node_weighted(graph, 0, [1.0, 2.0, 3.0])
        assert distances == [1.0, 3.0, 6.0]
        assert extract_path(parents, 2) == [0, 1, 2]

    def test_prefers_cool_detour(self):
        # 0-1-3 (hot middle) vs 0-2-3 (cool middle).
        graph = Graph(4)
        for u, v in [(0, 1), (1, 3), (0, 2), (2, 3)]:
            graph.add_edge(u, v)
        _, parents = dijkstra_node_weighted(graph, 0, [0.0, 10.0, 1.0, 0.0])
        assert extract_path(parents, 3) == [0, 2, 3]

    def test_matches_networkx(self):
        rng = np.random.default_rng(21)
        graph = random_udg(40, 22)
        weights = rng.random(graph.num_nodes).tolist()
        distances, _ = dijkstra_node_weighted(graph, 0, weights)
        nx_distances = networkx.single_source_dijkstra_path_length(
            to_networkx(graph, weights), 0
        )
        for node in graph.nodes():
            assert distances[node] == pytest.approx(nx_distances[node] + weights[0])

    def test_unreachable_is_infinite(self):
        graph = Graph(2)
        distances, parents = dijkstra_node_weighted(graph, 0, [1.0, 1.0])
        assert distances[1] == float("inf")
        assert extract_path(parents, 1) is None


class TestErrors:
    def test_bad_source(self):
        with pytest.raises(GraphError):
            dijkstra_node_weighted(Graph(2), 5, [1.0, 1.0])

    def test_wrong_weight_count(self):
        with pytest.raises(GraphError):
            dijkstra_node_weighted(Graph(2), 0, [1.0])

    def test_negative_weights(self):
        with pytest.raises(GraphError):
            dijkstra_node_weighted(Graph(2), 0, [1.0, -1.0])
