"""Tests for the energy accounting."""

from __future__ import annotations

import pytest

from repro.core.collector import run_addc_collection
from repro.errors import ConfigurationError
from repro.metrics.energy import EnergyModel, energy_consumption
from repro.routing.coolest import run_coolest_collection


class TestEnergyModel:
    def test_defaults_valid(self):
        model = EnergyModel()
        assert model.tx_per_slot > model.listen_per_slot

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_per_slot=-1.0)


class TestEnergyConsumption:
    @pytest.fixture(scope="class")
    def outcome(self, tiny_topology, streams):
        return run_addc_collection(
            tiny_topology, streams.spawn("energy-1"), with_bounds=False
        )

    def test_totals_add_up(self, outcome):
        report = energy_consumption(outcome.result)
        assert report.total_joules == pytest.approx(
            report.tx_joules + report.rx_joules + report.listen_joules
        )
        assert report.total_joules == pytest.approx(
            sum(report.per_node_joules.values())
        )

    def test_tx_energy_matches_attempts(self, outcome):
        model = EnergyModel()
        report = energy_consumption(outcome.result, model)
        expected = outcome.result.total_transmissions * model.tx_per_slot
        assert report.tx_joules == pytest.approx(expected)

    def test_listening_dominates_under_scarce_spectrum(self, outcome):
        # With p_o ~ 1-10%, nodes spend most of their time waiting: the
        # idle-listen share dwarfs the transmit share even at 20x lower
        # per-slot cost.
        report = energy_consumption(outcome.result)
        assert report.listen_joules > report.tx_joules

    def test_per_packet_metric(self, outcome):
        report = energy_consumption(outcome.result)
        per_packet = report.per_delivered_packet(outcome.result.delivered)
        assert per_packet > 0
        with pytest.raises(ConfigurationError):
            report.per_delivered_packet(0)

    def test_packet_length_scales_radio_energy(self, outcome):
        short = energy_consumption(outcome.result, packet_slots=1)
        long = energy_consumption(outcome.result, packet_slots=2)
        assert long.tx_joules == pytest.approx(2 * short.tx_joules)
        assert long.listen_joules == pytest.approx(short.listen_joules)

    def test_coolest_burns_more_energy_than_addc(self, quick_topology, streams):
        """Control traffic and retransmissions show up on the battery:
        the baseline's radio energy exceeds ADDC's on the same task."""
        addc = run_addc_collection(
            quick_topology,
            streams.spawn("energy-2"),
            blocking="homogeneous",
            with_bounds=False,
        )
        coolest = run_coolest_collection(
            quick_topology, streams.spawn("energy-3"), blocking="homogeneous"
        )
        addc_report = energy_consumption(addc.result)
        coolest_report = energy_consumption(coolest.result)
        assert coolest_report.tx_joules > addc_report.tx_joules
        assert coolest_report.total_joules > addc_report.total_joules
