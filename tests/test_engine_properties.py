"""Property-based engine tests over random small deployments.

Hypothesis drives deployment seeds and scenario knobs; for every drawn
scenario the run must satisfy the conservation and termination invariants
regardless of geometry.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.collector import run_addc_collection
from repro.errors import DisconnectedNetworkError
from repro.experiments.config import ExperimentConfig
from repro.network.deployment import deploy_crn
from repro.routing.coolest import run_coolest_collection
from repro.rng import StreamFactory


def deploy(seed: int, num_sus: int, num_pus: int, p_t: float):
    config = ExperimentConfig(
        area=35.0 * 35.0,
        num_pus=num_pus,
        num_sus=num_sus,
        p_t=p_t,
        repetitions=1,
        max_slots=150_000,
    )
    factory = StreamFactory(seed).spawn("prop")
    try:
        return deploy_crn(config.deployment_spec(), factory), factory
    except DisconnectedNetworkError:
        return None, None


scenario = st.tuples(
    st.integers(0, 2**31 - 1),
    st.integers(30, 60),
    st.integers(0, 10),
    st.sampled_from([0.0, 0.1, 0.3]),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario)
def test_addc_conservation_invariants(params):
    seed, num_sus, num_pus, p_t = params
    topology, factory = deploy(seed, num_sus, num_pus, p_t)
    if topology is None:
        return  # too sparse to connect: not this test's concern
    outcome = run_addc_collection(
        topology, factory.spawn("addc"), with_bounds=False, max_slots=150_000
    )
    result = outcome.result
    assert result.completed
    # Conservation: every source delivers exactly its own packet.
    assert sorted(r.source for r in result.deliveries) == list(
        topology.secondary.su_ids()
    )
    assert len({r.packet_id for r in result.deliveries}) == result.delivered
    # Successes account for all hops; attempts cover successes + losses.
    total_hops = sum(r.hops for r in result.deliveries)
    assert sum(result.tx_successes.values()) == total_hops
    assert result.total_transmissions == total_hops + result.collisions
    # Timing sanity.
    for record in result.deliveries:
        assert 0 <= record.birth_slot <= record.delivered_slot
        assert record.hops >= 1


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario)
def test_coolest_conservation_invariants(params):
    seed, num_sus, num_pus, p_t = params
    topology, factory = deploy(seed, num_sus, num_pus, p_t)
    if topology is None:
        return
    outcome = run_coolest_collection(
        topology, factory.spawn("coolest"), max_slots=150_000
    )
    result = outcome.result
    assert result.completed
    assert sorted(r.source for r in result.deliveries) == list(
        topology.secondary.su_ids()
    )
    # Control traffic inflates attempts beyond delivered data hops.
    data_hops = sum(r.hops for r in result.deliveries)
    assert sum(result.tx_successes.values()) >= data_hops
