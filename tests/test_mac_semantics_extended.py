"""More scripted-RNG MAC semantics: collision hold-off and multi-slot flow."""

from __future__ import annotations

from typing import List

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import db_to_linear
from repro.geometry.region import SquareRegion
from repro.graphs.tree import build_collection_tree
from repro.network.primary import BernoulliActivity, PrimaryNetwork
from repro.network.secondary import SecondaryNetwork
from repro.network.topology import CrnTopology
from repro.sim.engine import SlottedEngine
from repro.sim.trace import TraceKind, TraceLog
from repro.spectrum.sensing import CarrierSenseMap

from tests.test_mac_semantics import ScriptedStreams


def hidden_terminal_topology() -> CrnTopology:
    """Four nodes in a line: 1 - 0(base) - 2 - 3 (8 units apart each).

    Nodes 1 and 2 are both base-station children 8 apart — inside each
    other's radius-10 CSMA range, so varied timers serialize them cleanly,
    while *identical* timers tie and collide at the shared receiver.
    Nodes 1 and 3 (24 apart) are mutually hidden and transmit
    concurrently; at these distances their links' SIRs tolerate it.
    """
    secondary = SecondaryNetwork(
        positions=np.array(
            [[12.0, 15.0], [4.0, 15.0], [20.0, 15.0], [28.0, 15.0]]
        ),
        power=10.0,
        radius=10.0,
    )
    primary = PrimaryNetwork(
        positions=np.empty((0, 2)),
        power=10.0,
        radius=10.0,
        activity=BernoulliActivity(0.0),
    )
    return CrnTopology(
        region=SquareRegion(32.0), primary=primary, secondary=secondary
    )


class TestCollisionHoldOff:
    def test_exponential_backoff_spaces_retries_geometrically(self):
        """Two base-station children with *identical* scripted timers
        collide at the root every joint attempt (capture tie plus SIR
        failure) and, with identical hold draws, re-synchronize forever —
        a deterministic worst case that lays the exponential backoff bare:
        the gap between consecutive collision slots must double until the
        window cap."""
        topology = hidden_terminal_topology()
        sense_map = CarrierSenseMap(
            topology,
            pu_protection_range=24.0,
            su_csma_range=10.0,
        )
        tree = build_collection_tree(topology.secondary.graph, 0)
        trace = TraceLog()
        engine = SlottedEngine(
            topology=topology,
            sense_map=sense_map,
            policy=AddcPolicy(tree),
            streams=ScriptedStreams({"backoff": [0.5]}),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            max_slots=100,
            trace=trace,
        )
        engine.load_snapshot()
        result = engine.run()
        # The synchronized pair never resolves (scripted randomness keeps
        # them in lock step) — real runs desynchronize via fresh draws.
        assert not result.completed
        collision_slots = sorted(
            {event.slot for event in trace.of_kind(TraceKind.TX_COLLISION)}
        )
        assert collision_slots[:7] == [0, 2, 5, 10, 19, 36, 69]
        gaps = [b - a for a, b in zip(collision_slots, collision_slots[1:])]
        # Hold-off = 1 + floor(0.5 * 2^k): each retry gap ~doubles.
        assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:]))
        assert gaps[0] == 2 and gaps[-1] >= 16

    def test_distinct_draws_break_the_tie(self):
        """The same topology with varied timers never ties: the two base
        station children serialize through carrier sensing (they are
        within each other's CSMA range) and the run completes promptly and
        collision-free."""
        topology = hidden_terminal_topology()
        sense_map = CarrierSenseMap(
            topology, pu_protection_range=24.0, su_csma_range=10.0
        )
        tree = build_collection_tree(topology.secondary.graph, 0)
        script = list(np.random.default_rng(3).random(512))
        engine = SlottedEngine(
            topology=topology,
            sense_map=sense_map,
            policy=AddcPolicy(tree),
            streams=ScriptedStreams({"backoff": script}),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            max_slots=5000,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        assert result.collisions == 0
        assert result.delay_slots <= 10


class TestMultiSlotFlow:
    def test_two_slot_packet_blocks_neighbor_both_slots(self):
        from tests.test_mac_semantics import two_su_topology

        topology = two_su_topology()
        sense_map = CarrierSenseMap(topology, 24.0)
        tree = build_collection_tree(topology.secondary.graph, 0)
        trace = TraceLog()
        engine = SlottedEngine(
            topology=topology,
            sense_map=sense_map,
            policy=AddcPolicy(tree),
            streams=ScriptedStreams({"backoff": [0.2, 0.8, 0.5]}),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            packet_slots=2,
            max_slots=100,
            trace=trace,
        )
        engine.load_snapshot()
        result = engine.run()
        assert result.completed
        successes = trace.of_kind(TraceKind.TX_SUCCESS)
        # Node 2 wins slot 0, transmits through slot 1, delivering at
        # slot 1; node 1 is blocked both slots and can start at slot 2 at
        # the earliest, delivering at slot 3.
        assert successes[0].node == 2 and successes[0].slot == 1
        assert successes[1].node == 1 and successes[1].slot >= 3
