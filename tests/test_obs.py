"""Tests for repro.obs: recorders, spans, NDJSON traces, manifests, CLI.

The load-bearing guarantee is the zero-overhead contract: instrumentation
never touches an RNG stream, so an instrumented run is bit-identical to an
uninstrumented one — results AND stream positions.
"""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError, ObservabilityError
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import load_sweep, save_sweep
from repro.experiments.runner import run_comparison_point
from repro.graphs.tree import build_collection_tree
from repro.obs.clock import monotonic_s, wall_clock_iso
from repro.obs.progress import Heartbeat
from repro.obs.recorder import DEFAULT_BUCKETS, Histogram, MetricsRecorder
from repro.rng import StreamFactory
from repro.sim.engine import SlottedEngine
from repro.sim.trace import TraceEvent, TraceKind, TraceLog
from repro.spectrum.sensing import CarrierSenseMap


@pytest.fixture(autouse=True)
def _null_recorder_between_tests():
    """Every test starts and ends with the process-wide null default."""
    obs.set_recorder(None)
    yield
    obs.set_recorder(None)


class TestRecorder:
    def test_counters_gauges(self):
        recorder = MetricsRecorder()
        recorder.counter_add("a.calls")
        recorder.counter_add("a.calls", 2)
        recorder.gauge_set("a.level", 3.5)
        recorder.gauge_set("a.level", 1.5)
        snapshot = recorder.snapshot()
        assert snapshot["counters"] == {"a.calls": 3}
        assert snapshot["gauges"] == {"a.level": 1.5}

    def test_histogram_bucket_placement(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        # Inclusive upper edges: 1.0 -> first bucket, 10.0 -> second.
        assert histogram.bucket_counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(27.5 / 5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(5.0, 5.0))

    def test_observe_creates_histogram_with_default_buckets(self):
        recorder = MetricsRecorder()
        recorder.observe("h", 3.0)
        assert recorder.histograms["h"].bounds == DEFAULT_BUCKETS

    def test_span_statistics(self):
        recorder = MetricsRecorder()
        recorder.span_add("s", 0.010)
        recorder.span_add("s", 0.030)
        stats = recorder.profile()["s"]
        assert stats["count"] == 2
        assert stats["total_ms"] == pytest.approx(40.0)
        assert stats["mean_ms"] == pytest.approx(20.0)
        assert stats["min_ms"] == pytest.approx(10.0)
        assert stats["max_ms"] == pytest.approx(30.0)

    def test_reset(self):
        recorder = MetricsRecorder()
        recorder.counter_add("x")
        recorder.reset()
        assert recorder.snapshot()["counters"] == {}


class TestFacade:
    def test_null_default_discards_everything(self):
        assert not obs.enabled()
        obs.counter_add("ghost")
        obs.gauge_set("ghost", 1.0)
        obs.observe("ghost", 1.0)
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert obs.profile() == {}

    def test_null_span_is_shared_noop(self):
        first = obs.span("a")
        second = obs.span("b")
        assert first is second  # no allocation when disabled
        with first:
            pass

    def test_use_recorder_scopes_and_restores(self):
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            assert obs.enabled()
            with obs.span("block"):
                obs.counter_add("calls")
        assert not obs.enabled()
        assert recorder.counters["calls"] == 1
        assert recorder.spans["block"].count == 1
        assert recorder.spans["block"].total_s >= 0.0

    def test_timed_decorator(self):
        calls = []

        @obs.timed("timed.f")
        def f(x):
            calls.append(x)
            return x * 2

        assert f(3) == 6  # disabled fast path
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            assert f(4) == 8
        assert calls == [3, 4]
        assert recorder.spans["timed.f"].count == 1

    def test_clock_helpers(self):
        assert monotonic_s() <= monotonic_s()
        stamp = wall_clock_iso()
        assert stamp.endswith("Z") and "T" in stamp


def make_events(count):
    kinds = list(TraceKind)
    events = []
    for index in range(count):
        events.append(
            TraceEvent(
                slot=index // 3,
                kind=kinds[index % len(kinds)],
                node=index % 29,
                peer=(index % 7) if index % 2 == 0 else None,
                packet_id=index if index % 3 == 0 else None,
                time_in_slot=(index % 50) / 100.0 if index % 5 == 0 else None,
            )
        )
    return events


class TestNdjsonTrace:
    def test_round_trip_10k_events_lossless(self, tmp_path):
        log = TraceLog()
        for event in make_events(10_000):
            log.record(event)
        path = tmp_path / "trace.ndjson"
        obs.export_trace(log, path)
        loaded = obs.load_trace(path)
        assert len(loaded) == 10_000
        assert list(loaded) == list(log)  # lossless, order preserved
        assert loaded.dropped == 0
        assert loaded.max_events is None

    def test_truncated_log_header_records_dropped(self, tmp_path):
        log = TraceLog(max_events=5)
        for event in make_events(12):
            log.record(event)
        path = tmp_path / "trace.ndjson"
        obs.export_trace(log, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "schema": "trace/v1",
            "events": 5,
            "dropped": 7,
            "max_events": 5,
        }
        loaded = obs.load_trace(path)
        assert loaded.dropped == 7
        assert loaded.truncated
        assert loaded.max_events == 5

    def test_zero_event_log_round_trips(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        obs.export_trace(TraceLog(), path)
        assert len(obs.load_trace(path)) == 0

    def test_streaming_writer_and_footer(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        events = make_events(100)
        with obs.NdjsonTraceWriter(path) as writer:
            for event in events:
                writer.record(event)
        assert writer.events_written == 100
        footer = json.loads(path.read_text().splitlines()[-1])
        assert footer["footer"] is True and footer["events"] == 100
        loaded = obs.load_trace(path)
        assert list(loaded) == events

    def test_streaming_writer_rejects_record_after_close(self, tmp_path):
        writer = obs.NdjsonTraceWriter(tmp_path / "x.ndjson")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ObservabilityError):
            writer.record(make_events(1)[0])

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"schema": "trace/v99"}\n')
        with pytest.raises(ObservabilityError, match="schema"):
            obs.load_trace(path)

    def test_load_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text(
            '{"schema": "trace/v1", "events": 2, "dropped": 0}\n'
            '{"slot": 0, "kind": "tx_start", "node": 1}\n'
        )
        with pytest.raises(ObservabilityError, match="declares 2"):
            obs.load_trace(path)

    def test_load_rejects_missing_file_and_empty_file(self, tmp_path):
        with pytest.raises(ObservabilityError):
            obs.load_trace(tmp_path / "absent.ndjson")
        empty = tmp_path / "empty.ndjson"
        empty.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            obs.load_trace(empty)

    def test_load_rejects_events_after_footer(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text(
            '{"schema": "trace/v1"}\n'
            '{"schema": "trace/v1", "footer": true, "events": 0, "dropped": 0}\n'
            '{"slot": 0, "kind": "tx_start", "node": 1}\n'
        )
        with pytest.raises(ObservabilityError, match="footer"):
            obs.load_trace(path)

    def test_trace_stats(self, tmp_path):
        log = TraceLog()
        log.record(TraceEvent(slot=2, kind=TraceKind.TX_START, node=1, peer=4))
        log.record(TraceEvent(slot=7, kind=TraceKind.TX_START, node=1))
        log.record(TraceEvent(slot=5, kind=TraceKind.DELIVERY, node=2))
        path = tmp_path / "trace.ndjson"
        obs.export_trace(log, path)
        stats = obs.trace_stats(path)
        assert stats["events"] == 3
        assert stats["first_slot"] == 2 and stats["last_slot"] == 7
        assert stats["kinds"] == {"delivery": 1, "tx_start": 2}
        assert stats["nodes"] == 3  # nodes 1 and 2 plus peer 4


class TestManifest:
    def test_config_fingerprint_is_order_insensitive(self):
        assert obs.config_fingerprint({"a": 1, "b": 2}) == obs.config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert obs.config_fingerprint({"a": 1}) != obs.config_fingerprint({"a": 2})

    def test_config_fingerprint_accepts_dataclasses(self):
        config = ExperimentConfig.quick_scale()
        assert obs.config_fingerprint(config) == obs.config_fingerprint(
            dataclasses.asdict(config)
        )

    def test_build_write_load_round_trip(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.counter_add("engine.runs")
        recorder.span_add("engine.run", 0.25)
        manifest = obs.build_manifest(
            seed=42,
            config={"n": 5},
            wall_time_s=0.25,
            recorder=recorder,
            extra={"note": "test"},
        )
        path = tmp_path / "run.manifest.json"
        obs.write_manifest(path, manifest)
        loaded = obs.load_manifest(path)
        assert loaded.schema == obs.MANIFEST_SCHEMA
        assert loaded.seed == 42
        assert loaded.config_hash == obs.config_fingerprint({"n": 5})
        assert loaded.metrics["counters"] == {"engine.runs": 1}
        assert loaded.profile["engine.run"]["count"] == 1
        assert loaded.extra == {"note": "test"}
        assert loaded.platform["python"]

    def test_build_defaults_to_installed_recorder(self):
        recorder = MetricsRecorder()
        recorder.counter_add("x")
        with obs.use_recorder(recorder):
            manifest = obs.build_manifest()
        assert manifest.metrics["counters"] == {"x": 1}

    def test_manifest_path_for(self):
        assert obs.manifest_path_for("out/sweep.json").name == "sweep.manifest.json"
        assert obs.manifest_path_for("out/sweep").name == "sweep.manifest.json"

    def test_load_rejects_non_manifests(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "other/v1"}')
        with pytest.raises(ObservabilityError, match="manifest"):
            obs.load_manifest(path)
        with pytest.raises(ObservabilityError):
            obs.load_manifest(tmp_path / "absent.json")

    def test_render_report_covers_all_sections(self):
        recorder = MetricsRecorder()
        recorder.counter_add("engine.slots", 100)
        recorder.gauge_set("engine.max_backlog", 7)
        recorder.observe("engine.packet_delay_slots", 12.0)
        recorder.span_add("engine.run", 0.5)
        manifest = obs.build_manifest(seed=1, recorder=recorder, wall_time_s=0.5)
        text = obs.render_report(manifest)
        assert "METRICS" in text and "PROFILE" in text
        assert "engine.slots" in text and "engine.run" in text
        assert "share" in text


def make_engine(topology, streams):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=10.0,
            su_power=10.0,
            pu_radius=10.0,
            su_radius=10.0,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        max_slots=200_000,
    )
    engine.load_snapshot()
    return engine


class TestDeterminism:
    """The golden guarantee: instrumentation changes nothing."""

    def run_once(self, topology, recorder):
        engine = make_engine(topology, StreamFactory(777).spawn("obs-det"))
        if recorder is None:
            result = engine.run()
        else:
            with obs.use_recorder(recorder):
                result = engine.run()
        # Post-run draws expose the exact stream positions: if the
        # instrumented run consumed even one extra random number, these
        # diverge.
        positions = (
            float(engine._backoff_rng.random()),
            float(engine._pu_rng.random()),
            float(engine._sensing_rng.random()),
        )
        return result, positions

    def test_instrumented_run_is_bit_identical(self, tiny_topology):
        baseline, baseline_positions = self.run_once(tiny_topology, None)
        recorder = MetricsRecorder()
        instrumented, instrumented_positions = self.run_once(
            tiny_topology, recorder
        )
        assert dataclasses.asdict(instrumented) == dataclasses.asdict(baseline)
        assert instrumented_positions == baseline_positions
        # ... while the recorder actually collected a profile.
        assert recorder.spans["engine.run"].count == 1
        # Fast-forwarded slots never enter the engine.slot span; the
        # counter accounts for them, so the books still balance.
        assert (
            recorder.spans["engine.slot"].count
            + recorder.counters["engine.fastforward_slots"]
            == baseline.slots_simulated
        )
        assert recorder.counters["engine.deliveries"] == baseline.delivered
        assert recorder.counters["engine.slots"] == baseline.slots_simulated
        histogram = recorder.histograms["engine.packet_delay_slots"]
        assert histogram.count == baseline.delivered

    def test_instrumented_sweep_matches_goldens(self):
        config = ExperimentConfig(
            area=30.0 * 30.0,
            num_pus=6,
            num_sus=25,
            repetitions=2,
            max_slots=100_000,
            blocking="homogeneous",
        )
        baseline = run_comparison_point(config)
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            instrumented = run_comparison_point(config)
        assert instrumented.addc_delays == baseline.addc_delays
        assert instrumented.coolest_delays == baseline.coolest_delays
        assert instrumented.skipped_repetitions == baseline.skipped_repetitions
        assert recorder.counters["sweep.repetitions"] == 2
        assert recorder.spans["sweep.repetition"].count == 2
        assert recorder.profile()  # non-empty profile for the manifest


class TestSweepManifest:
    def test_save_sweep_writes_manifest_sibling(self, tmp_path):
        config = ExperimentConfig(
            area=30.0 * 30.0,
            num_pus=6,
            num_sus=25,
            repetitions=1,
            max_slots=100_000,
            blocking="homogeneous",
        )
        recorder = MetricsRecorder()
        with obs.use_recorder(recorder):
            point = run_comparison_point(config)
            manifest = obs.build_manifest(
                seed=config.seed, config=config, recorder=recorder
            )
        target = tmp_path / "sweep.json"
        save_sweep(target, "fig6x", [(1.0, point)], manifest=manifest)
        name, points = load_sweep(target)
        assert name == "fig6x" and len(points) == 1
        sibling = tmp_path / "sweep.manifest.json"
        loaded = obs.load_manifest(sibling)
        assert loaded.config_hash == obs.config_fingerprint(config)
        assert loaded.profile  # the paper trail: how the data was produced

    def test_save_sweep_without_manifest_writes_no_sibling(self, tmp_path):
        config = ExperimentConfig(
            area=30.0 * 30.0,
            num_pus=6,
            num_sus=25,
            repetitions=1,
            max_slots=100_000,
            blocking="homogeneous",
        )
        point = run_comparison_point(config)
        target = tmp_path / "sweep.json"
        save_sweep(target, "fig6x", [(1.0, point)])
        assert not (tmp_path / "sweep.manifest.json").exists()


class TestHeartbeat:
    def test_emits_progress_lines(self):
        sink = io.StringIO()
        beat = Heartbeat(4, label="sweep", stream=sink, min_interval_s=0.0)
        for _ in range(4):
            beat.tick()
        lines = sink.getvalue().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("[sweep] 1/4 (25.0%)")
        assert lines[-1].startswith("[sweep] 4/4 (100.0%)")
        assert "ETA 0:00" in lines[-1]

    def test_throttling_always_emits_final_line(self):
        sink = io.StringIO()
        beat = Heartbeat(100, label="x", stream=sink, min_interval_s=3600.0)
        for _ in range(100):
            beat.tick()
        lines = sink.getvalue().splitlines()
        assert lines[0].startswith("[x] 1/100")
        assert lines[-1].startswith("[x] 100/100")
        assert len(lines) == 2  # everything between was throttled

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            Heartbeat(0)

    def test_runner_ticks_heartbeat(self):
        sink = io.StringIO()
        config = ExperimentConfig(
            area=30.0 * 30.0,
            num_pus=6,
            num_sus=25,
            repetitions=2,
            max_slots=100_000,
            blocking="homogeneous",
        )
        beat = Heartbeat(2, label="point", stream=sink, min_interval_s=0.0)
        run_comparison_point(config, progress=beat)
        assert beat.done == 2
        assert "[point] 2/2 (100.0%)" in sink.getvalue()


class TestCli:
    def test_obs_report_smoke(self, capsys):
        assert cli_main(["obs", "report", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "obs smoke OK" in out
        assert "PROFILE" in out and "engine.slot" in out

    def test_obs_report_renders_saved_manifest(self, tmp_path, capsys):
        recorder = MetricsRecorder()
        recorder.counter_add("engine.runs")
        manifest = obs.build_manifest(seed=9, recorder=recorder)
        path = tmp_path / "run.manifest.json"
        obs.write_manifest(path, manifest)
        assert cli_main(["obs", "report", str(path)]) == 0
        assert "engine.runs" in capsys.readouterr().out
        assert cli_main(["obs", "report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 9

    def test_obs_report_without_manifest_or_smoke_errors(self, capsys):
        assert cli_main(["obs", "report"]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_obs_bench_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "BENCH_obs.json"
        assert (
            cli_main(["obs", "bench", "--out", str(out), "--collections", "1"])
            == 0
        )
        assert "slots/s" in capsys.readouterr().out
        manifest = obs.load_manifest(out)
        assert manifest.extra["benchmark"] == "obs"
        assert manifest.profile["engine.run"]["count"] == 1

    def test_trace_export_and_stats(self, tmp_path, capsys):
        out = tmp_path / "trace.ndjson"
        assert cli_main(["trace", "export", "--out", str(out)]) == 0
        assert "events" in capsys.readouterr().out
        assert cli_main(["trace", "stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace/v1" in text and "backoff_draw" in text
        assert cli_main(["trace", "stats", str(out), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["events"] > 0 and stats["dropped"] == 0
        # The exported stream round-trips through the loader.
        assert len(obs.load_trace(out)) == stats["events"]


# --------------------------------------------------------------------------- #
# histogram percentiles
# --------------------------------------------------------------------------- #


class TestHistogramPercentile:
    def test_empty_histogram_has_no_percentile(self):
        assert obs.histogram_percentile((1.0, 2.0), (0, 0, 0), 0.5) is None

    def test_bad_quantile_raises(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            obs.histogram_percentile((1.0,), (1, 0), 1.5)

    def test_linear_interpolation_inside_a_bucket(self):
        # 10 observations, all in (1, 2]: the median is mid-bucket.
        bounds = (1.0, 2.0, 4.0)
        counts = (0, 10, 0, 0)
        assert obs.histogram_percentile(bounds, counts, 0.5) == pytest.approx(
            1.5
        )
        assert obs.histogram_percentile(bounds, counts, 1.0) == pytest.approx(
            2.0
        )

    def test_overflow_bucket_yields_inf(self):
        # The tail rank lands past the last bound: report inf, not a
        # made-up number that would understate a tail regression.
        bounds = (1.0, 2.0)
        counts = (5, 4, 1)
        assert obs.histogram_percentile(bounds, counts, 0.99) == float("inf")

    def test_report_renders_histogram_percentiles(self):
        recorder = MetricsRecorder()
        for value in (1, 2, 3, 5, 8, 13, 210, 340, 550):
            recorder.observe("engine.packet_delay_slots", float(value))
        manifest = obs.build_manifest(recorder=recorder)
        text = obs.render_report(manifest)
        (line,) = [
            l for l in text.splitlines() if "engine.packet_delay_slots" in l
        ]
        assert "p50=" in line and "p95=" in line and "p99=" in line


# --------------------------------------------------------------------------- #
# prometheus export
# --------------------------------------------------------------------------- #


class TestPrometheusExport:
    def test_counters_gauges_and_spans(self):
        from repro.obs.export import render_prometheus

        recorder = MetricsRecorder()
        recorder.counter_add("engine.slots", 42)
        recorder.gauge_set("engine.max_backlog", 7.5)
        recorder.span_add("engine.slot", 0.25)
        text = render_prometheus(recorder.snapshot(), recorder.profile())
        assert "# TYPE addc_engine_slots_total counter" in text
        assert "addc_engine_slots_total 42" in text
        assert "addc_engine_max_backlog 7.5" in text
        assert 'addc_span_calls_total{span="engine.slot"} 1' in text
        assert 'addc_span_seconds_total{span="engine.slot"} 0.25' in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.obs.export import render_prometheus

        snapshot = {
            "histograms": {
                "engine.delay": {
                    "bounds": [1.0, 2.0],
                    "bucket_counts": [3, 2, 1],
                    "count": 6,
                    "total": 9.0,
                }
            }
        }
        text = render_prometheus(snapshot)
        assert 'addc_engine_delay_bucket{le="1"} 3' in text
        assert 'addc_engine_delay_bucket{le="2"} 5' in text
        assert 'addc_engine_delay_bucket{le="+Inf"} 6' in text
        assert "addc_engine_delay_sum 9" in text
        assert "addc_engine_delay_count 6" in text

    def test_equal_snapshots_export_equal_bytes(self):
        from repro.obs.export import render_prometheus

        snapshot = {"counters": {"b.x": 1, "a.y": 2}}
        assert render_prometheus(snapshot) == render_prometheus(
            {"counters": {"a.y": 2, "b.x": 1}}
        )
        # sorted by metric name, so ordering is canonical
        lines = render_prometheus(snapshot).splitlines()
        assert lines[1].startswith("addc_a_y_total")


# --------------------------------------------------------------------------- #
# manifest diff: the perf ratchet
# --------------------------------------------------------------------------- #


def _ratchet_manifest(mean_ms: float, wall: float = 10.0) -> dict:
    recorder = MetricsRecorder()
    recorder.counter_add("engine.slots", 1000)
    recorder.span_add("engine.slot", mean_ms / 1e3)
    manifest = obs.build_manifest(recorder=recorder, wall_time_s=wall)
    return json.loads(json.dumps(dataclasses.asdict(manifest)))


class TestManifestDiff:
    def test_equal_manifests_have_no_regression(self):
        from repro.obs.diff import diff_manifests

        manifest = _ratchet_manifest(2.0)
        rows = diff_manifests(manifest, manifest, tolerance_pct=5.0)
        assert rows
        assert not any(row.regression for row in rows)
        assert all(row.delta_pct == 0.0 for row in rows)

    def test_synthetic_regression_is_flagged(self):
        from repro.obs.diff import diff_manifests

        rows = diff_manifests(
            _ratchet_manifest(2.0), _ratchet_manifest(4.0), tolerance_pct=50.0
        )
        flagged = {row.name for row in rows if row.regression}
        assert "profile.engine.slot.mean_ms" in flagged

    def test_machine_shape_figures_never_gate(self):
        from repro.obs.diff import diff_manifests

        # wall_time_s doubles, but it is informational (machine-shape).
        rows = diff_manifests(
            _ratchet_manifest(2.0, wall=10.0),
            _ratchet_manifest(2.0, wall=20.0),
            tolerance_pct=5.0,
        )
        wall = next(row for row in rows if row.name == "wall_time_s")
        assert not wall.gated
        assert not wall.regression

    def test_no_shared_figures_is_an_error(self):
        from repro.obs.diff import diff_manifests

        empty = json.loads(
            json.dumps(dataclasses.asdict(obs.build_manifest()))
        )
        with pytest.raises(ObservabilityError, match="no comparable"):
            diff_manifests(empty, empty, tolerance_pct=5.0)


class TestRatchetCli:
    def _write(self, tmp_path, name, mean_ms):
        path = tmp_path / name
        path.write_text(json.dumps(_ratchet_manifest(mean_ms)))
        return path

    def test_diff_exits_zero_without_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", 2.0)
        new = self._write(tmp_path, "new.json", 2.02)
        code = cli_main(
            ["obs", "diff", str(old), str(new), "--fail-on-regression", "5"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", 2.0)
        new = self._write(tmp_path, "new.json", 20.0)
        code = cli_main(
            ["obs", "diff", str(old), str(new), "--fail-on-regression", "5"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_json_output(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", 2.0)
        code = cli_main(["obs", "diff", str(old), str(old), "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(r["name"] == "profile.engine.slot.mean_ms" for r in rows)

    def test_export_prometheus_from_manifest(self, tmp_path, capsys):
        manifest = self._write(tmp_path, "run.manifest.json", 2.0)
        code = cli_main(["obs", "export", str(manifest), "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "addc_engine_slots_total 1000" in out
        assert 'addc_span_seconds_total{span="engine.slot"}' in out

    def test_export_writes_out_file(self, tmp_path, capsys):
        manifest = self._write(tmp_path, "run.manifest.json", 2.0)
        target = tmp_path / "metrics.prom"
        assert (
            cli_main(
                ["obs", "export", str(manifest), "--out", str(target)]
            )
            == 0
        )
        assert "addc_engine_slots_total" in target.read_text()
