"""Tests for repro.chaos.contracts: the declarative resilience invariants.

Contracts are evaluated against synthetic evidence dicts shaped exactly
like the scenario grid's output, so each invariant's pass *and* failure
modes are pinned without running any chaos.  The meta-invariant: absent
evidence is a failure — a gate that silently skips a scenario is not a
gate.
"""

from __future__ import annotations

import copy

import pytest

from repro.chaos import (
    CONTRACTS,
    ContractCheck,
    evaluate_contracts,
    render_contracts,
)

ALL_IDS = {
    "monotone-degradation",
    "delivery-books-balance",
    "bounded-repair",
    "no-acknowledged-job-lost",
    "resume-identity",
    "cache-never-serves-stale",
    "empty-schedule-purity",
}


def passing_evidence() -> dict:
    """Evidence for a grid run where every invariant held."""
    rows = [
        {
            "intensity": 0.0,
            "delivery_ratio": 1.0,
            "fault_events": 0,
            "availability": 1.0,
            "delivered": 20,
            "packets_lost": 0,
            "num_packets": 20,
            "packets_orphaned": 0,
            "max_repair_slots": None,
        },
        {
            "intensity": 0.25,
            "delivery_ratio": 0.95,
            "fault_events": 2,
            "availability": 0.98,
            "delivered": 19,
            "packets_lost": 1,
            "num_packets": 20,
            "packets_orphaned": 1,
            "max_repair_slots": 90.0,
        },
        {
            "intensity": 0.5,
            "delivery_ratio": 0.9,
            "fault_events": 4,
            "availability": 0.95,
            "delivered": 18,
            "packets_lost": 2,
            "num_packets": 20,
            "packets_orphaned": 2,
            "max_repair_slots": 140.0,
        },
    ]
    return {
        "degradation": {
            "rows": rows,
            "ratio_noise": 0.05,
            "repair_bound_slots": 400.0,
            "empty_schedule": {
                "identical": True,
                "detail": "chaos path bit-identical to the plain path",
            },
        },
        "storage": {
            "resume_identical": True,
            "rng_positions_identical": True,
            "torn_artifact_refused": True,
            "corrupt_cache_entry_refused": True,
            "torn_cache_log_recovered": True,
        },
        "worker": {
            "results_identical": True,
            "attempts_per_item_max": 2,
            "max_attempts": 3,
        },
        "service": {
            "acknowledged": ["fp1", "fp2"],
            "completed_after_restart": ["fp1", "fp2"],
            "artifact_identical": True,
            "torn_cache_log_served": True,
        },
    }


def failures_of(checks: list, contract: str) -> list:
    return [
        check
        for check in checks
        if check.contract == contract and not check.passed
    ]


def test_registry_covers_the_full_vocabulary():
    assert {contract.id for contract in CONTRACTS} == ALL_IDS
    for contract in CONTRACTS:
        assert contract.name and contract.description


def test_all_contracts_pass_on_clean_evidence():
    checks = evaluate_contracts(passing_evidence())
    assert checks, "no checks ran"
    assert all(check.passed for check in checks)
    # Every contract produced at least one verdict on full evidence.
    assert {check.contract for check in checks} == ALL_IDS


@pytest.mark.parametrize(
    "mutate, contract",
    [
        # A fault-free run that already lost packets.
        (
            lambda e: e["degradation"]["rows"][0].update(delivery_ratio=0.9),
            "monotone-degradation",
        ),
        # A cliff at mid intensity that the next point "recovers" from:
        # the recovery exceeds the noise allowance, so it is flagged.
        (
            lambda e: e["degradation"]["rows"][1].update(delivery_ratio=0.8),
            "monotone-degradation",
        ),
        # The heaviest scenario injected nothing: a vacuous grid.
        (
            lambda e: e["degradation"]["rows"][2].update(
                fault_events=0, delivery_ratio=0.95
            ),
            "monotone-degradation",
        ),
        # A packet neither delivered nor accounted as lost.
        (
            lambda e: e["degradation"]["rows"][1].update(delivered=18),
            "delivery-books-balance",
        ),
        # A loss with no attributable fault event behind it.
        (
            lambda e: e["degradation"]["rows"][1].update(packets_orphaned=0),
            "delivery-books-balance",
        ),
        # A repair that blew the scenario bound.
        (
            lambda e: e["degradation"]["rows"][2].update(
                max_repair_slots=900.0
            ),
            "bounded-repair",
        ),
        # A supervised item that burned more attempts than budgeted.
        (
            lambda e: e["worker"].update(attempts_per_item_max=4),
            "bounded-repair",
        ),
        # An acknowledged job the restarted daemon never finished.
        (
            lambda e: e["service"].update(completed_after_restart=["fp1"]),
            "no-acknowledged-job-lost",
        ),
        # The kill landed before any job was acknowledged: vacuous.
        (
            lambda e: e["service"].update(acknowledged=[]),
            "no-acknowledged-job-lost",
        ),
        (
            lambda e: e["storage"].update(resume_identical=False),
            "resume-identity",
        ),
        (
            lambda e: e["storage"].update(rng_positions_identical=False),
            "resume-identity",
        ),
        (
            lambda e: e["worker"].update(results_identical=False),
            "resume-identity",
        ),
        (
            lambda e: e["service"].update(artifact_identical=False),
            "resume-identity",
        ),
        (
            lambda e: e["storage"].update(torn_artifact_refused=False),
            "cache-never-serves-stale",
        ),
        (
            lambda e: e["storage"].update(corrupt_cache_entry_refused=False),
            "cache-never-serves-stale",
        ),
        (
            lambda e: e["storage"].update(torn_cache_log_recovered=False),
            "cache-never-serves-stale",
        ),
        (
            lambda e: e["service"].update(torn_cache_log_served=False),
            "cache-never-serves-stale",
        ),
        (
            lambda e: e["degradation"]["empty_schedule"].update(
                identical=False
            ),
            "empty-schedule-purity",
        ),
    ],
)
def test_each_violation_fails_its_contract(mutate, contract):
    evidence = copy.deepcopy(passing_evidence())
    mutate(evidence)
    checks = evaluate_contracts(evidence)
    assert failures_of(checks, contract), (
        f"{contract} did not flag the violation"
    )


@pytest.mark.parametrize(
    "scenario, contracts_expected",
    [
        (
            "degradation",
            {
                "monotone-degradation",
                "delivery-books-balance",
                "empty-schedule-purity",
            },
        ),
        ("storage", {"resume-identity", "cache-never-serves-stale"}),
        ("worker", {"bounded-repair"}),
        ("service", {"no-acknowledged-job-lost"}),
    ],
)
def test_missing_evidence_is_a_failure_not_a_skip(
    scenario, contracts_expected
):
    evidence = passing_evidence()
    del evidence[scenario]
    checks = evaluate_contracts(evidence)
    for contract in contracts_expected:
        failed = failures_of(checks, contract)
        assert failed, f"{contract} silently skipped missing {scenario}"
        assert any("no evidence" in check.detail for check in failed)


def test_check_round_trips_to_dict():
    check = ContractCheck("resume-identity", "storage", True, "ok")
    assert check.to_dict() == {
        "contract": "resume-identity",
        "scenario": "storage",
        "passed": True,
        "detail": "ok",
    }


class TestRender:
    def test_all_green_summary(self):
        checks = evaluate_contracts(passing_evidence())
        text = render_contracts(checks)
        assert f"OK: all {len(checks)} contract checks passed" in text
        assert "FAIL" not in text

    def test_failures_lead_the_report(self):
        evidence = passing_evidence()
        evidence["degradation"]["empty_schedule"]["identical"] = False
        checks = evaluate_contracts(evidence)
        text = render_contracts(checks)
        lines = text.splitlines()
        assert lines[0].startswith("FAIL")
        assert "empty-schedule-purity" in lines[0]
        assert "1 of" in lines[-1] and "FAILED" in lines[-1]

    def test_empty_checks(self):
        assert render_contracts([]) == "no contract checks ran"
