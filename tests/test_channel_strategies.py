"""Tests for multi-channel selection strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.addc import AddcPolicy
from repro.core.collector import run_addc_collection
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.network.channels import ChannelPlan
from repro.sim.engine import SlottedEngine
from repro.spectrum.sensing import CarrierSenseMap

STRATEGIES = ("random-idle", "sticky", "least-blocked", "adaptive")


def run_with_plan(topology, streams, plan, strategy, max_slots=200_000):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=10.0,
            su_power=10.0,
            pu_radius=10.0,
            su_radius=10.0,
            eta_p_db=8.0,
            eta_s_db=8.0,
        )
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams,
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        channel_plan=plan,
        channel_strategy=strategy,
        max_slots=max_slots,
    )
    engine.load_snapshot()
    return engine.run()


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_completes(self, tiny_topology, streams, strategy):
        plan = ChannelPlan.balanced(tiny_topology.primary.num_pus, 3)
        result = run_with_plan(
            tiny_topology, streams.spawn(f"strat-{strategy}"), plan, strategy
        )
        assert result.completed
        assert result.delivered == tiny_topology.secondary.num_sus

    def test_unknown_strategy_rejected(self, tiny_topology, streams):
        with pytest.raises(ConfigurationError):
            run_addc_collection(
                tiny_topology,
                streams.spawn("strat-bad"),
                num_channels=2,
                channel_strategy="psychic",
            )

    def test_least_blocked_prefers_empty_channel(self, tiny_topology, streams):
        """With every PU licensed to channel 0, the static strategy should
        do all its talking on the PU-free channels and never be blocked."""
        skewed = ChannelPlan(
            3, np.zeros(tiny_topology.primary.num_pus, dtype=int)
        )
        result = run_with_plan(
            tiny_topology, streams.spawn("strat-skew"), skewed, "least-blocked"
        )
        assert result.completed
        # PUs only ever block channel 0; least-blocked avoids it, so no SU
        # spends slots frozen by PUs.
        assert result.frozen_slot_count == 0

    def test_skewed_plan_rewards_channel_awareness(self, quick_topology, streams):
        skewed = ChannelPlan(
            3, np.zeros(quick_topology.primary.num_pus, dtype=int)
        )
        aware = run_with_plan(
            quick_topology, streams.spawn("skew-aware"), skewed, "least-blocked"
        )
        blind = run_with_plan(
            quick_topology, streams.spawn("skew-blind"), skewed, "random-idle"
        )
        assert aware.completed and blind.completed
        # "random-idle" still avoids *currently busy* channels, so the gap
        # is modest, but static knowledge should not lose.
        assert aware.delay_slots <= blind.delay_slots * 1.2

    def test_single_channel_ignores_strategy(self, tiny_topology, streams):
        baseline = run_addc_collection(
            tiny_topology, streams.spawn("strat-one"), with_bounds=False
        )
        with_strategy = run_addc_collection(
            tiny_topology,
            streams.spawn("strat-one"),
            channel_strategy="least-blocked",
            with_bounds=False,
        )
        assert baseline.result.delay_slots == with_strategy.result.delay_slots
