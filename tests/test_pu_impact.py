"""Tests for the primary-user protection probe (Lemma 2, measured)."""

from __future__ import annotations

import pytest

from repro.core.addc import AddcPolicy
from repro.core.pcr import PcrParameters, compute_pcr, db_to_linear
from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.sim.engine import SlottedEngine
from repro.spectrum.pu_impact import PuImpactProbe
from repro.spectrum.sensing import CarrierSenseMap


def probed_run(topology, streams, zeta_bound="safe"):
    pcr = compute_pcr(
        PcrParameters(
            alpha=4.0,
            pu_power=topology.primary.power,
            su_power=topology.secondary.power,
            pu_radius=topology.primary.radius,
            su_radius=topology.secondary.radius,
            eta_p_db=8.0,
            eta_s_db=8.0,
            zeta_bound=zeta_bound,
        )
    )
    probe = PuImpactProbe(
        alpha=4.0,
        eta_p=db_to_linear(8.0),
        pu_power=topology.primary.power,
        su_power=topology.secondary.power,
        streams=streams.spawn("probe"),
    )
    sense_map = CarrierSenseMap(topology, pcr.pcr)
    tree = build_collection_tree(topology.secondary.graph, 0)
    engine = SlottedEngine(
        topology=topology,
        sense_map=sense_map,
        policy=AddcPolicy(tree),
        streams=streams.spawn("engine"),
        alpha=4.0,
        eta_s=db_to_linear(8.0),
        slot_hook=probe,
        max_slots=300_000,
    )
    engine.load_snapshot()
    result = engine.run()
    return result, probe.report


class TestPuProtection:
    def test_pcr_protects_pu_links(self, tiny_topology, streams):
        """Lemma 2, empirically: with the (corrected-bound) PCR, ADDC's
        transmissions never break an otherwise-healthy PU link."""
        result, report = probed_run(tiny_topology, streams.spawn("impact-1"))
        assert result.completed
        assert report.links_evaluated > 0
        assert report.links_broken_by_sus == 0
        assert report.breakage_rate == 0.0

    def test_margins_positive(self, tiny_topology, streams):
        _, report = probed_run(tiny_topology, streams.spawn("impact-2"))
        if report.margins_db:
            assert report.median_margin_db >= 0.0

    def test_self_failures_are_attributed_to_pus(self, tiny_topology, streams):
        # PU links can fail from *other PUs* (the primary network does not
        # coordinate in this model); those never count against the SUs.
        _, report = probed_run(tiny_topology, streams.spawn("impact-3"))
        assert report.links_self_failing >= 0
        assert (
            report.links_evaluated
            >= report.links_self_failing + report.links_broken_by_sus
        )

    def test_probe_validation(self, streams):
        with pytest.raises(ConfigurationError):
            PuImpactProbe(4.0, 0.0, 10.0, 10.0, streams.spawn("bad-1"))
        with pytest.raises(ConfigurationError):
            PuImpactProbe(
                4.0, 1.0, 10.0, 10.0, streams.spawn("bad-2"), sample_every=0
            )

    def test_sampling_reduces_evaluations(self, tiny_topology, streams):
        _, dense = probed_run(tiny_topology, streams.spawn("impact-4"))
        # Re-run with sparse sampling.
        pcr = compute_pcr(
            PcrParameters(
                alpha=4.0,
                pu_power=10.0,
                su_power=10.0,
                pu_radius=10.0,
                su_radius=10.0,
                eta_p_db=8.0,
                eta_s_db=8.0,
                zeta_bound="safe",
            )
        )
        probe = PuImpactProbe(
            4.0,
            db_to_linear(8.0),
            10.0,
            10.0,
            streams.spawn("impact-4").spawn("probe"),
            sample_every=10,
        )
        sense_map = CarrierSenseMap(tiny_topology, pcr.pcr)
        tree = build_collection_tree(tiny_topology.secondary.graph, 0)
        engine = SlottedEngine(
            topology=tiny_topology,
            sense_map=sense_map,
            policy=AddcPolicy(tree),
            streams=streams.spawn("impact-4").spawn("engine"),
            alpha=4.0,
            eta_s=db_to_linear(8.0),
            slot_hook=probe,
            max_slots=300_000,
        )
        engine.load_snapshot()
        engine.run()
        assert probe.report.links_evaluated < dense.links_evaluated
