"""Tests for path loss, SIR computation, sensing maps and opportunities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.topology import CrnTopology
from repro.spectrum.opportunity import (
    mean_opportunity_probability,
    per_node_opportunity_probability,
)
from repro.spectrum.pathloss import path_loss, received_power
from repro.spectrum.sensing import CarrierSenseMap
from repro.spectrum.sir import SirValidator, sir_at_receiver


class TestPathLoss:
    def test_known_value(self):
        assert path_loss(2.0, 4.0) == pytest.approx(1.0 / 16.0)

    def test_received_power(self):
        assert received_power(10.0, 2.0, 4.0) == pytest.approx(10.0 / 16.0)

    def test_vectorized(self):
        values = received_power(10.0, np.array([1.0, 2.0]), 4.0)
        assert values.tolist() == pytest.approx([10.0, 0.625])

    def test_zero_distance_clamped(self):
        assert math.isfinite(float(received_power(10.0, 0.0, 4.0)))

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            path_loss(1.0, 2.0)

    def test_invalid_power(self):
        with pytest.raises(ConfigurationError):
            received_power(0.0, 1.0, 4.0)


class TestSirAtReceiver:
    def test_no_interference_is_infinite(self):
        sir = sir_at_receiver(
            np.array([0.0, 0.0]),
            np.array([1.0, 0.0]),
            10.0,
            np.empty((0, 2)),
            np.empty(0),
            4.0,
        )
        assert sir == float("inf")

    def test_hand_computed(self):
        # Signal from distance 1 (power 10), one interferer at distance 2
        # (power 10): SIR = 10 / (10 / 16) = 16.
        sir = sir_at_receiver(
            np.array([0.0, 0.0]),
            np.array([1.0, 0.0]),
            10.0,
            np.array([[2.0, 0.0]]),
            np.array([10.0]),
            4.0,
        )
        assert sir == pytest.approx(16.0)

    def test_mismatched_interferers(self):
        with pytest.raises(ConfigurationError):
            sir_at_receiver(
                np.zeros(2),
                np.ones(2),
                10.0,
                np.zeros((2, 2)),
                np.zeros(1),
                4.0,
            )


class TestSirValidator:
    def make(self):
        return SirValidator(
            alpha=4.0, eta_p=6.31, eta_s=6.31, pu_power=10.0, su_power=10.0
        )

    def test_isolated_links_pass(self):
        validator = self.make()
        report = validator.validate(
            pu_links=[(np.array([0.0, 0.0]), np.array([1.0, 0.0]))],
            su_links=[(np.array([1000.0, 0.0]), np.array([1001.0, 0.0]))],
        )
        assert report.all_ok
        assert report.min_margin_db > 0

    def test_close_links_fail(self):
        validator = self.make()
        report = validator.validate(
            pu_links=[],
            su_links=[
                (np.array([0.0, 0.0]), np.array([5.0, 0.0])),
                (np.array([7.0, 0.0]), np.array([12.0, 0.0])),
            ],
        )
        assert not report.su_ok
        assert not report.all_ok

    def test_pcr_separated_links_pass(self):
        # Two SU links separated by a PCR-scale distance must satisfy
        # Lemma 3's guarantee.
        validator = self.make()
        report = validator.validate(
            pu_links=[],
            su_links=[
                (np.array([0.0, 0.0]), np.array([10.0, 0.0])),
                (np.array([40.0, 0.0]), np.array([50.0, 0.0])),
            ],
        )
        assert report.su_ok

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            SirValidator(4.0, 0.0, 1.0, 10.0, 10.0)


class TestCarrierSenseMap:
    def test_ranges(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 24.0, 10.0)
        assert sense.pu_protection_range == 24.0
        assert sense.su_csma_range == 10.0
        assert sense.sensing_range == 24.0

    def test_default_csma_range(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 24.0)
        assert sense.su_csma_range == 24.0

    def test_inversion_consistency(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        for pu, nodes in enumerate(sense.pu_hearers):
            for node in nodes:
                assert pu in sense.pus_heard_by[node]
        for node, pus in enumerate(sense.pus_heard_by):
            assert sense.pu_count_in_range(node) == len(pus)

    def test_su_neighbors_symmetric(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 15.0)
        for node, neighbors in enumerate(sense.su_neighbors):
            for other in neighbors:
                assert node in sense.su_neighbors[other]

    def test_hearing_matches_distance(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 18.0)
        su_positions = quick_topology.secondary.positions
        pu_positions = quick_topology.primary.positions
        for pu, nodes in enumerate(sense.pu_hearers):
            distances = np.hypot(
                *(su_positions - pu_positions[pu]).T
            )
            assert set(nodes) == set(np.nonzero(distances <= 18.0)[0].tolist())

    def test_csma_below_radius_rejected(self, quick_topology):
        with pytest.raises(ConfigurationError):
            CarrierSenseMap(quick_topology, 24.0, 5.0)

    def test_invalid_protection_range(self, quick_topology):
        with pytest.raises(ConfigurationError):
            CarrierSenseMap(quick_topology, -1.0)


class TestOpportunity:
    def test_matches_counts(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        probabilities = per_node_opportunity_probability(sense, 0.3)
        for node, pus in enumerate(sense.pus_heard_by):
            assert probabilities[node] == pytest.approx(0.7 ** len(pus))

    def test_zero_activity_gives_certainty(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        assert (per_node_opportunity_probability(sense, 0.0) == 1.0).all()

    def test_mean_between_min_and_max(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        values = per_node_opportunity_probability(sense, 0.3)
        mean = mean_opportunity_probability(sense, 0.3)
        assert values.min() <= mean <= values.max()

    def test_invalid_pt(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        with pytest.raises(ConfigurationError):
            per_node_opportunity_probability(sense, 1.5)
