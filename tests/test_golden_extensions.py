"""Golden anchors for the extension subsystems.

Companion to ``test_golden_regression.py``: fixed-seed pinned outputs for
multi-channel, aggregation, unicast and centralized runs, so semantic
drift in any extension path is caught immediately.  Update deliberately,
never casually.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import run_aggregation
from repro.core.collector import run_addc_collection
from repro.experiments.config import ExperimentConfig
from repro.network.deployment import deploy_crn
from repro.routing.unicast import run_unicast
from repro.rng import StreamFactory
from repro.scheduling.centralized import run_centralized_collection


@pytest.fixture(scope="module")
def golden_topology():
    config = ExperimentConfig(
        area=40.0 * 40.0, num_pus=10, num_sus=50, repetitions=1
    )
    return deploy_crn(config.deployment_spec(), StreamFactory(20120612).spawn("g"))


class TestGoldenExtensions:
    def test_multichannel_run(self, golden_topology):
        result = run_addc_collection(
            golden_topology,
            StreamFactory(20120612).spawn("g").spawn("mc"),
            num_channels=3,
            with_bounds=False,
        ).result
        assert result.completed
        assert result.delay_slots == 98

    def test_aggregation_run(self, golden_topology):
        result = run_aggregation(
            golden_topology, StreamFactory(20120612).spawn("g").spawn("agg")
        )
        assert result.completed
        assert result.delay_slots == 565

    def test_unicast_run(self, golden_topology):
        _, result = run_unicast(
            golden_topology,
            StreamFactory(20120612).spawn("g").spawn("uni"),
            flows=[(3, 17), (21, 6)],
        )
        assert result.completed
        assert result.delay_slots == 51

    def test_centralized_run(self, golden_topology):
        result = run_centralized_collection(
            golden_topology, StreamFactory(20120612).spawn("g").spawn("cen")
        )
        assert result.completed
        assert result.delay_slots == 1028
