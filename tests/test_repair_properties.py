"""Property-based churn: random detach/attach sequences keep the tree sane."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs.repair import attach_node, detach_node, orphaned_subtree, refresh_depths
from repro.graphs.tree import build_collection_tree

from tests.test_cds import random_udg


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.integers(10, 45),
    st.integers(0, 2**31 - 1),
    st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=12),
)
def test_random_churn_preserves_tree_invariants(num_nodes, graph_seed, churn_seeds):
    graph = random_udg(num_nodes, graph_seed)
    tree = build_collection_tree(graph, 0)
    offline = set()

    for step, seed in enumerate(churn_seeds):
        rng = np.random.default_rng(seed)
        attached = [
            node
            for node in range(1, num_nodes)
            if node not in offline and tree.parent[node] != -1
        ]
        if not attached:
            break
        if rng.random() < 0.7 or not offline:
            # Departure: a random attached node leaves; stranded subtrees
            # go offline wholesale.
            leaver = int(rng.choice(attached))
            stranded = detach_node(tree, graph, leaver)
            offline.add(leaver)
            for child in stranded:
                for orphan in [child, *orphaned_subtree(tree, child)]:
                    offline.add(orphan)
                    tree.parent[orphan] = -1
        else:
            # Return: a random offline node tries to re-attach.
            returner = int(sorted(offline)[0])
            try:
                attach_node(tree, graph, returner)
                offline.discard(returner)
            except GraphError:
                pass  # no backbone neighbour right now: stays offline

    refresh_depths(tree)

    # Invariants over the surviving forest:
    for node in range(num_nodes):
        if node in offline:
            assert tree.parent[node] == -1
            continue
        if node == tree.root:
            assert tree.parent[node] == tree.root
            continue
        # Attached nodes reach the root through attached nodes only, with
        # consistent depths and real edges, and without cycles.
        seen = set()
        cursor = node
        while cursor != tree.root:
            assert cursor not in seen, "cycle detected"
            seen.add(cursor)
            parent = tree.parent[cursor]
            assert parent != -1
            assert parent not in offline
            assert graph.has_edge(cursor, parent)
            assert tree.depth[cursor] == tree.depth[parent] + 1
            cursor = parent
