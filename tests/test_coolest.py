"""Tests for the Coolest baseline: temperatures, routing, control plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.routing.coolest import CoolestPolicy, run_coolest_collection
from repro.routing.temperature import (
    mixed_node_weights,
    node_temperatures,
    node_temperatures_at_range,
    path_accumulated_temperature,
    path_highest_temperature,
    path_mixed_temperature,
)
from repro.rng import StreamFactory
from repro.sim.packet import DATA, RREP, RREQ, Packet
from repro.spectrum.sensing import CarrierSenseMap


class TestTemperatureMetrics:
    def test_path_metrics(self):
        temps = [0.1, 0.5, 0.9]
        path = [0, 1, 2]
        assert path_accumulated_temperature(path, temps) == pytest.approx(1.5)
        assert path_highest_temperature(path, temps) == pytest.approx(0.9)
        assert path_mixed_temperature(path, temps) == pytest.approx(
            0.1 * 1.1 + 0.5 * 1.5 + 0.9 * 1.9
        )

    def test_mixed_weights_superlinear(self):
        weights = mixed_node_weights([0.1, 0.9])
        # The hot node is penalized more than linearly.
        assert weights[1] / weights[0] > 0.9 / 0.1

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            path_accumulated_temperature([], [0.1])

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            path_highest_temperature([5], [0.1])

    def test_temperatures_complement_opportunity(self, quick_topology):
        sense = CarrierSenseMap(quick_topology, 20.0)
        temps = node_temperatures(sense, 0.3)
        assert ((temps >= 0.0) & (temps < 1.0)).all()
        for node, pus in enumerate(sense.pus_heard_by):
            assert temps[node] == pytest.approx(1.0 - 0.7 ** len(pus))

    def test_temperatures_at_range_matches_counts(self, quick_topology):
        temps = node_temperatures_at_range(quick_topology, 0.3, 10.0)
        pu_positions = quick_topology.primary.positions
        su_positions = quick_topology.secondary.positions
        for node in range(quick_topology.secondary.num_nodes):
            count = int(
                (np.hypot(*(pu_positions - su_positions[node]).T) <= 10.0).sum()
            )
            assert temps[node] == pytest.approx(1.0 - 0.7**count)

    def test_at_range_validation(self, quick_topology):
        with pytest.raises(ConfigurationError):
            node_temperatures_at_range(quick_topology, 1.5, 10.0)
        with pytest.raises(ConfigurationError):
            node_temperatures_at_range(quick_topology, 0.3, -1.0)


class TestCoolestPolicy:
    def test_routes_end_at_base_station(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        for node in quick_topology.secondary.su_ids():
            route = policy.route(node)
            assert route[0] == node
            assert route[-1] == quick_topology.secondary.base_station
            # Routes are simple (no repeated nodes).
            assert len(set(route)) == len(route)

    def test_route_edges_exist(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        graph = quick_topology.secondary.graph
        for node in list(quick_topology.secondary.su_ids())[:20]:
            route = policy.route(node)
            for a, b in zip(route, route[1:]):
                assert graph.has_edge(a, b)

    def test_next_hop_pointer(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        packet = Packet(packet_id=0, source=4)
        node = 4
        route = policy.route(4)
        assert policy.next_hop(node, packet) == route[1]

    def test_next_hop_explicit_route(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        # Pick a node whose route has at least two hops.
        node = next(
            su
            for su in quick_topology.secondary.su_ids()
            if len(policy.route(su)) >= 3
        )
        route = policy.route(node)
        packet = Packet(packet_id=0, source=node, kind=RREQ, route=route)
        assert policy.next_hop(node, packet) == route[1]
        packet.route_pos = 1
        assert policy.next_hop(route[1], packet) == route[2]

    def test_bad_metric(self, quick_topology):
        with pytest.raises(ConfigurationError):
            CoolestPolicy(quick_topology, 0.3, metric="wrong")

    def test_no_fairness_wait(self, quick_topology):
        assert not CoolestPolicy(quick_topology, 0.3).fairness_wait

    def test_avoids_hot_region(self):
        """With PUs clustered in the middle, coolest paths detour around
        the cluster."""
        from repro.geometry.region import SquareRegion
        from repro.network.primary import BernoulliActivity, PrimaryNetwork
        from repro.network.secondary import SecondaryNetwork
        from repro.network.topology import CrnTopology

        # A 5-node diamond: 0 (base) - {1 hot, 2 cool} - 3.
        secondary = SecondaryNetwork(
            positions=np.array(
                [[10.0, 10.0], [18.0, 14.0], [18.0, 6.0], [26.0, 10.0]]
            ),
            power=10.0,
            radius=10.0,
        )
        # A PU cluster near node 1 (within its radio range) and out of
        # node 2's range.
        primary = PrimaryNetwork(
            positions=np.array([[18.0, 17.0], [17.0, 18.0], [19.0, 18.0]]),
            power=10.0,
            radius=10.0,
            activity=BernoulliActivity(0.3),
        )
        topology = CrnTopology(
            region=SquareRegion(40.0), primary=primary, secondary=secondary
        )
        policy = CoolestPolicy(topology, 0.3)
        assert policy.route(3) == [3, 2, 0]


class TestControlPlane:
    def test_workload_with_discovery(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3, route_discovery=True)
        packets = policy.build_workload(quick_topology.secondary.num_sus)
        assert all(p.kind == RREQ for p in packets)
        assert len(packets) == quick_topology.secondary.num_sus

    def test_workload_without_discovery(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3, route_discovery=False)
        packets = policy.build_workload(quick_topology.secondary.num_sus)
        assert all(p.kind == DATA for p in packets)

    def test_rreq_triggers_rrep(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        policy.build_workload(quick_topology.secondary.num_sus)
        route = policy.route(7)
        rreq = Packet(packet_id=1000, source=7, kind=RREQ, route=route)
        rreq.route_pos = len(route) - 1
        spawned = policy.on_control_arrival(rreq, 0)
        assert len(spawned) == 1
        assert spawned[0].kind == RREP
        assert spawned[0].route == list(reversed(route))

    def test_rrep_releases_data_once(self, quick_topology):
        policy = CoolestPolicy(quick_topology, 0.3)
        policy.build_workload(quick_topology.secondary.num_sus)
        route = list(reversed(policy.route(7)))
        rrep = Packet(packet_id=2000, source=7, kind=RREP, route=route)
        released = policy.on_control_arrival(rrep, 7)
        assert len(released) == 1
        assert released[0].is_data and released[0].source == 7
        # A duplicate RREP releases nothing.
        assert policy.on_control_arrival(rrep, 7) == []


class TestRunCoolest:
    def test_end_to_end(self, tiny_topology, streams):
        outcome = run_coolest_collection(
            tiny_topology, streams.spawn("coolest-e2e"), max_slots=200_000
        )
        assert outcome.result.completed
        assert outcome.result.delivered == tiny_topology.secondary.num_sus
        # Control traffic means strictly more transmissions than data hops.
        data_hops = sum(r.hops for r in outcome.result.deliveries)
        assert outcome.result.total_transmissions > data_hops

    def test_without_discovery_fewer_transmissions(self, tiny_topology, streams):
        with_discovery = run_coolest_collection(
            tiny_topology, streams.spawn("cd1"), max_slots=200_000
        )
        without_discovery = run_coolest_collection(
            tiny_topology,
            streams.spawn("cd2"),
            route_discovery=False,
            max_slots=200_000,
        )
        assert (
            without_discovery.result.total_transmissions
            < with_discovery.result.total_transmissions
        )
