"""Tests for the delay/capacity analysis (Lemma 7, Theorems 1-2)."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis import (
    TheoreticalBounds,
    expected_waiting_slots,
    lemma8_service_bound_slots,
    opportunity_probability,
    theorem1_service_bound_slots,
    theorem2_capacity_lower_bound,
    theorem2_delay_bound_slots,
)
from repro.core.packing import beta
from repro.errors import ConfigurationError


class TestOpportunityProbability:
    def test_paper_default_value(self):
        # kappa = 2.432 at the Fig. 6 defaults -> p_o ~ 1.4%.
        p_o = opportunity_probability(0.3, 2.432, 10.0, 400, 62500.0)
        exponent = math.pi * 24.32**2 * 400 / 62500.0
        assert p_o == pytest.approx(0.7**exponent)
        assert 0.01 < p_o < 0.02

    def test_no_pus_gives_certainty(self):
        assert opportunity_probability(0.3, 2.0, 10.0, 0, 1000.0) == 1.0

    def test_silent_pus_give_certainty(self):
        assert opportunity_probability(0.0, 2.0, 10.0, 100, 1000.0) == 1.0

    def test_decreasing_in_activity(self):
        values = [
            opportunity_probability(p, 2.4, 10.0, 100, 10000.0)
            for p in (0.1, 0.2, 0.3, 0.4)
        ]
        assert values == sorted(values, reverse=True)

    def test_decreasing_in_pcr(self):
        values = [
            opportunity_probability(0.3, k, 10.0, 100, 10000.0) for k in (2.0, 3.0, 4.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            opportunity_probability(1.0, 2.0, 10.0, 100, 1000.0)
        with pytest.raises(ConfigurationError):
            opportunity_probability(0.3, 2.0, 10.0, 100, -1.0)
        with pytest.raises(ConfigurationError):
            opportunity_probability(0.3, 0.5, 10.0, 100, 1000.0)


class TestWaitingTime:
    def test_inverse(self):
        assert expected_waiting_slots(0.25) == 4.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            expected_waiting_slots(0.0)


class TestServiceBounds:
    def test_theorem1_formula(self):
        kappa, delta, p_o = 2.5, 8.0, 0.1
        expected = (2 * delta * beta(kappa) + 24 * beta(kappa + 1) - 1) / p_o
        assert theorem1_service_bound_slots(kappa, delta, p_o) == pytest.approx(
            expected
        )

    def test_lemma8_formula(self):
        kappa, p_o = 2.5, 0.1
        expected = (2 * beta(kappa) + 24 * beta(kappa + 1) - 1) / p_o
        assert lemma8_service_bound_slots(kappa, p_o) == pytest.approx(expected)

    def test_theorem1_dominates_lemma8(self):
        # Delta >= 1, so the Theorem 1 bound is at least the backbone bound.
        assert theorem1_service_bound_slots(2.5, 5.0, 0.1) >= (
            lemma8_service_bound_slots(2.5, 0.1)
        )

    def test_theorem2_composition(self):
        n, kappa, delta, root_degree, p_o = 100, 2.5, 6.0, 4, 0.1
        expected = theorem1_service_bound_slots(kappa, delta, p_o) + (
            n - root_degree
        ) * lemma8_service_bound_slots(kappa, p_o)
        assert theorem2_delay_bound_slots(
            n, kappa, delta, root_degree, p_o
        ) == pytest.approx(expected)

    def test_theorem2_linear_in_n(self):
        small = theorem2_delay_bound_slots(100, 2.5, 6.0, 4, 0.1)
        double = theorem2_delay_bound_slots(200, 2.5, 6.0, 4, 0.1)
        assert double / small == pytest.approx(2.0, rel=0.1)

    def test_capacity_bound(self):
        kappa, p_o = 2.5, 0.1
        expected = p_o / (2 * beta(kappa) + 24 * beta(kappa + 1) - 1)
        assert theorem2_capacity_lower_bound(kappa, p_o) == pytest.approx(expected)

    def test_capacity_scales_with_bandwidth(self):
        assert theorem2_capacity_lower_bound(2.5, 0.1, 2.0) == pytest.approx(
            2.0 * theorem2_capacity_lower_bound(2.5, 0.1, 1.0)
        )

    def test_order_optimality_constant(self):
        # The capacity lower bound is a constant fraction of W for constant
        # p_o and kappa — the substance of Theorem 2.
        fraction = theorem2_capacity_lower_bound(2.432, 0.0144)
        assert 0.0 < fraction < 1.0


class TestTheoreticalBounds:
    def test_for_scenario_consistency(self):
        bounds = TheoreticalBounds.for_scenario(
            num_sus=2000,
            num_pus=400,
            area=62500.0,
            p_t=0.3,
            kappa=2.432,
            su_radius=10.0,
            delta=12.0,
            root_degree=5,
        )
        assert bounds.p_o == pytest.approx(
            opportunity_probability(0.3, 2.432, 10.0, 400, 62500.0)
        )
        assert bounds.expected_wait_slots == pytest.approx(1.0 / bounds.p_o)
        assert bounds.theorem2_delay_slots > bounds.theorem1_slots
        assert 0 < bounds.capacity_fraction < 1
