"""Tests for the ASCII visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphs.tree import build_collection_tree
from repro.viz.ascii_map import render_deployment, render_field, render_tree_summary


@pytest.fixture(scope="module")
def tree(quick_topology):
    return build_collection_tree(
        quick_topology.secondary.graph, quick_topology.secondary.base_station
    )


class TestRenderDeployment:
    def test_contains_all_glyph_kinds(self, quick_topology, tree):
        text = render_deployment(quick_topology, tree)
        assert "B" in text
        assert "O" in text
        assert "x" in text
        assert "legend" not in text  # the legend line is glyph-labelled
        assert "dominator" in text

    def test_without_tree_all_dots(self, quick_topology):
        text = render_deployment(quick_topology)
        assert "B" in text and "." in text
        assert "O" not in text.splitlines()[1]  # map body has no dominators

    def test_dimensions(self, quick_topology):
        text = render_deployment(quick_topology, width=40)
        lines = text.splitlines()
        assert lines[0] == "+" + "-" * 40 + "+"
        body = [line for line in lines[1:-2] if line.startswith("|")]
        assert all(len(line) == 42 for line in body)

    def test_width_validation(self, quick_topology):
        with pytest.raises(ConfigurationError):
            render_deployment(quick_topology, width=4)


class TestRenderField:
    def test_shades_scale_with_values(self, quick_topology):
        n = quick_topology.secondary.num_nodes
        values = np.linspace(0.0, 1.0, n)
        text = render_field(quick_topology, values)
        assert "@" in text  # darkest shade present for the max
        assert "range" in text

    def test_constant_field(self, quick_topology):
        n = quick_topology.secondary.num_nodes
        text = render_field(quick_topology, np.full(n, 0.5))
        assert "range: 0.5" in text

    def test_shape_validation(self, quick_topology):
        with pytest.raises(ConfigurationError):
            render_field(quick_topology, [1.0, 2.0])


class TestTreeSummary:
    def test_summary_contents(self, quick_topology, tree):
        text = render_tree_summary(tree)
        assert "dominators" in text
        assert f"max depth {max(tree.depth)}" in text
        assert "depth  0" in text

    def test_histogram_counts_every_node(self, quick_topology, tree):
        text = render_tree_summary(tree)
        counted = sum(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.strip().startswith("depth")
        )
        assert counted == tree.num_nodes


class TestRenderHistogram:
    def test_counts_and_summary(self):
        from repro.viz.ascii_map import render_histogram

        text = render_histogram([1, 1, 2, 5, 5, 5], bins=2, title="demo")
        assert text.startswith("demo")
        assert "n=6" in text
        assert text.count("#") >= 2

    def test_single_value(self):
        from repro.viz.ascii_map import render_histogram

        text = render_histogram([3.0], bins=3)
        assert "n=1" in text

    def test_validation(self):
        from repro.viz.ascii_map import render_histogram

        with pytest.raises(ConfigurationError):
            render_histogram([], bins=2)
        with pytest.raises(ConfigurationError):
            render_histogram([1.0], bins=0)
        with pytest.raises(ConfigurationError):
            render_histogram([1.0], width=0)
