"""Shared fixtures: small deployed topologies and seeded stream factories."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.network.deployment import deploy_crn
from repro.rng import StreamFactory


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The test-sized scenario (80 SUs, 16 PUs, 50x50)."""
    return ExperimentConfig.quick_scale()


@pytest.fixture(scope="session")
def streams() -> StreamFactory:
    """A fixed-seed stream factory (fresh generators per stream name)."""
    return StreamFactory(seed=20120612)


@pytest.fixture(scope="session")
def quick_topology(quick_config, streams):
    """One deployed CRN shared across read-only tests."""
    return deploy_crn(quick_config.deployment_spec(), streams.spawn("topology"))


@pytest.fixture(scope="session")
def tiny_topology(streams):
    """A very small CRN (25 SUs) for per-slot invariant checks."""
    config = ExperimentConfig(
        area=30.0 * 30.0, num_pus=6, num_sus=25, repetitions=1, max_slots=100_000
    )
    return deploy_crn(config.deployment_spec(), streams.spawn("tiny"))


@pytest.fixture(scope="session")
def standalone_topology(streams):
    """A PU-free secondary network — the setting of Theorem 1's proof."""
    config = ExperimentConfig(
        area=30.0 * 30.0, num_pus=0, num_sus=25, p_t=0.0, repetitions=1
    )
    return deploy_crn(config.deployment_spec(), streams.spawn("standalone"))
