"""Tests for the adjacency-list graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.geometry.distance import pairwise_distances
from repro.graphs.graph import Graph


class TestBasics:
    def test_empty(self):
        graph = Graph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.max_degree() == 0

    def test_add_edge_and_neighbors(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert sorted(graph.neighbors(1)) == [0, 2]
        assert graph.degree(1) == 2
        assert graph.degree(0) == 1
        assert graph.num_edges == 2

    def test_has_edge(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_edges_iteration_unique(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_max_degree(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(0, 3)
        assert graph.max_degree() == 3

    def test_repr(self):
        assert "num_nodes=2" in repr(Graph(2))


class TestErrors:
    def test_negative_nodes(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(1, 1)

    def test_duplicate_edge(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 0)

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 5)
        with pytest.raises(GraphError):
            Graph(2).neighbors(-1)


class TestFromPositions:
    def test_matches_threshold(self):
        rng = np.random.default_rng(6)
        positions = rng.random((25, 2)) * 30.0
        radius = 8.0
        graph = Graph.from_positions(positions, radius)
        matrix = pairwise_distances(positions)
        for u in range(25):
            for v in range(u + 1, 25):
                assert graph.has_edge(u, v) == (matrix[u, v] <= radius)

    def test_empty_positions(self):
        graph = Graph.from_positions(np.empty((0, 2)), 1.0)
        assert graph.num_nodes == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 2**31 - 1))
    def test_degrees_symmetric(self, count, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((count, 2)) * 20.0
        graph = Graph.from_positions(positions, 7.0)
        # Handshake lemma: degree sum equals twice the edge count.
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges
