"""Tests for the adjacency-list graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.geometry.distance import pairwise_distances
from repro.graphs.graph import Graph


class TestBasics:
    def test_empty(self):
        graph = Graph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.max_degree() == 0

    def test_add_edge_and_neighbors(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert sorted(graph.neighbors(1)) == [0, 2]
        assert graph.degree(1) == 2
        assert graph.degree(0) == 1
        assert graph.num_edges == 2

    def test_has_edge(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_edges_iteration_unique(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_max_degree(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(0, 3)
        assert graph.max_degree() == 3

    def test_repr(self):
        assert "num_nodes=2" in repr(Graph(2))


class TestErrors:
    def test_negative_nodes(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(1, 1)

    def test_duplicate_edge(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 0)

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 5)
        with pytest.raises(GraphError):
            Graph(2).neighbors(-1)


class TestFromPositions:
    def test_matches_threshold(self):
        rng = np.random.default_rng(6)
        positions = rng.random((25, 2)) * 30.0
        radius = 8.0
        graph = Graph.from_positions(positions, radius)
        matrix = pairwise_distances(positions)
        for u in range(25):
            for v in range(u + 1, 25):
                assert graph.has_edge(u, v) == (matrix[u, v] <= radius)

    def test_empty_positions(self):
        graph = Graph.from_positions(np.empty((0, 2)), 1.0)
        assert graph.num_nodes == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 2**31 - 1))
    def test_degrees_symmetric(self, count, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((count, 2)) * 20.0
        graph = Graph.from_positions(positions, 7.0)
        # Handshake lemma: degree sum equals twice the edge count.
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges


class TestAdjacencyArrays:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 30), st.integers(0, 2**31 - 1))
    def test_csr_round_trip_preserves_neighbor_order(self, count, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((count, 2)) * 20.0
        graph = Graph.from_positions(positions, 7.0)
        clone = Graph.from_adjacency_arrays(*graph.to_adjacency_arrays())
        assert clone.num_nodes == graph.num_nodes
        assert clone.num_edges == graph.num_edges
        # Neighbor *order* (not just membership) is part of the graph's
        # deterministic identity: tree construction iterates it.
        for node in graph.nodes():
            assert list(clone.neighbors(node)) == list(graph.neighbors(node))

    def test_round_trip_dtypes(self):
        graph = Graph(3)
        graph.add_edge(2, 0)
        graph.add_edge(0, 1)
        indptr, indices = graph.to_adjacency_arrays()
        assert indptr.dtype == np.int64 and indices.dtype == np.int64
        assert indptr.tolist() == [0, 2, 3, 4]
        # Insertion order: node 0 saw edge (2,0) before (0,1).
        assert indices.tolist() == [2, 1, 0, 0]

    def test_invalid_arrays_raise(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency_arrays(
                np.zeros((2, 2), dtype=np.int64), np.array([], dtype=np.int64)
            )
        with pytest.raises(GraphError):
            Graph.from_adjacency_arrays(
                np.array([0, 3], dtype=np.int64), np.array([1], dtype=np.int64)
            )
