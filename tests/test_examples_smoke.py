"""Smoke-run the fast example scripts.

Examples are documentation that can rot; executing them keeps them honest.
Only the quick ones run here (the full set is exercised manually / in
longer CI lanes).
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "topology_explorer.py",
    "spectrum_planning.py",
    "device_to_device.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
    assert "Traceback" not in out


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        assert source.lstrip().startswith('"""'), script.name
        assert 'if __name__ == "__main__":' in source, script.name
        assert "Run with" in source, script.name
